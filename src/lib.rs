//! Umbrella crate for the ResilientDB/GeoBFT reproduction.
//!
//! Re-exports the workspace crates under one roof so the examples and the
//! cross-crate integration tests can address the whole system through a
//! single dependency. Library users should depend on the individual crates
//! (most importantly [`resilientdb`] and [`rdb_consensus`]) directly.

pub use rdb_common as common;
pub use rdb_consensus as consensus;
pub use rdb_crypto as crypto;
pub use rdb_ledger as ledger;
pub use rdb_scenario as scenario;
pub use rdb_simnet as simnet;
pub use rdb_store as store;
pub use rdb_workload as workload;
pub use resilientdb as fabric;
