//! Cross-crate integration: GeoBFT's failure handling (§2.3 of the
//! paper) under the fault injectors of the simulator.

use rdb_common::ids::ReplicaId;
use rdb_common::time::SimDuration;
use rdb_consensus::config::{ExecMode, ProtocolKind};
use rdb_simnet::{FaultSpec, Scenario};
use rdb_workload::ycsb::YcsbConfig;

fn geo_scenario(z: usize, n: usize) -> Scenario {
    let mut s = Scenario::paper(ProtocolKind::GeoBft, z, n).quick();
    s.logical_clients = 2_000;
    s.ycsb = YcsbConfig {
        record_count: 500,
        batch_size: 20,
        ..YcsbConfig::default()
    };
    s.cfg.batch_size = 20;
    s.cfg.exec_mode = ExecMode::Real;
    s.real_exec_records = 500;
    s.track_ledgers = true;
    s.cfg.remote_timeout = SimDuration::from_millis(200);
    s.cfg.progress_timeout = SimDuration::from_millis(350);
    s.cfg.client_retry = SimDuration::from_millis(700);
    s
}

#[test]
fn byzantine_primary_withholding_certificates_is_replaced() {
    // Example 2.4 case (1): the Oregon primary completes local replication
    // but never shares certificates. Remote clusters must detect it
    // (timeouts -> DRVC agreement -> RVC), force Oregon through a local
    // view change, and the new primary must resume sharing.
    let mut s = geo_scenario(2, 4);
    s.faults = vec![FaultSpec::SuppressGlobalShare {
        replica: ReplicaId::new(0, 0),
    }];
    let (metrics, ledgers) = s.run_full();
    assert!(
        metrics.completed_batches > 0,
        "no recovery from withholding primary: {}",
        metrics.summary()
    );
    // All replicas (including cluster 1, which was starved) agree.
    let ledgers = ledgers.expect("tracked");
    let common = ledgers.values().map(|l| l.head_height()).min().unwrap();
    assert!(common >= 2, "cluster 1 never executed a round");
    let reference = ledgers.values().next().unwrap();
    for ledger in ledgers.values() {
        for h in 1..=common {
            assert_eq!(
                reference.block(h).unwrap().hash(),
                ledger.block(h).unwrap().hash()
            );
        }
    }
}

#[test]
fn crashed_remote_primary_is_detected_and_replaced() {
    // The primary of cluster 0 crashes outright mid-run; both its local
    // cluster (via the PBFT progress timers) and the remote cluster (via
    // the remote view-change protocol) push for replacement.
    let mut s = geo_scenario(2, 4);
    s.faults = vec![FaultSpec::crash_at_secs(ReplicaId::new(0, 0), 0.7)];
    let (metrics, _) = s.run_full();
    assert!(
        metrics.completed_batches > 0,
        "no progress after primary crash: {}",
        metrics.summary()
    );
}

#[test]
fn f_crashed_backups_per_cluster_do_not_block_rounds() {
    let mut s = geo_scenario(2, 4); // f = 1
    s.faults = vec![
        FaultSpec::crash_at_secs(ReplicaId::new(0, 3), 0.0),
        FaultSpec::crash_at_secs(ReplicaId::new(1, 3), 0.0),
    ];
    let (metrics, ledgers) = s.run_full();
    assert!(metrics.completed_batches > 0);
    // Live replicas agree.
    let ledgers = ledgers.expect("tracked");
    let live: Vec<_> = ledgers
        .iter()
        .filter(|(rid, _)| rid.index != 3)
        .map(|(_, l)| l)
        .collect();
    let common = live.iter().map(|l| l.head_height()).min().unwrap();
    assert!(common >= 2);
    for ledger in &live {
        for h in 1..=common {
            assert_eq!(
                live[0].block(h).unwrap().hash(),
                ledger.block(h).unwrap().hash()
            );
        }
    }
}

#[test]
fn fanout_one_with_crashed_relays_recovers_via_drvc_help() {
    // Ablation cross-check: with fanout 1, the only receiver of each
    // certificate share in cluster 1 is replica (1,0); crash it. Rounds
    // must still complete eventually (DRVC responses serve cached
    // certificates; remote view changes re-share), just more slowly.
    let mut s = geo_scenario(2, 4);
    s.cfg.fanout_override = Some(1);
    s.faults = vec![FaultSpec::crash_at_secs(ReplicaId::new(1, 0), 0.0)];
    s.measure = SimDuration::from_secs(4);
    let (metrics, _) = s.run_full();
    assert!(
        metrics.completed_batches > 0,
        "fanout-1 with crashed relay never recovered: {}",
        metrics.summary()
    );
}

#[test]
fn dropped_link_between_primaries_is_tolerated() {
    // An asymmetric link failure between the two primaries: certificate
    // sharing from cluster 0 to replica (1,0) is lost, but the fanout
    // covers f + 1 = 2 receivers, so the second receiver carries the
    // local phase (Proposition 2.5).
    let mut s = geo_scenario(2, 4);
    s.faults = vec![FaultSpec::drop_link(
        ReplicaId::new(0, 0),
        ReplicaId::new(1, 0),
        rdb_common::time::SimTime::ZERO,
    )];
    let (metrics, _) = s.run_full();
    assert!(metrics.completed_batches > 0);
}
