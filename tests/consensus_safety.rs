//! Cross-crate integration: every protocol, run on the discrete-event
//! simulator with *real* execution against preloaded YCSB stores and
//! per-replica ledgers, must satisfy the paper's consensus definition
//! (Definition 2.2 / Theorem 2.8):
//!
//! * **termination** — non-faulty replicas keep executing transactions;
//! * **non-divergence** — all non-faulty replicas execute the same
//!   transactions in the same order (identical ledger prefixes and
//!   identical state digests at equal heights).

use rdb_consensus::config::{ExecMode, ProtocolKind};
use rdb_ledger::Ledger;
use rdb_simnet::Scenario;
use rdb_workload::ycsb::YcsbConfig;
use std::collections::BTreeMap;

fn run_with_ledgers(
    kind: ProtocolKind,
    z: usize,
    n: usize,
) -> (f64, BTreeMap<rdb_common::ids::ReplicaId, Ledger>) {
    let mut s = Scenario::paper(kind, z, n).quick();
    s.logical_clients = 2_000;
    s.ycsb = YcsbConfig {
        record_count: 500,
        batch_size: 20,
        ..YcsbConfig::default()
    };
    s.cfg.batch_size = 20;
    s.cfg.exec_mode = ExecMode::Real;
    s.real_exec_records = 500;
    s.track_ledgers = true;
    let (metrics, ledgers) = s.run_full();
    (metrics.throughput_txn_s, ledgers.expect("tracked"))
}

/// Shared safety check: common prefix equality across all replicas.
fn assert_common_prefix(ledgers: &BTreeMap<rdb_common::ids::ReplicaId, Ledger>, min_blocks: u64) {
    let common = ledgers
        .values()
        .map(|l| l.head_height())
        .min()
        .expect("non-empty");
    assert!(
        common >= min_blocks,
        "common prefix too short: {common} < {min_blocks}"
    );
    let reference = ledgers.values().next().expect("non-empty");
    for (rid, ledger) in ledgers {
        ledger.verify(None).expect("internally consistent chain");
        for h in 1..=common {
            let a = reference.block(h).expect("height in range");
            let b = ledger.block(h).expect("height in range");
            assert_eq!(
                a.hash(),
                b.hash(),
                "divergence at height {h} on replica {rid}"
            );
            // Determinism of execution: equal post-state digests.
            assert_eq!(a.state_digest, b.state_digest, "state fork at {h}");
        }
    }
}

#[test]
fn geobft_terminates_and_does_not_diverge() {
    let (tps, ledgers) = run_with_ledgers(ProtocolKind::GeoBft, 2, 4);
    assert!(tps > 0.0, "no progress");
    // Each round appends z = 2 blocks; expect several rounds.
    assert_common_prefix(&ledgers, 4);
}

#[test]
fn pbft_terminates_and_does_not_diverge() {
    let (tps, ledgers) = run_with_ledgers(ProtocolKind::Pbft, 2, 4);
    assert!(tps > 0.0, "no progress");
    assert_common_prefix(&ledgers, 4);
}

#[test]
fn zyzzyva_terminates_and_does_not_diverge() {
    let (tps, ledgers) = run_with_ledgers(ProtocolKind::Zyzzyva, 1, 4);
    assert!(tps > 0.0, "no progress");
    assert_common_prefix(&ledgers, 4);
}

#[test]
fn hotstuff_terminates_and_does_not_diverge() {
    let (tps, ledgers) = run_with_ledgers(ProtocolKind::HotStuff, 2, 4);
    assert!(tps > 0.0, "no progress");
    assert_common_prefix(&ledgers, 4);
}

#[test]
fn steward_terminates_and_does_not_diverge() {
    let (tps, ledgers) = run_with_ledgers(ProtocolKind::Steward, 2, 4);
    assert!(tps > 0.0, "no progress");
    assert_common_prefix(&ledgers, 4);
}

#[test]
fn geobft_three_clusters_orders_rounds_identically() {
    let (_, ledgers) = run_with_ledgers(ProtocolKind::GeoBft, 3, 4);
    assert_common_prefix(&ledgers, 6);
    // GeoBFT block order within a round follows cluster ids (§2.4): the
    // i-th block of a round originates from cluster (i mod z) — verify on
    // one ledger via the batch's client cluster (no-ops carry synthetic
    // clients of the proposing cluster).
    let ledger = ledgers.values().next().expect("non-empty");
    let common = ledger.head_height();
    let z = 3u64;
    for h in 1..=common {
        let block = ledger.block(h).expect("in range");
        let expected_cluster = ((h - 1) % z) as u16;
        assert_eq!(
            block.batch.batch.client.cluster.0, expected_cluster,
            "block {h} out of cluster order"
        );
    }
}

// ---------------------------------------------------------------------
// Byzantine primaries, driven through the scenario harness
// ---------------------------------------------------------------------
//
// `rdb_scenario::byzantine_primary` wraps the view-0 leader in
// `AdversarySpec::EquivocatePrimary` (victims receive well-formed
// conflicting proposals) and itself asserts the full safety story on the
// deterministic simulator: liveness survives the attack, every honest
// replica's chain verifies and agrees block-for-block (Zyzzyva/HotStuff
// victims are excluded — their frozen or forked chain is the documented
// blast radius), and an independent replay of the observer's ledger
// reproduces every recorded state digest. The assertions here on the
// returned outcome pin the *workload* reality: real transaction programs
// committed under the attack, aborts included.

fn assert_byzantine_outcome(outcome: rdb_scenario::ScenarioOutcome) {
    assert!(outcome.blocks > 0, "no blocks committed under the attack");
    assert!(
        outcome.programs > 0,
        "no programs committed under the attack"
    );
    assert!(
        outcome.aborts > 0 && outcome.aborts < outcome.programs,
        "SmallBank load must surface both committed and aborted transfers"
    );
}

#[test]
fn pbft_equivocating_primary_forces_view_change_without_divergence() {
    assert_byzantine_outcome(rdb_scenario::byzantine_primary(
        ProtocolKind::Pbft,
        rdb_scenario::Mode::Quick,
    ));
}

#[test]
fn geobft_equivocating_primary_is_contained_to_its_cluster() {
    assert_byzantine_outcome(rdb_scenario::byzantine_primary(
        ProtocolKind::GeoBft,
        rdb_scenario::Mode::Quick,
    ));
}

#[test]
fn zyzzyva_equivocating_primary_cannot_certify_the_forged_history() {
    assert_byzantine_outcome(rdb_scenario::byzantine_primary(
        ProtocolKind::Zyzzyva,
        rdb_scenario::Mode::Quick,
    ));
}

#[test]
fn hotstuff_equivocating_primary_isolates_only_its_victim() {
    assert_byzantine_outcome(rdb_scenario::byzantine_primary(
        ProtocolKind::HotStuff,
        rdb_scenario::Mode::Quick,
    ));
}
