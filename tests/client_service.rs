//! End-to-end coverage of the client service API: start a fabric, submit
//! through open-loop sessions, await commit proofs, read back committed
//! values — the paper's §2.1 service contract ("clients receive the
//! result of execution with f+1 matching attestations"), exercised
//! against the real threaded pipeline.

use rdb_common::ids::ClusterId;
use rdb_consensus::config::ProtocolKind;
use rdb_store::{ExecOutcome, Operation, Value};
use resilientdb::DeploymentBuilder;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(30);

/// A `Read` submitted through a session returns the value written by a
/// prior committed `Write`, each carrying an f+1 commit proof — the
/// acceptance test of the service API redesign.
#[test]
fn read_returns_previously_written_value_with_quorum_proof() {
    let fabric = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(5)
        .records(500)
        .start();
    // Global F = 1 for 4 replicas: proofs need F + 1 = 2 attestations.
    let quorum = 2;
    let session = fabric.session(ClusterId(0));

    let value = Value::from_u64(0xC0FFEE);
    let write = session
        .submit_one(Operation::Write { key: 42, value })
        .wait_timeout(WAIT)
        .expect("write must commit");
    assert!(
        write.quorum_size() >= quorum,
        "write proof carries only {} attestations",
        write.quorum_size()
    );
    assert_eq!(write.results.outcomes, vec![ExecOutcome::Done]);
    assert!(write.block_height > 0, "committed batches occupy a block");

    let read = session
        .submit_one(Operation::Read { key: 42 })
        .wait_timeout(WAIT)
        .expect("read must commit");
    assert!(read.quorum_size() >= quorum);
    assert_eq!(
        read.results.outcomes,
        vec![ExecOutcome::ReadValue(Some(value))],
        "the read must observe the committed write"
    );
    // Total order: the read executed after the write.
    assert!(read.seq > write.seq);
    assert!(read.block_height > write.block_height);

    let report = fabric.shutdown();
    report.audit_ledgers().expect("ledgers consistent");
    // The proofs' heights are real chain positions: the blocks exist and
    // carry this session's batches.
    let ledger = report.ledgers.values().next().expect("a replica ledger");
    for proof in [&write, &read] {
        let block = ledger
            .block(proof.block_height)
            .expect("proof height within the chain");
        assert_eq!(block.batch.batch.client, session.id());
    }
}

/// The same read-back contract on a topology-aware protocol: GeoBFT
/// sessions are homed in one cluster and complete on a *local* f+1
/// quorum (§2.4), and writes from one cluster are visible to reads from
/// another (global total order).
#[test]
fn geobft_sessions_read_across_clusters_with_local_quorums() {
    let fabric = DeploymentBuilder::new(ProtocolKind::GeoBft, 2, 4)
        .batch_size(5)
        .records(500)
        .start();
    let local_quorum = fabric.system().weak_quorum(); // f + 1 = 2
    let west = fabric.session(ClusterId(0));
    let east = fabric.session(ClusterId(1));

    let write = west
        .submit_one(Operation::Write {
            key: 7,
            value: Value::from_u64(1234),
        })
        .wait_timeout(WAIT)
        .expect("write via cluster 0 must commit");
    assert!(write.quorum_size() >= local_quorum);
    // GeoBFT replicas answer only their local clients: every attestor is
    // from the session's own cluster.
    assert!(write
        .attesting_replicas
        .iter()
        .all(|r| r.cluster == ClusterId(0)));

    let read = east
        .submit_one(Operation::Read { key: 7 })
        .wait_timeout(WAIT)
        .expect("read via cluster 1 must commit");
    assert!(read
        .attesting_replicas
        .iter()
        .all(|r| r.cluster == ClusterId(1)));
    assert_eq!(
        read.results.outcomes,
        vec![ExecOutcome::ReadValue(Some(Value::from_u64(1234)))],
        "cross-cluster read must observe the committed write"
    );

    let report = fabric.shutdown();
    report.audit_ledgers().expect("ledgers consistent");
}

/// Concurrent submissions from many threads through one fabric handle:
/// every ticket resolves, and each batch commits exactly once in the
/// chain (no duplicate proposals from the session plumbing, no lost
/// submissions).
#[test]
fn concurrent_submissions_commit_exactly_once_each() {
    const THREADS: usize = 4;
    const BATCHES_PER_THREAD: usize = 5;

    let fabric = Arc::new(
        DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
            .batch_size(5)
            .records(500)
            .start(),
    );

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let fabric = Arc::clone(&fabric);
            std::thread::spawn(move || {
                // One session per thread, all through the same handle;
                // sessions themselves are also Sync (submit is &self).
                let session = fabric.session(ClusterId(0));
                let mut proofs = Vec::new();
                for b in 0..BATCHES_PER_THREAD {
                    let key = (t * BATCHES_PER_THREAD + b) as u64;
                    let ticket = session.submit(vec![
                        Operation::Write {
                            key,
                            value: Value::from_u64(key + 1),
                        },
                        Operation::Read { key },
                    ]);
                    let proof = ticket
                        .wait_timeout(WAIT)
                        .expect("concurrent submission must commit");
                    assert_eq!(
                        proof.results.outcomes[1],
                        ExecOutcome::ReadValue(Some(Value::from_u64(key + 1)))
                    );
                    proofs.push((session.id(), b as u64, proof));
                }
                proofs
            })
        })
        .collect();

    let mut all = Vec::new();
    for w in workers {
        all.extend(w.join().expect("worker thread"));
    }
    assert_eq!(all.len(), THREADS * BATCHES_PER_THREAD);

    let fabric = Arc::into_inner(fabric).expect("workers joined");
    let report = fabric.shutdown();
    report.audit_ledgers().expect("ledgers consistent");

    // Exactly-once: each (client, batch_seq) occupies exactly one block,
    // on every replica.
    for ledger in report.ledgers.values() {
        let mut seen = HashMap::new();
        for h in 1..=ledger.head_height() {
            let b = &ledger.block(h).expect("block").batch.batch;
            *seen.entry((b.client, b.batch_seq)).or_insert(0u32) += 1;
        }
        for (client, batch_seq, proof) in &all {
            assert_eq!(
                seen.get(&(*client, *batch_seq)),
                Some(&1),
                "batch {batch_seq} of {client} must commit exactly once"
            );
            // And the proof points at the very block that carries it.
            let block = ledger.block(proof.block_height).expect("proof height");
            assert_eq!(block.batch.batch.client, *client);
            assert_eq!(block.batch.batch.batch_seq, *batch_seq);
        }
    }
}

/// A session handle outlives its fabric; submitting through it after
/// shutdown must abort the ticket deterministically instead of hanging
/// on a request nobody will answer.
#[test]
fn submit_after_shutdown_aborts_instead_of_hanging() {
    let fabric = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(5)
        .records(100)
        .start();
    let session = fabric.session(ClusterId(0));
    fabric.shutdown();
    let ticket = session.submit_one(Operation::Read { key: 0 });
    assert!(
        ticket.aborted().is_some(),
        "post-shutdown submissions must abort immediately"
    );
    assert!(ticket.wait_timeout(Duration::from_secs(1)).is_none());
}

/// Dropping a fabric without `shutdown()` still joins every thread of
/// the deployment (replica pipelines, session pumps, crash schedulers) —
/// the test would hang or leak otherwise.
#[test]
fn dropping_a_fabric_tears_the_deployment_down() {
    let fabric = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(5)
        .records(100)
        .start();
    let session = fabric.session(ClusterId(0));
    let proof = session
        .submit_one(Operation::Write {
            key: 1,
            value: Value::from_u64(1),
        })
        .wait_timeout(WAIT)
        .expect("live fabric commits");
    assert!(proof.quorum_size() >= 2);
    drop(fabric);
    // The deployment is gone: a late submission aborts rather than
    // waiting on joined replicas.
    let late = session.submit_one(Operation::Read { key: 1 });
    assert!(late.aborted().is_some());
    assert!(late.wait_timeout(Duration::from_secs(1)).is_none());
}

/// Sessions and the closed-loop YCSB harness share one fabric: the
/// harness hammers the input queues while a session interleaves its own
/// batches, and both kinds of traffic commit into one agreed chain.
#[test]
fn sessions_coexist_with_closed_loop_harness_load() {
    let fabric = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(5)
        .records(500)
        .start();
    fabric.spawn_ycsb_clients(2);

    // A key far outside the YCSB active set (0..records), so harness
    // writes cannot interleave with the counter sequence.
    let session = fabric.session(ClusterId(0));
    for i in 0..3u64 {
        let proof = session
            .submit_one(Operation::Rmw {
                key: 1_000_009,
                delta: 1,
            })
            .wait_timeout(WAIT)
            .expect("session batch must commit under harness load");
        // RMW counters expose the total order directly: each increment
        // observes the previous one.
        assert_eq!(proof.results.outcomes, vec![ExecOutcome::Counter(i + 1)]);
    }

    let report = fabric.shutdown();
    assert!(
        report.completed_batches > 3,
        "harness clients made no progress: {}",
        report.summary()
    );
    report.audit_ledgers().expect("ledgers consistent");
    report
        .audit_execution_stage()
        .expect("materialized tables match ledger heads");
}

/// Regression for the documented Zyzzyva session caveat: session tickets
/// ride the speculative fast path only, which needs identical responses
/// from *all* `n` replicas — under a single crashed replica a ticket can
/// never resolve. The contract is that this surfaces deterministically:
/// `wait_timeout` returns `None` (instead of hanging forever) while the
/// ticket is merely pending (`aborted()` is `None`), and after shutdown
/// the ticket is dead and says why (`aborted()` is `Some`).
#[test]
fn zyzzyva_session_under_replica_fault_times_out_deterministically() {
    let fabric = DeploymentBuilder::new(ProtocolKind::Zyzzyva, 1, 4)
        .batch_size(5)
        .records(500)
        .fast_timeouts()
        .crash(rdb_common::ids::ReplicaId::new(0, 3), Duration::ZERO)
        .start();
    // Let the crash scheduler take the replica down before submitting, so
    // the all-`n` speculative quorum is impossible from the start.
    std::thread::sleep(Duration::from_millis(100));

    let session = fabric.session(ClusterId(0));
    let ticket = session.submit_one(Operation::Write {
        key: 3,
        value: Value::from_u64(11),
    });

    // Deterministic miss, not a hang: the fast path cannot complete.
    assert!(
        ticket.wait_timeout(Duration::from_millis(800)).is_none(),
        "ticket resolved through the speculative path with a replica down"
    );
    // A timed-out ticket is still *pending*, not dead: the fabric is up
    // and a recovered replica could in principle still complete it.
    assert!(ticket.aborted().is_none(), "pending ticket reported dead");
    assert!(ticket.try_wait().is_none());

    let report = fabric.shutdown();
    // Shutdown with the ticket pending kills it, and `aborted` carries
    // the reason — this is what lets poll loops terminate.
    assert!(
        ticket.aborted().is_some(),
        "shutdown must abort pending tickets"
    );
    assert!(ticket.wait_timeout(Duration::from_millis(10)).is_none());
    // The honest replicas still audit clean: the stalled session is a
    // client-side liveness artifact, not a safety problem.
    report.audit_ledgers().expect("ledgers consistent");
}
