//! Cross-crate integration: the real threaded fabric (`resilientdb`)
//! running full deployments with real signatures and real YCSB execution
//! on OS threads — the closest analogue to deploying the system.

use rdb_common::ids::ReplicaId;
use rdb_consensus::config::ProtocolKind;
use resilientdb::DeploymentBuilder;
use std::time::Duration;

#[test]
fn geobft_fabric_deployment_reaches_consensus() {
    let report = DeploymentBuilder::new(ProtocolKind::GeoBft, 2, 4)
        .batch_size(5)
        .clients(2)
        .records(500)
        .duration(Duration::from_millis(900))
        .run();
    assert!(report.completed_batches > 0, "{}", report.summary());
    let blocks = report.audit_ledgers().expect("consistent ledgers");
    assert!(blocks >= 2, "expected at least one full GeoBFT round");
}

#[test]
fn pbft_fabric_deployment_reaches_consensus() {
    let report = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(5)
        .clients(3)
        .records(500)
        .duration(Duration::from_millis(700))
        .run();
    assert!(report.completed_batches > 0, "{}", report.summary());
    report.audit_ledgers().expect("consistent ledgers");
}

#[test]
fn zyzzyva_fabric_deployment_fast_path() {
    let report = DeploymentBuilder::new(ProtocolKind::Zyzzyva, 1, 4)
        .batch_size(5)
        .clients(2)
        .records(500)
        .duration(Duration::from_millis(700))
        .run();
    assert!(report.completed_batches > 0, "{}", report.summary());
}

#[test]
fn hotstuff_fabric_deployment_reaches_consensus() {
    let report = DeploymentBuilder::new(ProtocolKind::HotStuff, 1, 4)
        .batch_size(5)
        .clients(4)
        .records(500)
        .fast_timeouts()
        .duration(Duration::from_millis(1_200))
        .run();
    assert!(report.completed_batches > 0, "{}", report.summary());
    report.audit_ledgers().expect("consistent ledgers");
}

#[test]
fn steward_fabric_deployment_reaches_consensus() {
    let report = DeploymentBuilder::new(ProtocolKind::Steward, 2, 4)
        .batch_size(5)
        .clients(2)
        .records(500)
        .duration(Duration::from_millis(900))
        .run();
    assert!(report.completed_batches > 0, "{}", report.summary());
    report.audit_ledgers().expect("consistent ledgers");
}

#[test]
fn fabric_with_emulated_wan_delays_still_commits() {
    // 20 ms one-way between clusters, direct within a cluster: a
    // two-region deployment on loopback.
    use rdb_common::ids::NodeId;
    use rdb_common::time::SimDuration;
    use std::sync::Arc;
    let delay: resilientdb::transport::DelayFn = Arc::new(|from: NodeId, to: NodeId| {
        if from.cluster() != to.cluster() {
            SimDuration::from_millis(20)
        } else {
            SimDuration::ZERO
        }
    });
    let report = DeploymentBuilder::new(ProtocolKind::GeoBft, 2, 4)
        .batch_size(5)
        .clients(2)
        .records(500)
        .delay(delay)
        .duration(Duration::from_millis(1_500))
        .run();
    assert!(report.completed_batches > 0, "{}", report.summary());
    report.audit_ledgers().expect("consistent ledgers");
}

#[test]
fn fabric_survives_backup_crash_mid_run() {
    let report = DeploymentBuilder::new(ProtocolKind::GeoBft, 2, 4)
        .batch_size(5)
        .clients(2)
        .records(500)
        .fast_timeouts()
        .crash(ReplicaId::new(1, 3), Duration::from_millis(300))
        .duration(Duration::from_millis(1_200))
        .run();
    assert!(report.completed_batches > 0, "{}", report.summary());
    report.audit_ledgers().expect("live ledgers consistent");
}
