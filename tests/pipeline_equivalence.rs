//! Cross-runtime equivalence: the same PBFT deployment driven through the
//! deterministic simulator (`rdb-simnet`, modeled compute/virtual time)
//! and the real threaded fabric (`resilientdb`, OS threads + real
//! signatures) must commit the *same blockchain* — same batches, same
//! order, same post-execution state digests, hence identical block
//! hashes over the common prefix.
//!
//! This pins down the contract behind the staged refactor: both runtimes
//! drive the same sans-io state machines through the same pipeline
//! abstraction (verify → order → execute), so only timing may differ —
//! never content.

use rdb_common::ids::ReplicaId;
use rdb_consensus::config::{ExecMode, ProtocolKind};
use rdb_ledger::Ledger;
use rdb_simnet::Scenario;
use rdb_workload::ycsb::YcsbConfig;
use resilientdb::{DeploymentBuilder, DeploymentReport};
use std::time::Duration;

/// The closed-loop YCSB harness, written out over the service API: boot
/// the fabric, attach the workload clients, let it run, collect the
/// report. `DeploymentBuilder::run()` is exactly this sequence; driving
/// it explicitly here pins the harness-over-API contract.
fn drive(builder: DeploymentBuilder, clients: usize, duration: Duration) -> DeploymentReport {
    let fabric = builder.start();
    fabric.spawn_ycsb_clients(clients);
    std::thread::sleep(duration);
    fabric.shutdown()
}

const SEED: u64 = 7;
const RECORDS: u64 = 500;
const BATCH: usize = 5;

/// One closed-loop client, PBFT over a single 4-replica cluster, real
/// YCSB execution — in the simulator.
fn simnet_ledger() -> Ledger {
    let mut s = Scenario::paper(ProtocolKind::Pbft, 1, 4).quick();
    s.cfg.exec_mode = ExecMode::Real;
    s.cfg.batch_size = BATCH;
    s.real_exec_records = RECORDS;
    s.track_ledgers = true;
    s.seed = SEED;
    // Exactly one closed-loop batch client => a deterministic proposal
    // order (client batch_seq order).
    s.logical_clients = BATCH;
    s.ycsb = YcsbConfig {
        record_count: RECORDS,
        batch_size: BATCH,
        ..YcsbConfig::default()
    };
    let (metrics, ledgers) = s.run_full();
    assert!(metrics.completed_batches > 0, "simnet made no progress");
    ledgers
        .expect("ledgers tracked")
        .remove(&ReplicaId::new(0, 0))
        .expect("observer replica ledger")
}

/// The same deployment on the real staged pipeline.
fn fabric_ledgers() -> DeploymentReport {
    let builder = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(BATCH)
        .records(RECORDS)
        .seed(SEED);
    drive(builder, 1, Duration::from_millis(900))
}

#[test]
fn simnet_and_fabric_commit_identical_ledgers() {
    let sim = simnet_ledger();
    let report = fabric_ledgers();
    assert!(report.completed_batches > 0, "{}", report.summary());
    let common = report.audit_ledgers().expect("fabric ledgers consistent");
    report
        .audit_execution_stage()
        .expect("materialized tables match ledger heads");
    let fabric = &report.ledgers[&ReplicaId::new(0, 0)];

    let prefix = common.min(sim.head_height());
    assert!(
        prefix >= 3,
        "need a non-trivial common prefix (fabric {common}, simnet {})",
        sim.head_height()
    );
    for h in 1..=prefix {
        let a = sim.block(h).expect("simnet block");
        let b = fabric.block(h).expect("fabric block");
        assert_eq!(
            a.batch.digest(),
            b.batch.digest(),
            "batch divergence at height {h}"
        );
        assert_eq!(
            a.state_digest, b.state_digest,
            "execution state divergence at height {h}"
        );
        assert_eq!(a.hash(), b.hash(), "block hash divergence at height {h}");
    }
}

#[test]
fn socket_transport_commits_identical_ledgers() {
    // Cross-transport equivalence: the same deployment with every
    // message serialized through `rdb_consensus::codec` and carried over
    // real loopback TCP connections must commit a ledger byte-identical
    // to the in-process transport and the simulator. Serialization and
    // sockets may only change timing — never content.
    use resilientdb::TransportMode;

    let sim = simnet_ledger();
    let inproc = fabric_ledgers();
    assert!(inproc.completed_batches > 0, "{}", inproc.summary());
    inproc.audit_ledgers().expect("in-proc ledgers consistent");

    let builder = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(BATCH)
        .records(RECORDS)
        .seed(SEED)
        .transport_mode(TransportMode::Tcp);
    let report = drive(builder, 1, Duration::from_millis(1_200));
    assert!(report.completed_batches > 0, "{}", report.summary());
    let common = report.audit_ledgers().expect("socket ledgers consistent");
    report
        .audit_execution_stage()
        .expect("materialized tables match ledger heads");

    let socket = &report.ledgers[&ReplicaId::new(0, 0)];
    let inproc_ledger = &inproc.ledgers[&ReplicaId::new(0, 0)];
    let prefix = common
        .min(sim.head_height())
        .min(inproc_ledger.head_height());
    assert!(
        prefix >= 3,
        "need a non-trivial common prefix (socket {common}, in-proc {}, simnet {})",
        inproc_ledger.head_height(),
        sim.head_height()
    );
    for h in 1..=prefix {
        let a = sim.block(h).expect("simnet block");
        let b = inproc_ledger.block(h).expect("in-proc block");
        let c = socket.block(h).expect("socket block");
        assert_eq!(
            a.hash(),
            c.hash(),
            "socket vs simnet block divergence at height {h}"
        );
        assert_eq!(
            b.hash(),
            c.hash(),
            "socket vs in-proc block divergence at height {h}"
        );
    }

    // Real bytes moved: the in-process run reports no links, the socket
    // run reports every loaded link with frame counts behind the bytes.
    assert!(inproc.net.links.is_empty(), "in-proc moved bytes?");
    assert!(!report.net.links.is_empty(), "socket run reports no links");
    assert!(report.net.total_bytes_out() > 0);
    assert!(report.net.total_frames_out() > 0);
    for link in &report.net.links {
        assert!(
            link.bytes_out == 0 || link.frames_out > 0,
            "bytes without frames on {:?}->{:?}",
            link.from,
            link.to
        );
    }

    // Frame sizes on the wire match the paper's §4 size model: the codec
    // pads every frame to `Message::wire_size()`, so each modeled
    // message costs exactly model + FRAME_OVERHEAD header bytes. (The
    // codec's own tests cover every variant; here we pin the three the
    // bandwidth model is built from — batched PrePrepare, certificate,
    // client response — at this deployment's batch size.)
    use rdb_common::ids::ClusterId;
    use rdb_consensus::codec::{frame_size, FRAME_OVERHEAD};
    use rdb_consensus::messages::Message;
    let cluster = ClusterId(0);
    let preprepare = Message::PrePrepare {
        scope: rdb_consensus::Scope::Cluster(cluster),
        view: 0,
        seq: 1,
        batch: rdb_consensus::SignedBatch::noop(cluster, 0),
        digest: Default::default(),
    };
    // A noop batch carries one transaction.
    assert_eq!(
        frame_size(&preprepare),
        rdb_common::wire::preprepare_bytes(1) + FRAME_OVERHEAD
    );
    let commit = Message::Commit {
        scope: rdb_consensus::Scope::Global,
        view: 0,
        seq: 1,
        digest: Default::default(),
        sig: Default::default(),
    };
    assert_eq!(
        frame_size(&commit),
        rdb_common::wire::control_bytes() + FRAME_OVERHEAD
    );
}

#[test]
fn exec_lanes_commit_identical_ledgers_at_any_lane_count() {
    // The key-sharded lane pool must be invisible in the committed
    // chain: the same deployment at 1, 2 and 4 execution lanes commits
    // ledgers byte-identical to the (single-lane) simulator — same
    // batches, same post-execution state digests, same block hashes —
    // and the materialized tables still audit against the ledger heads
    // (the commit-order retirement and per-lane fingerprint combination
    // at work). Lanes may only change timing, never content.
    let sim = simnet_ledger();
    for lanes in [1usize, 2, 4] {
        let builder = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
            .batch_size(BATCH)
            .records(RECORDS)
            .seed(SEED)
            .exec_lanes(lanes);
        let report = drive(builder, 1, Duration::from_millis(900));
        assert!(
            report.completed_batches > 0,
            "lanes={lanes}: {}",
            report.summary()
        );
        let common = report
            .audit_ledgers()
            .unwrap_or_else(|e| panic!("lanes={lanes}: fabric ledgers inconsistent: {e}"));
        report
            .audit_execution_stage()
            .unwrap_or_else(|e| panic!("lanes={lanes}: execution audit failed: {e}"));
        let fabric = &report.ledgers[&ReplicaId::new(0, 0)];
        let prefix = common.min(sim.head_height());
        assert!(
            prefix >= 3,
            "lanes={lanes}: need a non-trivial common prefix (fabric {common}, simnet {})",
            sim.head_height()
        );
        for h in 1..=prefix {
            let a = sim.block(h).expect("simnet block");
            let b = fabric.block(h).expect("fabric block");
            assert_eq!(
                a.batch.digest(),
                b.batch.digest(),
                "lanes={lanes}: batch divergence at height {h}"
            );
            assert_eq!(
                a.state_digest, b.state_digest,
                "lanes={lanes}: execution state divergence at height {h}"
            );
            assert_eq!(
                a.hash(),
                b.hash(),
                "lanes={lanes}: block hash divergence at height {h}"
            );
        }
        // The lane rows really saw the traffic: the report exposes one
        // row per configured lane, and every processed decision produced
        // at least one lane job (a decision touching several shards
        // produces one per touched lane).
        use rdb_consensus::stage::Stage;
        assert_eq!(report.stages.lanes.len(), lanes, "lanes={lanes}");
        let lane_batches: u64 = report.stages.lanes.iter().map(|l| l.batches).sum();
        assert!(
            lane_batches >= report.stages.row(Stage::Execute).processed,
            "lanes={lanes}: lane accounting lost decisions ({} jobs, {} processed)",
            lane_batches,
            report.stages.row(Stage::Execute).processed
        );
    }
}

#[test]
fn saturated_bounded_queues_commit_identical_ledgers() {
    // The same single-client deployment, but with the smallest sane
    // queue bounds on the fabric side (a consensus burst of a 4-replica
    // PBFT round can fill a 6-deep inbox, so the blocking machinery is
    // genuinely exercised on every queue) and the mirrored modeled bound
    // on the simnet side. Block policies are lossless, so backpressure
    // may change *timing* — never *content*: the committed chains must
    // stay byte-identical over the common prefix. (The lossy Shed path
    // is exercised under multi-client flood in `tests/backpressure.rs`,
    // where content equality is checked across replicas instead.)
    use rdb_simnet::{Overload, PipelineModel};
    use resilientdb::QueuePolicy;

    let sim = {
        let mut s = rdb_simnet::Scenario::paper(ProtocolKind::Pbft, 1, 4).quick();
        s.cfg.exec_mode = ExecMode::Real;
        s.cfg.batch_size = BATCH;
        s.real_exec_records = RECORDS;
        s.track_ledgers = true;
        s.seed = SEED;
        s.logical_clients = BATCH;
        s.ycsb = rdb_workload::ycsb::YcsbConfig {
            record_count: RECORDS,
            batch_size: BATCH,
            ..rdb_workload::ycsb::YcsbConfig::default()
        };
        // A 6-deep modeled bound; Block keeps the modeled schedule
        // identical while making the queueing observable.
        s.compute.pipeline = PipelineModel::with_verifiers(2).with_input_queue(6, Overload::Block);
        let (metrics, ledgers) = s.run_full();
        assert!(metrics.completed_batches > 0, "simnet made no progress");
        ledgers
            .expect("ledgers tracked")
            .remove(&ReplicaId::new(0, 0))
            .expect("observer replica ledger")
    };

    let builder = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(BATCH)
        .records(RECORDS)
        .seed(SEED)
        // One PBFT instance keeps ~n² + n ≈ 20 messages in flight; these
        // bounds bite (single queues fill) while the sum along any
        // replica-to-replica blocking cycle (work + output + inbox, both
        // directions ≈ 44) stays above it, so lossless Block can never
        // wedge the deployment. The capacity argument covers *cross*-
        // replica cycles only: the runtime delivers a replica's votes to
        // itself inline on the worker (see `dispatch_replica_actions`),
        // so no self-loop cycle through these queues exists.
        .input_queue(QueuePolicy::block(6))
        .order_queue(QueuePolicy::block(8))
        .exec_queue(QueuePolicy::block(2))
        .output_queue(QueuePolicy::block(8));
    let report = drive(builder, 1, Duration::from_millis(1_200));
    assert!(report.completed_batches > 0, "{}", report.summary());
    let common = report.audit_ledgers().expect("fabric ledgers consistent");
    report
        .audit_execution_stage()
        .expect("materialized tables match ledger heads");
    let fabric = &report.ledgers[&ReplicaId::new(0, 0)];

    let prefix = common.min(sim.head_height());
    assert!(
        prefix >= 3,
        "need a non-trivial common prefix under saturation (fabric {common}, simnet {})",
        sim.head_height()
    );
    for h in 1..=prefix {
        let a = sim.block(h).expect("simnet block");
        let b = fabric.block(h).expect("fabric block");
        assert_eq!(a.hash(), b.hash(), "block hash divergence at height {h}");
    }
}

#[test]
fn checkpoint_compaction_preserves_ledger_equivalence_under_saturation() {
    // Both runtimes run the checkpoint stage (interval 2) — the fabric
    // additionally under tiny lossless Block bounds on every queue, so
    // compaction and backpressure interact. The fabric certifies each
    // stable checkpoint with the anchor *block hash*, which binds the
    // entire chain prefix below it: every certified anchor that falls in
    // the simulator's retained window must carry the exact hash and
    // state digest the simulator's (independently compacted) ledger
    // records — byte-identical committed ledgers, proven through the
    // compaction machinery itself.
    use rdb_simnet::{Overload, PipelineModel};
    use resilientdb::QueuePolicy;
    const K: u64 = 2;

    let sim_run = |checkpointing: bool| {
        let mut s = rdb_simnet::Scenario::paper(ProtocolKind::Pbft, 1, 4).quick();
        s.cfg.exec_mode = ExecMode::Real;
        s.cfg.batch_size = BATCH;
        s.real_exec_records = RECORDS;
        s.track_ledgers = true;
        s.seed = SEED;
        s.logical_clients = BATCH;
        s.ycsb = rdb_workload::ycsb::YcsbConfig {
            record_count: RECORDS,
            batch_size: BATCH,
            ..rdb_workload::ycsb::YcsbConfig::default()
        };
        s.compute.pipeline = PipelineModel::with_verifiers(2)
            .with_input_queue(6, Overload::Block)
            .with_checkpointing(if checkpointing { K } else { 0 });
        let (metrics, ledgers) = s.run_full();
        assert!(metrics.completed_batches > 0, "simnet made no progress");
        assert_eq!(metrics.checkpoints > 0, checkpointing);
        ledgers
            .expect("ledgers tracked")
            .remove(&ReplicaId::new(0, 0))
            .expect("observer replica ledger")
    };
    // The modeled checkpoint stage charges off the worker's critical
    // path, so the committed chain is identical with and without it —
    // the compacted run's retained suffix must be byte-identical to the
    // full run's blocks, and the full run gives us every height the
    // (much slower, saturated) fabric will certify.
    let sim_full = sim_run(false);
    let sim = sim_run(true);
    assert!(sim.base_height() > 0, "simnet compaction never ran");
    assert_eq!(
        sim.head_hash(),
        sim_full.head_hash(),
        "checkpointing changed the schedule"
    );
    for h in sim.base_height()..=sim.head_height() {
        assert_eq!(
            sim.block(h).unwrap().hash(),
            sim_full.block(h).unwrap().hash(),
            "compacted suffix diverged at {h}"
        );
    }

    let builder = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(BATCH)
        .records(RECORDS)
        .seed(SEED)
        .checkpoint_interval(K)
        .input_queue(QueuePolicy::block(6))
        .order_queue(QueuePolicy::block(8))
        .exec_queue(QueuePolicy::block(2))
        .checkpoint_queue(QueuePolicy::block(2))
        .output_queue(QueuePolicy::block(8));
    let report = drive(builder, 1, Duration::from_millis(1_500));
    assert!(report.completed_batches > 0, "{}", report.summary());
    report.audit_ledgers().expect("fabric ledgers consistent");
    report
        .audit_execution_stage()
        .expect("materialized tables match ledger heads");

    let observer = ReplicaId::new(0, 0);
    let fabric = &report.ledgers[&observer];
    assert!(
        fabric.base_height() > 0,
        "fabric compaction never ran (stable {})",
        report.checkpoints[&observer].stable_height
    );

    // Every anchor the fabric quorum certified inside the simulator's
    // chain must match it byte for byte: the anchor block hash binds the
    // whole prefix below it, so one matching anchor proves the entire
    // committed history up to that height is identical across runtimes.
    let ckpt = &report.checkpoints[&observer];
    assert!(!ckpt.certified.is_empty(), "fabric never certified");
    let mut compared = 0;
    for (height, state, hash) in &ckpt.certified {
        let Some(block) = sim_full.block(*height) else {
            break; // the fabric outran the simulated window
        };
        assert_eq!(block.hash(), *hash, "anchor hash divergence at {height}");
        assert_eq!(
            block.state_digest, *state,
            "certified state divergence at {height}"
        );
        compared += 1;
    }
    assert!(
        compared > 0,
        "no certified anchor fell inside the simnet chain (head {})",
        sim_full.head_height()
    );
    // The checkpoint stage really ran under pressure on every replica.
    use rdb_consensus::stage::Stage;
    let row = report.stages.row(Stage::Checkpoint);
    assert!(row.processed > 0, "{}", report.stages.summary());
}

#[test]
fn staged_pipeline_reports_stage_flow() {
    use rdb_consensus::stage::Stage;
    let builder = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(BATCH)
        .records(RECORDS)
        .verifier_threads(4);
    let report = drive(builder, 2, Duration::from_millis(600));
    assert!(report.completed_batches > 0, "{}", report.summary());
    let stages = &report.stages;
    // Every stage saw traffic, in pipeline order.
    assert!(stages.row(Stage::Input).processed > 0);
    assert!(stages.row(Stage::Input).enqueued >= stages.row(Stage::Input).processed);
    assert!(stages.row(Stage::Verify).processed > 0);
    assert!(stages.row(Stage::Order).processed > 0);
    assert!(stages.row(Stage::Output).processed > 0);
    // All traffic is honestly signed: the verifier pool dropped nothing.
    assert_eq!(stages.row(Stage::Verify).dropped, 0);
    // Execution saw exactly the decided count and kept up.
    assert_eq!(stages.row(Stage::Execute).enqueued, report.decided);
    assert_eq!(stages.row(Stage::Execute).processed, report.decided);
    // The worker spent real, measured time ordering.
    assert!(report.worker_occupancy() > 0.0);
}

#[test]
fn wide_verifier_fanout_preserves_safety_and_progress() {
    // Reordering across 4 parallel verifiers must not break agreement.
    let builder = DeploymentBuilder::new(ProtocolKind::GeoBft, 2, 4)
        .batch_size(BATCH)
        .records(RECORDS)
        .verifier_threads(4);
    let report = drive(builder, 2, Duration::from_millis(900));
    assert!(report.completed_batches > 0, "{}", report.summary());
    let blocks = report.audit_ledgers().expect("consistent ledgers");
    assert!(blocks >= 2, "expected at least one full GeoBFT round");
    report
        .audit_execution_stage()
        .expect("materialized tables match ledger heads");
}
