//! Kill → reboot → byte-identical ledger head and state digest: the
//! durable storage subsystem end to end. A fabric started in
//! [`StorageMode::Durable`] WAL-logs every applied decision; a second
//! incarnation booted from the same data directory via
//! [`Fabric::restart_from`] must recover each replica's table and ledger
//! exactly as committed — and keep serving reads of that state.

mod support;

use rdb_common::ids::ClusterId;
use rdb_consensus::config::ProtocolKind;
use rdb_store::{ExecOutcome, Operation, Value};
use resilientdb::{DeploymentBuilder, Fabric, StorageMode};

#[test]
fn durable_fabric_restart_recovers_identical_ledger_and_state() {
    let tmp = support::TempDir::new("durable-restart");
    let fabric = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(4)
        .records(200)
        .storage(StorageMode::Durable(tmp.path().to_path_buf()))
        .start();

    // Commit deterministic traffic: waiting on each proof guarantees the
    // decisions were applied (and therefore WAL-logged) before shutdown.
    let session = fabric.session(ClusterId(0));
    for i in 0..6u64 {
        let proof = session
            .submit_one(Operation::Write {
                key: i,
                value: Value::from_u64(1_000 + i),
            })
            .wait();
        assert!(proof.quorum_size() >= 2);
    }
    let before = fabric.shutdown();
    assert!(before.decided > 0, "{}", before.summary());
    assert_eq!(before.storage.engines, 4, "one durable engine per replica");
    assert!(
        before.storage.stats.wal_records > 0,
        "decisions were logged"
    );
    before.audit_ledgers().expect("writer ledgers consistent");

    // Reboot from disk. The manifest pins the deployment shape; every
    // replica recovers rather than preloads.
    let rebooted = Fabric::restart_from(tmp.path()).expect("restart from data dir");
    let after = rebooted.shutdown();
    assert_eq!(after.storage.engines, 4);
    assert!(
        after.storage.stats.keys_recovered > 0,
        "recovery scanned keys from disk"
    );

    for (rid, ledger) in &before.ledgers {
        let recovered = after
            .ledgers
            .get(rid)
            .expect("replica present after restart");
        assert_eq!(
            recovered.head_height(),
            ledger.head_height(),
            "replica {rid}: recovered ledger height"
        );
        assert_eq!(
            recovered.head_hash(),
            ledger.head_hash(),
            "replica {rid}: recovered head hash is byte-identical"
        );
        assert_eq!(
            after.exec_state_digests.get(rid),
            before.exec_state_digests.get(rid),
            "replica {rid}: recovered table digest"
        );
    }
    after
        .audit_execution_stage()
        .expect("recovered tables match recovered ledger heads");
}

#[test]
fn durable_restart_serves_previously_committed_values() {
    let tmp = support::TempDir::new("durable-serve");
    let value = Value::from_u64(424_242);
    {
        let fabric = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
            .batch_size(4)
            .records(100)
            .storage(StorageMode::Durable(tmp.path().to_path_buf()))
            .start();
        let session = fabric.session(ClusterId(0));
        let proof = session
            .submit_one(Operation::Write { key: 7, value })
            .wait();
        assert!(proof.quorum_size() >= 2);
        drop(session);
        drop(fabric.shutdown());
    }

    // The rebooted fabric runs consensus fresh, but over recovered
    // tables: a quorum read must return the pre-restart value.
    let rebooted = Fabric::restart_from(tmp.path()).expect("restart from data dir");
    let session = rebooted.session(ClusterId(0));
    let proof = session.submit_one(Operation::Read { key: 7 }).wait();
    assert_eq!(
        proof.results.outcomes[0],
        ExecOutcome::ReadValue(Some(value)),
        "committed write must survive the restart"
    );
    drop(session);
    let report = rebooted.shutdown();
    report
        .audit_ledgers()
        .expect("post-restart ledgers extend the recovered chain consistently");
}
