//! Crash-safety properties of the durable log-structured engine: a WAL
//! torn at an *arbitrary byte offset* must recover to exactly the longest
//! batch prefix whose records survive intact (batches are atomic — never
//! a partial batch), flushed runs must survive any WAL damage, and
//! flush/compaction must never change the observable key-value state.

mod support;

use proptest::prelude::*;
use rdb_storage::{Keyspace, LogBackend, LogConfig, StorageBackend, WriteBatch};
use std::collections::BTreeMap;
use std::path::Path;

/// One generated write: (keyspace tag 0..4, single-byte key, payload).
/// A payload divisible by 5 encodes a delete; anything else a put.
type Op = (u8, u8, u64);

/// Reference state: (keyspace tag, key) -> value.
type Model = BTreeMap<(u8, Vec<u8>), Vec<u8>>;

fn build_batch(ops: &[Op]) -> WriteBatch {
    let mut b = WriteBatch::new();
    for &(tag, key, val) in ops {
        let ks = Keyspace::ALL[tag as usize];
        if val.is_multiple_of(5) {
            b.delete(ks, vec![key]);
        } else {
            b.put(ks, vec![key], val.to_le_bytes().to_vec());
        }
    }
    b
}

fn apply_model(model: &mut Model, ops: &[Op]) {
    for &(tag, key, val) in ops {
        if val.is_multiple_of(5) {
            model.remove(&(tag, vec![key]));
        } else {
            model.insert((tag, vec![key]), val.to_le_bytes().to_vec());
        }
    }
}

fn engine_state(be: &LogBackend) -> Model {
    let mut m = Model::new();
    for ks in Keyspace::ALL {
        for (k, v) in be.scan(ks) {
            m.insert((ks.index() as u8, k), v);
        }
    }
    m
}

fn truncate_wal(dir: &Path, offset: u64) {
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(dir.join("wal"))
        .expect("open wal for truncation");
    f.set_len(offset).expect("truncate wal");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tear the WAL at an arbitrary byte offset and reopen: the engine
    /// must come back holding *exactly* the state after the last batch
    /// whose record still ends at or before the cut — plus everything a
    /// flush already moved into immutable runs — with the torn-tail byte
    /// count reported. Never a partial batch, never a lost flushed key.
    #[test]
    fn torn_wal_recovers_to_exact_batch_prefix(
        ops in proptest::collection::vec((0u8..4, 0u8..16, any::<u64>()), 4..64),
        per in 1usize..5,
        flush_every in 0usize..5,
        cut in any::<u64>(),
    ) {
        let tmp = support::TempDir::new("crash-wal");
        let cfg = LogConfig { fsync: false, ..LogConfig::default() };
        let mut be = LogBackend::open(tmp.path(), cfg).expect("open");

        // Apply the batches, tracking the reference state and the WAL
        // file length after every batch. A flush writes runs and resets
        // the WAL to just its 8-byte header; `wal_bytes` is cumulative
        // over the engine's life, so lengths are relative to the bytes
        // counted at the last flush.
        let mut model = Model::new();
        let mut prefixes = vec![model.clone()];         // state after batch k
        let mut boundaries = vec![8u64];                // WAL length after batch k
        let mut last_flush = 0usize;                    // runs hold prefixes[last_flush]
        let mut flush_base = 0u64;                      // wal_bytes at the last flush
        for (i, chunk) in ops.chunks(per).enumerate() {
            be.apply(build_batch(chunk)).expect("apply");
            apply_model(&mut model, chunk);
            prefixes.push(model.clone());
            boundaries.push(8 + (be.stats().wal_bytes - flush_base));
            if flush_every > 0 && (i + 1).is_multiple_of(flush_every) {
                be.flush().expect("flush");
                last_flush = prefixes.len() - 1;
                flush_base = be.stats().wal_bytes;
                boundaries[last_flush] = 8;
            }
        }
        drop(be);

        let full_len = std::fs::metadata(tmp.path().join("wal")).expect("wal meta").len();
        let offset = cut % (full_len + 1);

        if offset > 0 && offset < 8 {
            // The magic itself is torn: the file is recognizably not a
            // well-formed WAL, and open must refuse rather than guess.
            truncate_wal(tmp.path(), offset);
            prop_assert!(LogBackend::open(tmp.path(), cfg).is_err());
            return;
        }

        truncate_wal(tmp.path(), offset);
        let recovered = LogBackend::open(tmp.path(), cfg).expect("reopen");

        // Expected survivor: the last batch at or before the cut among
        // those still in the WAL; flushed batches survive regardless.
        let mut expect = last_flush;
        for (k, end) in boundaries.iter().enumerate().skip(last_flush + 1) {
            if *end <= offset.max(8) {
                expect = k;
            }
        }
        prop_assert_eq!(&engine_state(&recovered), &prefixes[expect]);
        // The reported torn tail is the gap between the cut and the last
        // surviving record boundary (0 when the cut lands exactly on one).
        if offset >= 8 {
            prop_assert_eq!(
                recovered.stats().wal_truncated_bytes,
                offset - boundaries[expect].min(offset)
            );
        }
    }

    /// Flush and compaction are invisible to readers: a log engine driven
    /// through memtable flushes and k-way merge compaction must scan
    /// identically to an uncompacted reference model — before reopening
    /// and after.
    #[test]
    fn compaction_preserves_observable_state(
        ops in proptest::collection::vec((0u8..4, 0u8..16, any::<u64>()), 8..96),
        per in 1usize..6,
    ) {
        let tmp = support::TempDir::new("crash-compact");
        // A tiny memtable forces flushes mid-stream; a low run threshold
        // forces merges. Every path through run.rs gets exercised.
        let cfg = LogConfig { memtable_bytes: 64, compact_runs: 2, fsync: false };
        let mut be = LogBackend::open(tmp.path(), cfg).expect("open");

        let mut model = Model::new();
        for chunk in ops.chunks(per) {
            be.apply(build_batch(chunk)).expect("apply");
            apply_model(&mut model, chunk);
        }
        prop_assert_eq!(&engine_state(&be), &model);

        be.flush().expect("flush");
        prop_assert_eq!(&engine_state(&be), &model);
        drop(be);

        let reopened = LogBackend::open(tmp.path(), cfg).expect("reopen");
        prop_assert_eq!(&engine_state(&reopened), &model);
        for ks in Keyspace::ALL {
            let live = model.keys().filter(|(t, _)| *t == ks.index() as u8).count();
            prop_assert_eq!(reopened.len(ks), live);
        }
    }
}
