//! The checkpoint stage's fault-injection recovery harness: run a
//! cluster past several checkpoint intervals, kill it, and restart a
//! replica from its last *stable* checkpoint — the retained store
//! snapshot plus a peer's audited (and compacted) ledger. The replica
//! must rejoin with a byte-identical ledger suffix and the exact head
//! state the quorum certified, and the pre-checkpoint consensus state
//! must actually have been pruned (memory watermark assertions on the
//! ledger and the vote tracker).

use rdb_common::config::SystemConfig;
use rdb_common::ids::{NodeId, ReplicaId};
use rdb_consensus::config::ProtocolKind;
use rdb_consensus::crypto_ctx::CryptoCtx;
use rdb_crypto::sign::KeyStore;
use rdb_ledger::{recover_from_checkpoint, AuditError, Ledger};
use resilientdb::{DeploymentBuilder, DeploymentReport};
use std::time::Duration;

const INTERVAL: u64 = 4;

fn run_checkpointed_cluster() -> DeploymentReport {
    DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(5)
        .clients(2)
        .records(300)
        .checkpoint_interval(INTERVAL)
        .checkpoint_snapshots(true)
        .duration(Duration::from_millis(1_500))
        .run()
}

fn audit_ctx() -> (SystemConfig, CryptoCtx) {
    let cfg = SystemConfig::geo(1, 4).unwrap();
    let ks = KeyStore::new(42);
    let signer = ks.register(NodeId::Replica(ReplicaId::new(0, 0)));
    (cfg, CryptoCtx::new(signer, ks.verifier(), true))
}

#[test]
fn replica_restarts_from_its_last_stable_checkpoint() {
    let report = run_checkpointed_cluster();
    assert!(report.completed_batches > 0, "{}", report.summary());
    report.audit_ledgers().expect("ledgers consistent");
    report
        .audit_execution_stage()
        .expect("materialized tables match ledger heads");

    // Every replica ran past several checkpoint intervals and pruned.
    for (rid, ckpt) in &report.checkpoints {
        let ledger = &report.ledgers[rid];
        assert!(
            ckpt.certified.len() >= 2,
            "replica {rid} certified only {} checkpoints",
            ckpt.certified.len()
        );
        assert!(ckpt.stable_height >= 2 * INTERVAL, "replica {rid}");
        // Memory watermark: the ledger prefix below the (lag-one)
        // recovery anchor is gone — retained blocks cover exactly
        // [base, head], not the whole run.
        assert!(
            ledger.base_height() > 0,
            "replica {rid} never compacted its ledger"
        );
        assert!(ledger.base_height() <= ckpt.stable_height);
        assert_eq!(
            ledger.len() as u64,
            ledger.head_height() - ledger.base_height() + 1,
            "replica {rid} retained pruned blocks"
        );
        // And the vote tracker pruned everything stability covered.
        assert!(
            ckpt.tracked <= 8,
            "replica {rid} tracker holds {} unstable checkpoints",
            ckpt.tracked
        );
        // The retained snapshot is a quorum-certified checkpoint's state
        // (at most the stable height; a laggard's own snapshot can trail
        // stability learned from peers), with a live (audited)
        // fingerprint that matches the ledger's record of that height.
        let (h, snapshot) = ckpt.snapshot.as_ref().expect("snapshot retained");
        assert!(*h > 0 && *h <= ckpt.stable_height);
        assert!(snapshot.verify_fingerprint(), "snapshot digest stale");
        if let Some(block) = ledger.block(*h) {
            assert_eq!(snapshot.state_digest(), block.state_digest);
        }
    }

    // "Kill" the cluster (it is stopped), then restart the replica with
    // the most advanced stable checkpoint from exactly that checkpoint.
    let (restarting, ckpt) = report
        .checkpoints
        .iter()
        .max_by_key(|(_, c)| c.stable_height)
        .expect("checkpoint reports present");
    let (anchor_height, snapshot) = ckpt.snapshot.clone().expect("snapshot retained");
    let own_ledger = &report.ledgers[restarting];

    // Any peer that committed at least as far and still retains the
    // anchor height serves the recovery. Lag-one compaction guarantees
    // one exists: every peer's base is its *previous* stable checkpoint,
    // strictly below its stable height <= ours, and a quorum executed
    // past our stable height.
    let (peer_id, peer_ledger) = report
        .ledgers
        .iter()
        .filter(|(rid, _)| *rid != restarting)
        .find(|(_, l)| l.base_height() <= anchor_height && l.head_height() >= anchor_height)
        .expect("a peer retains our recovery anchor");

    let (cfg, crypto) = audit_ctx();
    // Fork-check against our own retained suffix when the peer's chain
    // is long enough to be audited against it.
    let trusted: Option<&Ledger> =
        (peer_ledger.head_height() >= own_ledger.head_height()).then_some(own_ledger);
    let recovered =
        recover_from_checkpoint(peer_ledger, trusted, &cfg, &crypto, anchor_height, snapshot)
            .expect("recovery from the stable checkpoint");

    // The replica rejoins with the peer's certified head state...
    let peer_head = peer_ledger.block(peer_ledger.head_height()).unwrap();
    assert_eq!(recovered.state_digest(), peer_head.state_digest);
    // ...and the ledger suffix both replicas retain is byte-identical.
    let from = own_ledger.base_height().max(peer_ledger.base_height());
    let to = own_ledger.head_height().min(peer_ledger.head_height());
    assert!(
        from <= to,
        "no shared suffix between {restarting} and {peer_id}"
    );
    for h in from..=to {
        assert_eq!(
            own_ledger.block(h).unwrap().hash(),
            peer_ledger.block(h).unwrap().hash(),
            "suffix divergence at height {h}"
        );
    }
}

#[test]
fn crashed_replica_recovers_via_state_transfer_when_its_anchor_is_pruned() {
    // Crash a backup early: by the time the cluster stops, the live
    // replicas have checkpointed far past anything the crashed replica
    // stabilized, so suffix replay from its own (ancient) checkpoint hits
    // the pruned gap — and the documented fallback is a state transfer:
    // restart from a *peer's* stable snapshot instead.
    let crashed = ReplicaId::new(0, 3);
    let report = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(5)
        .clients(2)
        .records(300)
        .checkpoint_interval(2)
        .checkpoint_snapshots(true)
        .crash(crashed, Duration::from_millis(250))
        .duration(Duration::from_millis(2_000))
        .run();
    assert!(report.completed_batches > 0, "{}", report.summary());
    report.audit_ledgers().expect("live ledgers consistent");

    let (cfg, crypto) = audit_ctx();
    let (donor, donor_ckpt) = report
        .checkpoints
        .iter()
        .filter(|(rid, _)| **rid != crashed)
        .max_by_key(|(_, c)| c.stable_height)
        .expect("live checkpoint reports");
    let donor_ledger = &report.ledgers[donor];
    let crashed_ckpt = &report.checkpoints[&crashed];

    // The gap is real: the donor pruned the crashed replica's era — if
    // not (a slow run that checkpointed little), the plain suffix path
    // must succeed instead and the scenario is vacuous but safe.
    if let Some((old_anchor, old_snapshot)) = crashed_ckpt.snapshot.clone() {
        if donor_ledger.base_height() > old_anchor {
            let err = recover_from_checkpoint(
                donor_ledger,
                None,
                &cfg,
                &crypto,
                old_anchor,
                old_snapshot,
            )
            .expect_err("replay across the pruned gap must be refused");
            assert!(matches!(err, AuditError::PrunedGap { .. }), "{err}");
        }
    }

    // State transfer: adopt the donor's stable snapshot and replay only
    // the donor's retained suffix.
    let (h, donor_snapshot) = donor_ckpt.snapshot.clone().expect("donor snapshot");
    let recovered = recover_from_checkpoint(donor_ledger, None, &cfg, &crypto, h, donor_snapshot)
        .expect("state transfer from the donor's checkpoint");
    let head = donor_ledger.block(donor_ledger.head_height()).unwrap();
    assert_eq!(recovered.state_digest(), head.state_digest);
}
