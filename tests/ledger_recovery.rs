//! Cross-crate integration: recovering a replica from a peer's ledger
//! (§3 of the paper) using real history produced by the fabric.

use rdb_common::config::SystemConfig;
use rdb_common::ids::{NodeId, ReplicaId};
use rdb_consensus::config::ProtocolKind;
use rdb_consensus::crypto_ctx::CryptoCtx;
use rdb_crypto::sign::KeyStore;
use rdb_ledger::{audit_chain, recover_from, AuditError, Ledger};
use rdb_store::KvStore;
use resilientdb::DeploymentBuilder;
use std::time::Duration;

fn deployment_history() -> (Ledger, SystemConfig) {
    let report = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(5)
        .clients(2)
        .records(300)
        .duration(Duration::from_millis(700))
        .run();
    assert!(report.completed_batches > 0);
    report.audit_ledgers().expect("consistent");
    let ledger = report.ledgers[&ReplicaId::new(0, 1)].clone();
    (ledger, SystemConfig::geo(1, 4).unwrap())
}

fn fresh_crypto() -> CryptoCtx {
    let ks = KeyStore::new(0xBEEF);
    let signer = ks.register(NodeId::Replica(ReplicaId::new(0, 7)));
    CryptoCtx::new(signer, ks.verifier(), false)
}

#[test]
fn recovering_replica_replays_real_history_to_matching_state() {
    let (ledger, cfg) = deployment_history();
    let crypto = fresh_crypto();
    let recovered = recover_from(
        &ledger,
        None,
        &cfg,
        &crypto,
        KvStore::with_ycsb_records(300),
    )
    .expect("audit passes");
    // The replayed transaction count equals the chain's content.
    let expected: u64 = ledger
        .blocks()
        .iter()
        .skip(1)
        .map(|b| b.batch.batch.len() as u64)
        .sum();
    assert_eq!(recovered.applied_txns(), expected);
}

#[test]
fn tampering_with_deployment_history_is_caught() {
    let (ledger, cfg) = deployment_history();
    let crypto = fresh_crypto();
    let mut blocks = ledger.blocks().to_vec();
    assert!(blocks.len() > 2, "need history to tamper with");
    // Malicious peer swaps a block's payload.
    blocks[1].batch = rdb_consensus::types::SignedBatch::noop(rdb_common::ids::ClusterId(0), 123);
    let tampered = Ledger::from_blocks_unchecked(blocks);
    let err = audit_chain(&tampered, None, &cfg, &crypto).unwrap_err();
    assert!(matches!(err, AuditError::Corrupt(_)), "{err}");
}

#[test]
fn truncated_peer_is_rejected_against_trusted_prefix() {
    let (ledger, cfg) = deployment_history();
    let crypto = fresh_crypto();
    let truncated =
        Ledger::from_blocks_unchecked(ledger.blocks()[..ledger.blocks().len() - 1].to_vec());
    // Internally valid...
    audit_chain(&truncated, None, &cfg, &crypto).expect("prefix is valid");
    // ...but rejected when we already trust the longer chain.
    let err = audit_chain(&truncated, Some(&ledger), &cfg, &crypto).unwrap_err();
    assert!(matches!(err, AuditError::TooShort { .. }), "{err}");
}
