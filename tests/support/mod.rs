//! Shared support for the umbrella integration suites.
//!
//! Durable-storage tests and examples need scratch directories that (a)
//! land under the gitignored `target/tmp/`, never in the source tree, and
//! (b) are removed when the test finishes, pass or fail. [`TempDir`] is
//! that RAII guard; every suite that touches disk goes through it.
#![allow(dead_code)]

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A scratch directory under `target/tmp`, unique per call (tag, process
/// and a monotonic counter), removed on drop.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `target/tmp/<tag>-<pid>-<n>/` (and parents) fresh.
    pub fn new(tag: &str) -> TempDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("target")
            .join("tmp")
            .join(format!("{tag}-{}-{n}", std::process::id()));
        // A stale dir from a killed previous run must not leak state in.
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create scratch dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
