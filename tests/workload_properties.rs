//! Property-based cross-crate invariants: workload determinism, batch
//! signing, certificate assembly, and GeoBFT safety under randomized
//! fault placement.

use proptest::prelude::*;
use rdb_common::config::SystemConfig;
use rdb_common::ids::{ClientId, NodeId, ReplicaId};
use rdb_consensus::certificate::{commit_payload, CommitCertificate, CommitSig};
use rdb_consensus::config::{ExecMode, ProtocolKind};
use rdb_consensus::crypto_ctx::CryptoCtx;
use rdb_crypto::sign::KeyStore;
use rdb_simnet::{FaultSpec, Scenario};
use rdb_workload::ycsb::{YcsbConfig, YcsbWorkload};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The YCSB stream is a pure function of (config, client, seed).
    #[test]
    fn workload_streams_are_deterministic(seed in any::<u64>(), batch in 1usize..64) {
        let cfg = YcsbConfig { record_count: 1_000, batch_size: batch, ..YcsbConfig::default() };
        let client = ClientId::new(0, 1);
        let mut a = YcsbWorkload::new(cfg.clone(), client, seed);
        let mut b = YcsbWorkload::new(cfg, client, seed);
        for s in 0..4u64 {
            prop_assert_eq!(a.next_batch(s), b.next_batch(s));
        }
    }

    /// Batch digests commit to content: any two distinct batch sequences
    /// from the same client digest differently.
    #[test]
    fn batch_digests_are_distinct(seed in any::<u64>()) {
        let cfg = YcsbConfig { record_count: 1_000, batch_size: 8, ..YcsbConfig::default() };
        let mut w = YcsbWorkload::new(cfg, ClientId::new(0, 0), seed);
        let d1 = w.next_batch(0).digest();
        let d2 = w.next_batch(1).digest();
        prop_assert_ne!(d1, d2);
    }

    /// A certificate with any quorum of honest signatures verifies; any
    /// single corrupted signature position breaks it.
    #[test]
    fn certificates_verify_iff_untampered(corrupt_idx in 0usize..3) {
        let cfg = SystemConfig::geo(1, 4).unwrap();
        let ks = KeyStore::new(7);
        let observer = ks.register(NodeId::Replica(ReplicaId::new(0, 3)));
        let crypto = CryptoCtx::new(observer, ks.verifier(), true);

        let client = ClientId::new(0, 0);
        let client_signer = ks.register(NodeId::Client(client));
        let mut w = YcsbWorkload::new(
            YcsbConfig { record_count: 100, batch_size: 4, ..YcsbConfig::default() },
            client,
            1,
        );
        let batch = w.next_batch(0);
        let digest = batch.digest();
        let sb = rdb_consensus::types::SignedBatch {
            sig: client_signer.sign(digest.as_bytes()),
            pubkey: client_signer.public_key(),
            batch,
        };
        let payload = commit_payload(rdb_common::ids::ClusterId(0), 3, &digest);
        let commits: Vec<CommitSig> = (0..3u16)
            .map(|i| {
                let r = ReplicaId::new(0, i);
                let s = ks.register(NodeId::Replica(r));
                CommitSig { replica: r, sig: s.sign(&payload) }
            })
            .collect();
        let mut cert = CommitCertificate {
            cluster: rdb_common::ids::ClusterId(0),
            round: 3,
            digest,
            batch: sb,
            commits,
        };
        prop_assert!(cert.verify(&cfg, &crypto));
        cert.commits[corrupt_idx].sig = rdb_crypto::sign::Signature([0xEE; 64]);
        prop_assert!(!cert.verify(&cfg, &crypto));
    }
}

proptest! {
    // Full simulations are expensive: a handful of randomized cases.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// GeoBFT safety under randomized crash placement: whatever single
    /// backup crashes (and whenever), all live replicas' ledgers agree on
    /// their common prefix.
    #[test]
    fn geobft_safety_under_random_backup_crash(
        cluster in 0u16..2,
        index in 1u16..4,       // never the initial primary (index 0)
        at_ms in 0u64..1_000,
    ) {
        let mut s = Scenario::paper(ProtocolKind::GeoBft, 2, 4).quick();
        s.logical_clients = 1_000;
        s.ycsb = YcsbConfig { record_count: 200, batch_size: 10, ..YcsbConfig::default() };
        s.cfg.batch_size = 10;
        s.cfg.exec_mode = ExecMode::Real;
        s.real_exec_records = 200;
        s.track_ledgers = true;
        let crashed = ReplicaId::new(cluster, index);
        s.faults = vec![FaultSpec::crash_at_secs(crashed, at_ms as f64 / 1000.0)];
        let (metrics, ledgers) = s.run_full();
        prop_assert!(metrics.completed_batches > 0, "no progress");
        let ledgers = ledgers.expect("tracked");
        let live: Vec<_> = ledgers
            .iter()
            .filter(|(rid, _)| **rid != crashed)
            .map(|(_, l)| l)
            .collect();
        let common = live.iter().map(|l| l.head_height()).min().unwrap();
        for l in &live {
            l.verify(None).expect("chain integrity");
            for h in 1..=common {
                prop_assert_eq!(
                    live[0].block(h).unwrap().hash(),
                    l.block(h).unwrap().hash(),
                    "ledger divergence at height {}", h
                );
            }
        }
    }
}
