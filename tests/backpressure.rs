//! Overload behavior of the bounded-queue pipeline (fabric and simnet).
//!
//! The tentpole contract: an overloaded replica must *not* grow memory
//! without bound. Its input queue stays at its configured capacity, the
//! overflow shows up in the per-stage `shed` (droppable consensus
//! traffic) and `blocked_ns` (client admission) counters, and — because
//! shedding is restricted to retransmittable traffic — safety is
//! untouched: every replica still commits the same chain.

use rdb_consensus::config::ProtocolKind;
use rdb_consensus::stage::Stage;
use resilientdb::{DeploymentBuilder, QueuePolicy};
use std::time::Duration;

const INPUT_CAP: usize = 12;
const REPLICAS: u64 = 4;

/// Flood a 4-replica PBFT cluster with 16 closed-loop clients against a
/// 12-envelope shedding input bound — offered load far past what the
/// queues admit. Shedding is recovered by retransmission, so the
/// deployment runs with fast protocol timeouts: within the window,
/// client retries re-drive any instance whose messages were shed
/// (without them, a fully shed instance would just stay stalled — which
/// on a loaded CI host can be every instance).
fn flooded() -> resilientdb::DeploymentReport {
    DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(5)
        .clients(16)
        .records(500)
        .verifier_threads(2)
        .input_queue(QueuePolicy::shed(INPUT_CAP))
        .fast_timeouts()
        .duration(Duration::from_millis(1_500))
        .run()
}

#[test]
fn flooded_replica_bounds_queues_and_keeps_agreement() {
    let report = flooded();
    let stages = &report.stages;
    let input = stages.row(Stage::Input);

    // 1. Flat memory: the aggregate input backlog (all replicas) can
    //    never exceed the per-replica bound times the replica count.
    assert!(
        input.queue_depth <= INPUT_CAP as u64 * REPLICAS,
        "input backlog past the bound: {}",
        stages.summary()
    );

    // 2. The overload was real and was absorbed by the policy: droppable
    //    consensus traffic was shed and/or client admission blocked.
    assert!(
        input.shed > 0 || !input.blocked.is_zero(),
        "no overload signal despite 16 clients on a {INPUT_CAP}-deep queue: {}",
        stages.summary()
    );

    // 3. Graceful degradation, not collapse: the deployment still
    //    commits.
    assert!(
        report.completed_batches > 0,
        "no progress under overload: {}",
        report.summary()
    );

    // 4. Shedding never touches safety: every ledger is internally
    //    valid and all replicas agree on the committed common prefix.
    //    (That prefix can legitimately be empty on a starved host — a
    //    backup whose inbound commits were all shed commits nothing in
    //    the window and would catch up via recovery — so progress is
    //    asserted on the deepest chain, not the shallowest.)
    report.audit_ledgers().expect("ledgers consistent");
    let deepest = report
        .ledgers
        .values()
        .map(|l| l.head_height())
        .max()
        .unwrap_or(0);
    assert!(deepest > 0, "no replica committed anything");
    report
        .audit_execution_stage()
        .expect("materialized tables match ledger heads");
}

#[test]
fn blocking_input_policy_never_sheds() {
    // A moderate load against a pure Block input policy: zero sheds —
    // all backpressure lands on producers as blocked time. (Deliberately
    // not a flood: an all-Block input under heavy replica-to-replica
    // traffic can park output threads on peer inboxes in a cycle, which
    // is exactly why the derived default input policy is Shed — see
    // `resilientdb::queue`.)
    let report = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(5)
        .clients(3)
        .records(500)
        .input_queue(QueuePolicy::block(INPUT_CAP))
        .duration(Duration::from_millis(700))
        .run();
    let input = report.stages.row(Stage::Input);
    assert_eq!(input.shed, 0, "Block policy must not shed");
    assert!(
        input.queue_depth <= INPUT_CAP as u64 * REPLICAS,
        "input backlog past the bound: {}",
        report.stages.summary()
    );
    assert!(report.completed_batches > 0, "{}", report.summary());
    report.audit_ledgers().expect("ledgers consistent");
}

#[test]
fn simnet_input_derivation_matches_fabric() {
    // The simulator's modeled input bound must stay the fabric's actual
    // bound: both formulas live in different crates (the DAG forbids
    // simnet depending on core), so this cross-crate guard is what
    // keeps a future retune of StageQueues::derive from silently
    // skewing saturation studies.
    use rdb_simnet::PipelineModel;
    use resilientdb::StageQueues;
    for batch in [1usize, 5, 10, 50, 100, 400] {
        for fanout in [1usize, 2, 4, 8] {
            assert_eq!(
                PipelineModel::input_capacity_for(batch, fanout),
                StageQueues::derive(batch, fanout).input.capacity,
                "derivations diverged at batch={batch} fanout={fanout}"
            );
        }
    }
}

mod simnet {
    use rdb_consensus::config::ProtocolKind;
    use rdb_simnet::{Overload, PipelineModel, Scenario};
    use rdb_workload::ycsb::YcsbConfig;

    const CAP: usize = 32;

    fn saturated() -> Scenario {
        let mut s = Scenario::paper(ProtocolKind::Pbft, 1, 4).quick();
        s.logical_clients = 8_000; // 160 batch clients on one cluster
        s.ycsb = YcsbConfig {
            record_count: 1_000,
            batch_size: 50,
            ..YcsbConfig::default()
        };
        s.cfg.batch_size = 50;
        // Shedding is recovered by retransmission; give the recovery
        // timers a chance to fire inside the short simulated window.
        s.cfg.client_retry = rdb_common::time::SimDuration::from_millis(250);
        s.cfg.progress_timeout = rdb_common::time::SimDuration::from_millis(600);
        // Measure from t=0 so the initial admission burst (where most
        // shedding happens) is part of the reported statistics.
        s.warmup = rdb_common::time::SimDuration::ZERO;
        s.compute.pipeline = PipelineModel::with_verifiers(2).with_input_queue(CAP, Overload::Shed);
        s
    }

    #[test]
    fn modeled_queue_full_behavior_is_deterministic() {
        // The modeled overload policy must be perfectly reproducible:
        // two identical saturated runs shed the same messages and end at
        // bit-identical metrics.
        let a = saturated().run();
        let b = saturated().run();
        assert!(
            a.shed_msgs > 0,
            "saturation must shed at CAP={CAP}: {}",
            a.summary()
        );
        assert!(
            a.max_input_depth <= CAP as u64 + 1,
            "modeled depth {} past the bound",
            a.max_input_depth
        );
        assert_eq!(a.shed_msgs, b.shed_msgs);
        assert_eq!(a.completed_batches, b.completed_batches);
        assert_eq!(a.events, b.events);
        assert_eq!(a.throughput_txn_s.to_bits(), b.throughput_txn_s.to_bits());
        assert_eq!(a.blocked_s.to_bits(), b.blocked_s.to_bits());
    }

    #[test]
    fn modeled_saturation_degrades_gracefully() {
        // Despite shedding, the closed loop keeps committing: bounded
        // queues turn overload into throughput flattening, not collapse.
        let m = saturated().run();
        assert!(
            m.completed_batches > 0,
            "no progress under modeled overload: {}",
            m.summary()
        );
        assert!(m.blocked_s >= 0.0);
    }
}
