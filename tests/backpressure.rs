//! Overload behavior of the bounded-queue pipeline (fabric and simnet).
//!
//! The tentpole contract: an overloaded replica must *not* grow memory
//! without bound. Its input queue stays at its configured capacity, the
//! overflow shows up in the per-stage `shed` (droppable consensus
//! traffic) and `blocked_ns` (client admission) counters, and — because
//! shedding is restricted to retransmittable traffic — safety is
//! untouched: every replica still commits the same chain.

use rdb_consensus::config::ProtocolKind;
use rdb_consensus::stage::Stage;
use resilientdb::{DeploymentBuilder, QueuePolicy};
use std::time::Duration;

const INPUT_CAP: usize = 12;
const REPLICAS: u64 = 4;

/// Flood a 4-replica PBFT cluster with 16 closed-loop clients against a
/// 12-envelope shedding input bound — offered load far past what the
/// queues admit — with the checkpoint stage running (interval 4), so
/// stable-state garbage collection is exercised under exactly the
/// overload it exists for. Shedding is recovered by retransmission, so
/// the deployment runs with fast protocol timeouts: within the window,
/// client retries re-drive any instance whose messages were shed
/// (without them, a fully shed instance would just stay stalled — which
/// on a loaded CI host can be every instance). Checkpoint votes are
/// non-droppable and delivered with the never-parking hold-and-retry
/// send, so the flood cannot lose or deadlock them.
fn flooded() -> resilientdb::DeploymentReport {
    DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(5)
        .clients(16)
        .records(500)
        .verifier_threads(2)
        .input_queue(QueuePolicy::shed(INPUT_CAP))
        .checkpoint_interval(4)
        .fast_timeouts()
        .duration(Duration::from_millis(1_500))
        .run()
}

#[test]
fn flooded_replica_bounds_queues_and_keeps_agreement() {
    let report = flooded();
    let stages = &report.stages;
    let input = stages.row(Stage::Input);

    // 1. Flat memory: the aggregate input backlog (all replicas) can
    //    never exceed the per-replica bound times the replica count.
    assert!(
        input.queue_depth <= INPUT_CAP as u64 * REPLICAS,
        "input backlog past the bound: {}",
        stages.summary()
    );

    // 2. The overload was real and was absorbed by the policy: droppable
    //    consensus traffic was shed and/or client admission blocked.
    assert!(
        input.shed > 0 || !input.blocked.is_zero(),
        "no overload signal despite 16 clients on a {INPUT_CAP}-deep queue: {}",
        stages.summary()
    );

    // 3. Graceful degradation, not collapse: the deployment still
    //    commits.
    assert!(
        report.completed_batches > 0,
        "no progress under overload: {}",
        report.summary()
    );

    // 4. Shedding never touches safety: every ledger is internally
    //    valid and all replicas agree on the committed common prefix.
    //    (That prefix can legitimately be empty on a starved host — a
    //    backup whose inbound commits were all shed commits nothing in
    //    the window and would catch up via recovery — so progress is
    //    asserted on the deepest chain, not the shallowest.)
    report.audit_ledgers().expect("ledgers consistent");
    let deepest = report
        .ledgers
        .values()
        .map(|l| l.head_height())
        .max()
        .unwrap_or(0);
    assert!(deepest > 0, "no replica committed anything");
    report
        .audit_execution_stage()
        .expect("materialized tables match ledger heads");

    // 5. Checkpointing under flood: any replica that reached a stable
    //    checkpoint must also have pruned the consensus ledger behind
    //    its recovery anchor — stable-state lag does not grow with the
    //    flood (the Looking-Glass failure mode the stage exists for).
    //    (A starved backup whose votes were all delayed can legitimately
    //    end the short window without a second stable checkpoint; the
    //    deepest replica is asserted below.)
    let best = report
        .checkpoints
        .iter()
        .max_by_key(|(_, c)| c.stable_height)
        .expect("checkpoint stage ran");
    assert!(
        best.1.stable_height > 0,
        "no replica certified a checkpoint under flood"
    );
    for (rid, ckpt) in &report.checkpoints {
        let ledger = &report.ledgers[rid];
        if ckpt.certified.len() >= 2 {
            assert!(
                ledger.base_height() > 0,
                "replica {rid} certified {} checkpoints but never pruned",
                ckpt.certified.len()
            );
        }
        assert!(
            ckpt.tracked <= 64,
            "replica {rid} tracker grew to {} in-flight checkpoints",
            ckpt.tracked
        );
    }
}

#[test]
fn blocking_input_policy_never_sheds() {
    // A moderate load against a pure Block input policy: zero sheds —
    // all backpressure lands on producers as blocked time. (Deliberately
    // not a flood: an all-Block input under heavy replica-to-replica
    // traffic can park output threads on peer inboxes in a cycle, which
    // is exactly why the derived default input policy is Shed — see
    // `resilientdb::queue`.)
    let report = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(5)
        .clients(3)
        .records(500)
        .input_queue(QueuePolicy::block(INPUT_CAP))
        .duration(Duration::from_millis(700))
        .run();
    let input = report.stages.row(Stage::Input);
    assert_eq!(input.shed, 0, "Block policy must not shed");
    assert!(
        input.queue_depth <= INPUT_CAP as u64 * REPLICAS,
        "input backlog past the bound: {}",
        report.stages.summary()
    );
    assert!(report.completed_batches > 0, "{}", report.summary());
    report.audit_ledgers().expect("ledgers consistent");
}

#[test]
fn slow_checkpoint_stage_throttles_execution_and_bounds_stable_lag() {
    // Fault injection: every checkpoint snapshot is artificially slowed
    // inside the checkpoint thread. Because the checkpoint queue is
    // Block-policy (checkpoints are not retransmittable), the executor
    // parks on the full queue instead of letting checkpoint lag grow
    // without bound: the wait must show up as `blocked_ns` on the
    // checkpoint stage, each replica's head must stay within the
    // queue's capacity worth of intervals of its own checkpoint
    // progress, and the certified watermark must track the quorum's.
    const K: u64 = 2;
    const CKPT_CAP: usize = 2;
    // Small work/exec queues keep the *shutdown drain* bounded too: when
    // the pipeline stops, the worker and executor drain their queues
    // after the verifiers (and with them, inbound peer votes) are gone,
    // so the stable watermark freezes while the head still advances by
    // up to the drained backlog.
    const ORDER_CAP: u64 = 8;
    const EXEC_CAP: u64 = 2;
    let report = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(5)
        .clients(4)
        .records(300)
        .checkpoint_interval(K)
        .checkpoint_queue(QueuePolicy::block(CKPT_CAP))
        .order_queue(QueuePolicy::block(ORDER_CAP as usize))
        .exec_queue(QueuePolicy::block(EXEC_CAP as usize))
        .checkpoint_fault_delay(Duration::from_millis(5))
        .duration(Duration::from_millis(1_500))
        .run();

    // Progress despite the throttle, with agreement intact.
    assert!(report.completed_batches > 0, "{}", report.summary());
    report.audit_ledgers().expect("ledgers consistent");
    report
        .audit_execution_stage()
        .expect("materialized tables match ledger heads");

    let row = report.stages.row(Stage::Checkpoint);
    assert!(row.processed > 0, "{}", report.stages.summary());
    assert!(
        !row.blocked.is_zero(),
        "the slowed checkpoint stage never pushed back on execution: {}",
        report.stages.summary()
    );

    // The throttle itself is *local*: the Block-policy checkpoint queue
    // bounds how far a replica's executor can run past the last snapshot
    // its own checkpoint thread processed — at most the queued snapshots
    // (CKPT_CAP intervals), the one the executor is parked pushing, the
    // one inside the slow thread, and the interval in progress. That
    // holds regardless of OS scheduling, so it is asserted per replica.
    let local_bound = K * (CKPT_CAP as u64 + 3);
    // *Stability* additionally needs a quorum (N - F = 3 of 4) of votes,
    // so the certified watermark can only ever track the 2nd-slowest
    // replica's snapshot progress (the quorum pivot). On a loaded host
    // the scheduler can starve one replica hundreds of heights behind
    // its peers; that spread is real but is not the throttle's to bound,
    // so stability is measured against the pivot, not each replica's own
    // head. Slack: a vote round trip plus one capacity of snapshots
    // in flight at the pivot replica, plus the shutdown drain (the
    // worker and executor drain their queues after the verifiers — and
    // with them, inbound peer votes — are gone).
    let pivot_bound = K * (2 * CKPT_CAP as u64 + 4) + ORDER_CAP + EXEC_CAP + K;
    let mut processed: Vec<u64> = report
        .checkpoints
        .values()
        .map(|c| c.processed_height)
        .collect();
    processed.sort_unstable();
    let pivot = processed[1]; // 2nd-lowest: the quorum-achievable height
    for (rid, ckpt) in &report.checkpoints {
        assert!(
            ckpt.stable_height > 0,
            "replica {rid} never reached a stable checkpoint"
        );
        let head = report.ledgers[rid].head_height();
        let local_lag = head - ckpt.processed_height.min(head);
        assert!(
            local_lag <= local_bound,
            "replica {rid}: head {head} ran {local_lag} past its own \
             checkpoint stage at {} (bound {local_bound})",
            ckpt.processed_height
        );
        let stable_lag = pivot.saturating_sub(ckpt.stable_height);
        assert!(
            stable_lag <= pivot_bound,
            "replica {rid}: stable height {} trails the quorum pivot \
             {pivot} by {stable_lag} (bound {pivot_bound})",
            ckpt.stable_height
        );
    }
}

#[test]
fn simnet_input_derivation_matches_fabric() {
    // The simulator's modeled input bound must stay the fabric's actual
    // bound: both formulas live in different crates (the DAG forbids
    // simnet depending on core), so this cross-crate guard is what
    // keeps a future retune of StageQueues::derive from silently
    // skewing saturation studies.
    use rdb_simnet::PipelineModel;
    use resilientdb::StageQueues;
    for batch in [1usize, 5, 10, 50, 100, 400] {
        for fanout in [1usize, 2, 4, 8] {
            assert_eq!(
                PipelineModel::input_capacity_for(batch, fanout),
                StageQueues::derive(batch, fanout).input.capacity,
                "derivations diverged at batch={batch} fanout={fanout}"
            );
        }
    }
}

mod simnet {
    use rdb_consensus::config::ProtocolKind;
    use rdb_simnet::{Overload, PipelineModel, Scenario};
    use rdb_workload::ycsb::YcsbConfig;

    const CAP: usize = 32;

    fn saturated() -> Scenario {
        let mut s = Scenario::paper(ProtocolKind::Pbft, 1, 4).quick();
        s.logical_clients = 8_000; // 160 batch clients on one cluster
        s.ycsb = YcsbConfig {
            record_count: 1_000,
            batch_size: 50,
            ..YcsbConfig::default()
        };
        s.cfg.batch_size = 50;
        // Shedding is recovered by retransmission; give the recovery
        // timers a chance to fire inside the short simulated window.
        s.cfg.client_retry = rdb_common::time::SimDuration::from_millis(250);
        s.cfg.progress_timeout = rdb_common::time::SimDuration::from_millis(600);
        // Measure from t=0 so the initial admission burst (where most
        // shedding happens) is part of the reported statistics.
        s.warmup = rdb_common::time::SimDuration::ZERO;
        s.compute.pipeline = PipelineModel::with_verifiers(2).with_input_queue(CAP, Overload::Shed);
        s
    }

    #[test]
    fn modeled_queue_full_behavior_is_deterministic() {
        // The modeled overload policy must be perfectly reproducible:
        // two identical saturated runs shed the same messages and end at
        // bit-identical metrics.
        let a = saturated().run();
        let b = saturated().run();
        assert!(
            a.shed_msgs > 0,
            "saturation must shed at CAP={CAP}: {}",
            a.summary()
        );
        assert!(
            a.max_input_depth <= CAP as u64 + 1,
            "modeled depth {} past the bound",
            a.max_input_depth
        );
        assert_eq!(a.shed_msgs, b.shed_msgs);
        assert_eq!(a.completed_batches, b.completed_batches);
        assert_eq!(a.events, b.events);
        assert_eq!(a.throughput_txn_s.to_bits(), b.throughput_txn_s.to_bits());
        assert_eq!(a.blocked_s.to_bits(), b.blocked_s.to_bits());
    }

    #[test]
    fn modeled_saturation_degrades_gracefully() {
        // Despite shedding, the closed loop keeps committing: bounded
        // queues turn overload into throughput flattening, not collapse.
        let m = saturated().run();
        assert!(
            m.completed_batches > 0,
            "no progress under modeled overload: {}",
            m.summary()
        );
        assert!(m.blocked_s >= 0.0);
    }
}
