//! Offline stand-in for the `serde` crate.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! the workspace vendors a minimal serialization framework with the same
//! surface the codebase uses: `Serialize`/`Deserialize` traits (derivable via
//! the sibling `serde_derive` proc-macro), `Serializer`/`Deserializer`
//! traits generic enough for hand-written adapters such as the
//! `#[serde(with = "...")]` modules, and `serde::de::Error::custom`.
//!
//! Internally everything funnels through a JSON-like [`value::Value`] tree;
//! `serde_json` (also vendored) renders that tree. This trades serde's
//! zero-copy visitor architecture for simplicity — fine for the repo's only
//! runtime uses (JSON report emission and round-trip tests).

pub mod value {
    use std::fmt;

    /// A JSON-like dynamic value: the interchange format between
    /// `Serialize` implementations and concrete serializers.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        U64(u64),
        I64(i64),
        F64(f64),
        Str(String),
        Seq(Vec<Value>),
        Map(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_map(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Map(m) => Some(m),
                _ => None,
            }
        }

        pub fn as_seq(&self) -> Option<&[Value]> {
            match self {
                Value::Seq(s) => Some(s),
                _ => None,
            }
        }
    }

    /// The single error type used by the value-tree layer.
    #[derive(Debug, Clone)]
    pub struct DeError(pub String);

    impl DeError {
        pub fn msg(m: impl Into<String>) -> DeError {
            DeError(m.into())
        }
    }

    impl fmt::Display for DeError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for DeError {}

    impl crate::ser::Error for DeError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            DeError(msg.to_string())
        }
    }

    impl crate::de::Error for DeError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            DeError(msg.to_string())
        }
    }

    /// A [`crate::Serializer`] that materializes the value tree itself.
    pub struct ValueSerializer;

    impl crate::Serializer for ValueSerializer {
        type Ok = Value;
        type Error = DeError;
        fn serialize_value(self, v: Value) -> Result<Value, DeError> {
            Ok(v)
        }
    }

    /// A [`crate::Deserializer`] reading from a borrowed value tree.
    pub struct ValueDeserializer<'a>(pub &'a Value);

    impl<'a> ValueDeserializer<'a> {
        pub fn new(v: &'a Value) -> Self {
            ValueDeserializer(v)
        }
    }

    impl<'de, 'a> crate::Deserializer<'de> for ValueDeserializer<'a> {
        type Error = DeError;
        fn deserialize_value(self) -> Result<Value, DeError> {
            Ok(self.0.clone())
        }
    }

    /// Look up a struct field in a serialized map.
    pub fn get<'v>(m: &'v [(String, Value)], key: &str) -> Result<&'v Value, DeError> {
        m.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError(format!("missing field `{key}`")))
    }
}

pub mod ser {
    use std::fmt;

    pub trait Error: Sized {
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// Value-based serializer: implementations decide what to do with the
    /// finished tree (`serde_json` renders it, [`crate::value::ValueSerializer`]
    /// returns it unchanged).
    pub trait Serializer: Sized {
        type Ok;
        type Error: Error;
        fn serialize_value(self, v: crate::value::Value) -> Result<Self::Ok, Self::Error>;
    }
}

pub mod de {
    use std::fmt;

    pub trait Error: Sized {
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// Value-based deserializer: yields the value tree the input parses to.
    pub trait Deserializer<'de>: Sized {
        type Error: Error;
        fn deserialize_value(self) -> Result<crate::value::Value, Self::Error>;
    }
}

pub use de::Deserializer;
pub use ser::Serializer;
use value::{DeError, Value};

pub trait Serialize {
    /// Convert `self` into the dynamic value tree.
    fn to_value(&self) -> Value;

    /// serde-compatible entry point; custom `#[serde(with = "...")]` modules
    /// call this generically.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

pub trait Deserialize<'de>: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// serde-compatible entry point.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.deserialize_value()?;
        Self::from_value(&v).map_err(<D::Error as de::Error>::custom)
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Implementations for std types.
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg("integer out of range")),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg("integer out of range")),
                    _ => Err(DeError::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg("integer out of range")),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg("integer out of range")),
                    _ => Err(DeError::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // Fits u64 in all workspace uses; saturate rather than panic.
        Value::U64(u64::try_from(*self).unwrap_or(u64::MAX))
    }
}
impl<'de> Deserialize<'de> for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        u64::from_value(v).map(u128::from)
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    _ => Err(DeError::msg("expected float")),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl<'de> Deserialize<'de> for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::msg("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::msg("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de> + Copy + Default, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let seq = v
            .as_seq()
            .ok_or_else(|| DeError::msg("expected sequence"))?;
        if seq.len() != N {
            return Err(DeError(format!("expected {N} elements, got {}", seq.len())));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(seq) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError::msg("expected tuple sequence"))?;
                Ok(($($t::from_value(
                    s.get($n).ok_or_else(|| DeError::msg("tuple too short"))?,
                )?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D)
);

/// Map keys must render to strings for the JSON-like tree.
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(k: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(k: &str) -> Result<Self, DeError> {
        Ok(k.to_string())
    }
}

macro_rules! impl_mapkey_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(k: &str) -> Result<Self, DeError> {
                k.parse().map_err(|_| DeError::msg("bad integer map key"))
            }
        }
    )*};
}
impl_mapkey_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}
impl<'de, K: MapKey + std::hash::Hash + Eq, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::msg("expected map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}
impl<'de, K: MapKey + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::msg("expected map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::F64(self.as_secs_f64())
    }
}
impl<'de> Deserialize<'de> for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(std::time::Duration::from_secs_f64)
    }
}
