//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest's API the workspace uses — the
//! `proptest!` macro, `Strategy` with `prop_map`, `any::<T>()`, integer
//! range strategies, `collection::vec`, `prop_oneof!`, `ProptestConfig`
//! and the `prop_assert*` macros — as a deterministic random-case runner.
//! No shrinking: a failing case panics with the rendered inputs instead of
//! minimizing them, which keeps the vendored surface tiny.

use std::ops::Range;

/// Deterministic generator dedicated to test-case production. Seeded from
/// the test name so every test draws an independent, reproducible stream.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str) -> TestRng {
        let mut state = 0xcbf29ce484222325u64; // FNV-1a over the test name
        for b in name.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x100000001b3);
        }
        TestRng { state }
    }

    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64: solid distribution, one u64 of state.
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    pub fn next_usize(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree;
/// `generate` directly yields a value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + r) as $t
            }
        }
    )*};
}
impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let n = self.len.start + rng.next_usize(span);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Uniformly picks one of several boxed strategies with the same value type.
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.next_usize(self.arms.len());
        self.arms[idx].generate(rng)
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$(Box::new($arm) as $crate::BoxedStrategy<_>),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The `proptest! { ... }` block: each contained `fn name(pat in strategy)`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    let ($($pat,)*) = ($( $crate::Strategy::generate(&($strat), &mut rng), )*);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}
