//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored serde's `Serialize`/`Deserialize` (value-tree
//! based, see `vendor/serde`) for non-generic structs and enums. `syn` and
//! `quote` are unavailable offline, so this hand-parses the item's token
//! stream and emits the impl as a source string.
//!
//! Supported shapes (everything the workspace uses):
//! * named / tuple / unit structs, enums with unit / tuple / struct variants
//! * `#[serde(skip)]` on fields (skipped on serialize, `Default` on
//!   deserialize)
//! * `#[serde(with = "module")]` on fields (calls `module::serialize` /
//!   `module::deserialize` through value-tree adapters)
//!
//! Enum representation matches serde's externally-tagged default: unit
//! variants serialize to a string, data variants to a one-entry map.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    /// `None` for tuple fields.
    name: Option<String>,
    skip: bool,
    with: Option<String>,
}

enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Extract `skip` / `with = "..."` from the tokens inside `#[serde(...)]`.
fn parse_serde_attr(group: &proc_macro::Group, skip: &mut bool, with: &mut Option<String>) {
    // Group is the bracket group `[serde(...)]`; find the inner paren group.
    let mut inner = group.stream().into_iter();
    let first = inner.next();
    let is_serde = matches!(&first, Some(TokenTree::Ident(i)) if i.to_string() == "serde");
    if !is_serde {
        return;
    }
    let Some(TokenTree::Group(args)) = inner.next() else {
        return;
    };
    let toks: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Ident(id) if id.to_string() == "skip" => {
                *skip = true;
                i += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "with" => {
                // with = "path"
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (toks.get(i + 1), toks.get(i + 2))
                {
                    if eq.as_char() == '=' {
                        let s = lit.to_string();
                        *with = Some(s.trim_matches('"').to_string());
                    }
                }
                i += 3;
            }
            _ => i += 1,
        }
    }
}

/// Consume leading attributes (returning serde options) and a visibility
/// qualifier from `toks[*i]` onward.
fn eat_attrs_and_vis(toks: &[TokenTree], i: &mut usize) -> (bool, Option<String>) {
    let mut skip = false;
    let mut with = None;
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
                    parse_serde_attr(g, &mut skip, &mut with);
                    *i += 2;
                } else {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return (skip, with),
        }
    }
}

/// Skip one type (everything up to a top-level `,`), tracking `<...>` depth.
/// Delimited groups are single trees, so only angle brackets need counting.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' if angle > 0 => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let (skip, with) = eat_attrs_and_vis(&toks, &mut i);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1; // name
        i += 1; // ':'
        skip_type(&toks, &mut i);
        i += 1; // ','
        fields.push(Field {
            name: Some(name),
            skip,
            with,
        });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let (skip, with) = eat_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_type(&toks, &mut i);
        i += 1; // ','
        fields.push(Field {
            name: None,
            skip,
            with,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        let _ = eat_attrs_and_vis(&toks, &mut i);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = Shape::Named(parse_named_fields(g.stream()));
                i += 1;
                s
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = Shape::Tuple(parse_tuple_fields(g.stream()));
                i += 1;
                s
            }
            _ => Shape::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        while let Some(t) = toks.get(i) {
            i += 1;
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes (doc comments etc.) and visibility.
    let _ = eat_attrs_and_vis(&toks, &mut i);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported");
        }
    }
    match kind.as_str() {
        "struct" => {
            let shape = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let variants = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Expression serializing `expr` (a reference) to a `Value`.
fn ser_expr(field: &Field, expr: &str) -> String {
    match &field.with {
        Some(path) => format!(
            "{path}::serialize({expr}, serde::value::ValueSerializer).expect(\"with-serialize\")"
        ),
        None => format!("serde::Serialize::to_value({expr})"),
    }
}

/// Expression deserializing a field from the `&Value` expression `src`.
/// The target type is inferred from the surrounding constructor.
fn de_expr(field: &Field, src: &str) -> String {
    match &field.with {
        Some(path) => {
            format!("{path}::deserialize(serde::value::ValueDeserializer::new({src}))?")
        }
        None => format!("serde::Deserialize::from_value({src})?"),
    }
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "serde::value::Value::Null".to_string(),
                Shape::Tuple(fields) => {
                    let live: Vec<(usize, &Field)> =
                        fields.iter().enumerate().filter(|(_, f)| !f.skip).collect();
                    if live.len() == 1 {
                        // Newtype: serialize transparently like serde does.
                        let (idx, f) = live[0];
                        ser_expr(f, &format!("&self.{idx}"))
                    } else {
                        let items: Vec<String> = live
                            .iter()
                            .map(|(idx, f)| ser_expr(f, &format!("&self.{idx}")))
                            .collect();
                        format!("serde::value::Value::Seq(vec![{}])", items.join(", "))
                    }
                }
                Shape::Named(fields) => {
                    let items: Vec<String> = fields
                        .iter()
                        .filter(|f| !f.skip)
                        .map(|f| {
                            let fname = f.name.as_deref().unwrap();
                            format!(
                                "(\"{fname}\".to_string(), {})",
                                ser_expr(f, &format!("&self.{fname}"))
                            )
                        })
                        .collect();
                    format!("serde::value::Value::Map(vec![{}])", items.join(", "))
                }
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                let arm = match &v.shape {
                    Shape::Unit => {
                        format!("{name}::{vn} => serde::value::Value::Str(\"{vn}\".to_string()),")
                    }
                    Shape::Tuple(fields) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|i| format!("f{i}")).collect();
                        let payload = if fields.len() == 1 {
                            ser_expr(&fields[0], "f0")
                        } else {
                            let items: Vec<String> = fields
                                .iter()
                                .enumerate()
                                .map(|(i, f)| ser_expr(f, &format!("f{i}")))
                                .collect();
                            format!("serde::value::Value::Seq(vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{vn}({}) => serde::value::Value::Map(vec![(\"{vn}\".to_string(), {payload})]),",
                            binds.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone().unwrap()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                let fname = f.name.as_deref().unwrap();
                                format!("(\"{fname}\".to_string(), {})", ser_expr(f, fname))
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {} }} => serde::value::Value::Map(vec![(\"{vn}\".to_string(), serde::value::Value::Map(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                };
                arms.push(arm);
            }
            (name, format!("match self {{ {} }}", arms.join("\n")))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
           fn to_value(&self) -> serde::value::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("Ok({name})"),
                Shape::Tuple(fields) => {
                    let live: Vec<(usize, &Field)> =
                        fields.iter().enumerate().filter(|(_, f)| !f.skip).collect();
                    if fields.len() == 1 && live.len() == 1 {
                        format!("Ok({name}({}))", de_expr(live[0].1, "v"))
                    } else {
                        let mut parts = Vec::new();
                        let mut live_idx = 0usize;
                        for f in fields {
                            if f.skip {
                                parts.push("Default::default()".to_string());
                            } else {
                                parts.push(de_expr(
                                    f,
                                    &format!(
                                        "s.get({live_idx}).ok_or_else(|| serde::value::DeError::msg(\"tuple too short\"))?"
                                    ),
                                ));
                                live_idx += 1;
                            }
                        }
                        format!(
                            "let s = v.as_seq().ok_or_else(|| serde::value::DeError::msg(\"expected sequence\"))?;\n\
                             Ok({name}({}))",
                            parts.join(", ")
                        )
                    }
                }
                Shape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            let fname = f.name.as_deref().unwrap();
                            if f.skip {
                                format!("{fname}: Default::default()")
                            } else {
                                format!(
                                    "{fname}: {}",
                                    de_expr(f, &format!("serde::value::get(m, \"{fname}\")?"))
                                )
                            }
                        })
                        .collect();
                    format!(
                        "let m = v.as_map().ok_or_else(|| serde::value::DeError::msg(\"expected map for {name}\"))?;\n\
                         Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push(format!("\"{vn}\" => Ok({name}::{vn}),"));
                    }
                    Shape::Tuple(fields) => {
                        let build = if fields.len() == 1 {
                            format!("Ok({name}::{vn}({}))", de_expr(&fields[0], "payload"))
                        } else {
                            let parts: Vec<String> = fields
                                .iter()
                                .enumerate()
                                .map(|(i, f)| {
                                    de_expr(
                                        f,
                                        &format!(
                                            "s.get({i}).ok_or_else(|| serde::value::DeError::msg(\"variant tuple too short\"))?"
                                        ),
                                    )
                                })
                                .collect();
                            format!(
                                "{{ let s = payload.as_seq().ok_or_else(|| serde::value::DeError::msg(\"expected sequence\"))?; Ok({name}::{vn}({})) }}",
                                parts.join(", ")
                            )
                        };
                        data_arms.push(format!("\"{vn}\" => {build},"));
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                let fname = f.name.as_deref().unwrap();
                                if f.skip {
                                    format!("{fname}: Default::default()")
                                } else {
                                    format!(
                                        "{fname}: {}",
                                        de_expr(f, &format!("serde::value::get(m, \"{fname}\")?"))
                                    )
                                }
                            })
                            .collect();
                        data_arms.push(format!(
                            "\"{vn}\" => {{ let m = payload.as_map().ok_or_else(|| serde::value::DeError::msg(\"expected map\"))?; Ok({name}::{vn} {{ {} }}) }},",
                            inits.join(", ")
                        ));
                    }
                }
            }
            let body = format!(
                "match v {{\n\
                   serde::value::Value::Str(s) => match s.as_str() {{\n\
                     {}\n\
                     other => Err(serde::value::DeError(format!(\"unknown variant {{other}}\"))),\n\
                   }},\n\
                   serde::value::Value::Map(m) if m.len() == 1 => {{\n\
                     let (tag, payload) = &m[0];\n\
                     match tag.as_str() {{\n\
                       {}\n\
                       other => Err(serde::value::DeError(format!(\"unknown variant {{other}}\"))),\n\
                     }}\n\
                   }},\n\
                   _ => Err(serde::value::DeError::msg(\"expected enum representation\")),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n"),
            );
            (name, body)
        }
    };
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
           fn from_value(v: &serde::value::Value) -> Result<Self, serde::value::DeError> {{\n\
             {body}\n\
           }}\n\
         }}"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
