//! Offline stand-in for `crossbeam`: provides `crossbeam::channel` with the
//! MPMC channel API the workspace uses (`unbounded`, `bounded`, cloneable
//! `Sender`/`Receiver`, `send`/`try_send`, `recv`/`recv_timeout`/`try_recv`,
//! `len`, disconnect detection). Built on a `Mutex<VecDeque>` + two
//! `Condvar`s (one for waiting receivers, one for senders blocked on a full
//! bounded channel); throughput is below real crossbeam but semantics match.
//!
//! Deliberate deviation from real crossbeam: `bounded(0)` (a rendezvous
//! channel) is not supported and panics — the workspace's backpressure
//! queues always have capacity ≥ 1, and rendezvous semantics would
//! complicate the stand-in for no user.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        /// Signalled when an item is pushed or the last sender leaves.
        cv: Condvar,
        /// Signalled when an item is popped or the last receiver leaves
        /// (only senders on a full bounded channel wait here).
        cv_room: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        /// `None` = unbounded; `Some(c)` = at most `c` queued items.
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    impl<T> State<T> {
        fn is_full(&self) -> bool {
            self.capacity.is_some_and(|c| self.items.len() >= c)
        }
    }

    /// Error returned by `Sender::send` when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by `Sender::try_send`.
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity; the value is returned.
        Full(T),
        /// All receivers are gone; the value is returned.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recover the value that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
            cv_room: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Create a bounded MPMC channel holding at most `cap` items; `send`
    /// blocks while full, `try_send` returns [`TrySendError::Full`].
    /// Unlike real crossbeam, `cap` must be ≥ 1 (no rendezvous channels).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap >= 1, "bounded(0) rendezvous channels are not supported");
        with_capacity(Some(cap))
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded channel is at capacity.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if !state.is_full() {
                    state.items.push_back(value);
                    drop(state);
                    self.shared.cv.notify_one();
                    return Ok(());
                }
                state = self
                    .shared
                    .cv_room
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking send: fails with [`TrySendError::Full`] instead of
        /// waiting when a bounded channel is at capacity.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if state.is_full() {
                return Err(TrySendError::Full(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.cv.notify_one();
            Ok(())
        }

        /// Items currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .items
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let none_left = state.senders == 0;
            drop(state);
            if none_left {
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.cv_room.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .cv
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.cv_room.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                // The loop top re-checks items, disconnect and deadline, so
                // the wait result itself needs no separate handling.
                let (s, _res) = self
                    .shared
                    .cv
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = s;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.shared.cv_room.notify_one();
                Ok(item)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Items currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .items
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator until all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Drain whatever is currently queued without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers -= 1;
            let none_left = state.receivers == 0;
            drop(state);
            if none_left {
                // Senders blocked on a full bounded channel must fail out.
                self.shared.cv_room.notify_all();
            }
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv().unwrap(), 1);
        // A pop makes room again.
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
        assert!(rx.is_empty());
    }

    #[test]
    fn bounded_send_blocks_until_room() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1); // frees the slot
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn blocked_sender_fails_when_receiver_drops() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(t.join().unwrap().is_err());
    }

    #[test]
    fn try_send_on_disconnected_returns_value() {
        let (tx, rx) = bounded::<u32>(4);
        drop(rx);
        match tx.try_send(9) {
            Err(TrySendError::Disconnected(v)) => assert_eq!(v, 9),
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_never_full() {
        let (tx, rx) = unbounded::<u32>();
        for i in 0..10_000 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(rx.len(), 10_000);
    }
}
