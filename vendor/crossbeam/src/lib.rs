//! Offline stand-in for `crossbeam`: provides `crossbeam::channel` with the
//! unbounded MPMC channel API the workspace uses (`unbounded`, cloneable
//! `Sender`/`Receiver`, `recv`/`recv_timeout`/`try_recv`, disconnect
//! detection). Built on a `Mutex<VecDeque>` + `Condvar`; throughput is below
//! real crossbeam but semantics match.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        cv: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by `Sender::send` when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let none_left = state.senders == 0;
            drop(state);
            if none_left {
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .cv
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                // The loop top re-checks items, disconnect and deadline, so
                // the wait result itself needs no separate handling.
                let (s, _res) = self
                    .shared
                    .cv
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = s;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(item) = state.items.pop_front() {
                Ok(item)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator until all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Drain whatever is currently queued without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }
}
