//! Offline stand-in for `rand`: the `Rng`/`SeedableRng` surface the
//! workspace uses, backed by a deterministic xoshiro256** generator.
//! Stream values differ from the real `rand::rngs::StdRng` (ChaCha12), but
//! every consumer only relies on determinism given a seed, which holds.

/// Uniform sampling support for `gen_range`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Values producible by `Rng::gen`.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + r) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (Blackman & Vigna), seeded via
    /// SplitMix64 exactly as the reference implementation recommends.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}
