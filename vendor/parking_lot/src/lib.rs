//! Offline stand-in for `parking_lot`: wraps `std::sync` primitives behind
//! parking_lot's non-poisoning API (`lock()`/`read()`/`write()` return
//! guards directly; a poisoned lock just hands back the inner guard).

use std::ops::{Deref, DerefMut};
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait_for can temporarily take the std guard.
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().unwrap()
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().unwrap()
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Result of a timed condition-variable wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

// std::sync::Condvar itself panics when used with two different mutexes,
// which matches the single-mutex discipline of every workspace user.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }
}
