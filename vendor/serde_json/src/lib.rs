//! Offline stand-in for `serde_json`: renders the vendored serde's value
//! tree as JSON text and parses JSON back into it.

use serde::value::{DeError, Value, ValueDeserializer};
use serde::{Deserialize, Serialize};
use std::fmt;

#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                out.push_str(&format!("{n}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                render(val, out);
            }
            out.push('}');
        }
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error("bad array".into())),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error("bad object".into())),
                    }
                }
            }
            Some(_) => self.parse_number(),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("expected `{kw}`")))
        }
    }

    /// Parse the 4 hex digits starting at byte offset `at`.
    fn parse_hex4(&self, at: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| Error("bad \\u escape".into()))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
            16,
        )
        .map_err(|_| Error("bad \\u escape".into()))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let mut code = self.parse_hex4(self.pos + 1)?;
                            self.pos += 4;
                            if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a low surrogate escape
                                // must follow (JSON encodes non-BMP chars
                                // as a surrogate pair).
                                if self.bytes.get(self.pos + 1..self.pos + 3)
                                    != Some(b"\\u".as_slice())
                                {
                                    return Err(Error("unpaired surrogate".into()));
                                }
                                let low = self.parse_hex4(self.pos + 3)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                self.pos += 6;
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error("invalid utf8".into()))?,
                    );
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

/// Parse a JSON string into the raw value tree.
pub fn from_str_value(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error("trailing characters".into()));
    }
    Ok(v)
}

/// Parse a JSON string into a `Deserialize` type.
pub fn from_str<'de, T: Deserialize<'de>>(input: &str) -> Result<T, Error> {
    let v = from_str_value(input)?;
    T::deserialize(ValueDeserializer::new(&v)).map_err(|DeError(m)| Error(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_values() {
        let v = from_str_value(r#"{"a":1,"b":[true,null,-2,1.5],"c":"x"}"#).unwrap();
        let mut out = String::new();
        render(&v, &mut out);
        assert_eq!(out, r#"{"a":1,"b":[true,null,-2,1.5],"c":"x"}"#);
    }

    #[test]
    fn decodes_surrogate_pairs() {
        // Real serde_json's escape_non_ascii encoding of an emoji.
        let v = from_str_value(r#""😀""#).unwrap();
        assert_eq!(v, Value::Str("\u{1F600}".to_string()));
    }

    #[test]
    fn rejects_unpaired_surrogate() {
        assert!(from_str_value(r#""\ud83d""#).is_err());
    }

    #[test]
    fn escapes_on_render() {
        let mut out = String::new();
        render(&Value::Str("a\"\n\\".to_string()), &mut out);
        assert_eq!(out, r#""a\"\n\\""#);
    }
}
