//! Offline stand-in for `criterion`.
//!
//! Provides the `Criterion` / `BenchmarkGroup` / `Bencher` surface plus the
//! `criterion_group!` / `criterion_main!` macros so `cargo bench` targets
//! compile (`harness = false`) and run. Measurement is a simple
//! warmup-then-sample loop reporting mean ns/iter — no statistics engine,
//! but honest wall-clock numbers suitable for coarse regression checks.

use std::fmt;
use std::time::{Duration, Instant};

/// Units of work per iteration, used to report derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and estimate a batch size targeting ~1/10 of the
        // measurement window per sample.
        let warmup_start = Instant::now();
        let mut iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(50) {
            std::hint::black_box(routine());
            iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((budget_ns / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);

        let mut total_ns = 0f64;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total_ns += start.elapsed().as_nanos() as f64;
            total_iters += batch;
        }
        self.mean_ns = total_ns / total_iters.max(1) as f64;
    }
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let per_sec = if mean_ns > 0.0 { 1e9 / mean_ns } else { 0.0 };
    match throughput {
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            let mbps = per_sec * n as f64 / 1e6;
            println!("bench: {name:<40} {mean_ns:>12.1} ns/iter  {mbps:>10.1} MB/s");
        }
        Some(Throughput::Elements(n)) => {
            let eps = per_sec * n as f64;
            println!("bench: {name:<40} {mean_ns:>12.1} ns/iter  {eps:>10.0} elem/s");
        }
        None => {
            println!("bench: {name:<40} {mean_ns:>12.1} ns/iter");
        }
    }
}

/// Top-level benchmark harness.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            mean_ns: 0.0,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        report(&name.to_string(), b.mean_ns, None);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            mean_ns: 0.0,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.mean_ns, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            mean_ns: 0.0,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.mean_ns, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Re-exported for convenience; criterion's own black_box.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
