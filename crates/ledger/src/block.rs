//! Ledger blocks.

use rdb_consensus::certificate::CommitCertificate;
use rdb_consensus::types::SignedBatch;
use rdb_crypto::digest::Digest;
use rdb_crypto::sha256::Sha256;
use serde::{Deserialize, Serialize};

/// One block: the i-th executed client batch, its proof, and the chain
/// linkage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Position in the ledger (0 = genesis).
    pub height: u64,
    /// Hash of the previous block ([`Digest::ZERO`] for genesis).
    pub parent: Digest,
    /// The executed client batch.
    pub batch: SignedBatch,
    /// The commit certificate proving consensus on the batch. `None` only
    /// for the genesis block and for protocols that do not produce
    /// transferable certificates (Zyzzyva's speculative path, HotStuff
    /// QCs are recorded as certificates by the driver where available).
    pub certificate: Option<CommitCertificate>,
    /// Digest of the replica state after executing this block.
    pub state_digest: Digest,
}

impl Block {
    /// The genesis block of every ledger.
    pub fn genesis() -> Block {
        Block {
            height: 0,
            parent: Digest::ZERO,
            batch: SignedBatch::noop(rdb_common::ids::ClusterId(u16::MAX), 0),
            certificate: None,
            state_digest: Digest::ZERO,
        }
    }

    /// The block's hash: binds height, parent, batch content, certificate
    /// identity and post-state.
    pub fn hash(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"rdb-block");
        h.update(&self.height.to_le_bytes());
        h.update(self.parent.as_bytes());
        h.update(self.batch.digest().as_bytes());
        match &self.certificate {
            Some(c) => {
                h.update(&[1u8]);
                h.update(&c.cluster.0.to_le_bytes());
                h.update(&c.round.to_le_bytes());
                h.update(c.digest.as_bytes());
                h.update(&(c.commits.len() as u64).to_le_bytes());
                for cs in &c.commits {
                    h.update(&cs.replica.cluster.0.to_le_bytes());
                    h.update(&cs.replica.index.to_le_bytes());
                    h.update(&cs.sig.0);
                }
            }
            None => {
                h.update(&[0u8]);
            }
        }
        h.update(self.state_digest.as_bytes());
        Digest(h.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::ids::ClusterId;

    #[test]
    fn genesis_is_stable() {
        assert_eq!(Block::genesis().hash(), Block::genesis().hash());
        assert_eq!(Block::genesis().height, 0);
        assert_eq!(Block::genesis().parent, Digest::ZERO);
    }

    #[test]
    fn hash_binds_every_field() {
        let base = Block {
            height: 1,
            parent: Block::genesis().hash(),
            batch: SignedBatch::noop(ClusterId(0), 1),
            certificate: None,
            state_digest: Digest::of(b"s"),
        };
        let h = base.hash();

        let mut b = base.clone();
        b.height = 2;
        assert_ne!(b.hash(), h);

        let mut b = base.clone();
        b.parent = Digest::of(b"other");
        assert_ne!(b.hash(), h);

        let mut b = base.clone();
        b.batch = SignedBatch::noop(ClusterId(1), 1);
        assert_ne!(b.hash(), h);

        let mut b = base.clone();
        b.state_digest = Digest::of(b"t");
        assert_ne!(b.hash(), h);
    }
}
