//! # rdb-ledger
//!
//! The ResilientDB blockchain ledger (§3 of the paper): "the immutable
//! append-only blockchain representing the ordered sequence of client
//! requests accepted. In ResilientDB, the i-th block in the ledger
//! consists of the i-th executed client request. [...] the block not only
//! consists of the client request, but also contains a commit certificate.
//! This prevents tampering of any block, as only a single commit
//! certificate can be made per cluster per GeoBFT round (Lemma 2.3)."
//!
//! * [`block`] — blocks embedding batches and commit certificates, hash
//!   chained;
//! * [`chain`] — the append-only ledger with full verification;
//! * [`recovery`] — replica recovery by auditing a peer's ledger (§3:
//!   "a recovering replica can simply read the ledger of any replica it
//!   chooses and directly verify whether the ledger can be trusted").

pub mod block;
pub mod chain;
pub mod recovery;

pub use block::Block;
pub use chain::Ledger;
pub use recovery::{audit_chain, recover_from, recover_from_checkpoint, AuditError};
