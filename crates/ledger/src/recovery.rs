//! Replica recovery by ledger audit.
//!
//! §3 of the paper: "The immutable structure of the ledger also helps when
//! recovering replicas: tampering of its ledger by any replica can easily
//! be detected. Hence, a recovering replica can simply read the ledger of
//! any replica it chooses and directly verify whether the ledger can be
//! trusted (is not tampered with)."

use crate::chain::Ledger;
use rdb_common::config::SystemConfig;
use rdb_consensus::crypto_ctx::CryptoCtx;
use rdb_store::KvStore;
use std::fmt;

/// Why an audited ledger was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// Structural verification failed (hash chain, heights, genesis).
    Corrupt(String),
    /// The ledger is shorter than the prefix the auditor already trusts.
    TooShort {
        /// The peer's head height.
        have: u64,
        /// The height the auditor requires.
        need: u64,
    },
    /// The peer's chain disagrees with a block the auditor already trusts.
    ForkedAt(u64),
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Corrupt(s) => write!(f, "ledger corrupt: {s}"),
            AuditError::TooShort { have, need } => {
                write!(f, "ledger too short: have {have}, need {need}")
            }
            AuditError::ForkedAt(h) => write!(f, "ledger forks from trusted prefix at {h}"),
        }
    }
}

impl std::error::Error for AuditError {}

/// Audit a peer's ledger against an optionally-known trusted prefix.
///
/// Returns `Ok(())` when the chain is internally consistent, all
/// certificates verify, and the chain extends `trusted`.
pub fn audit_chain(
    peer: &Ledger,
    trusted: Option<&Ledger>,
    cfg: &SystemConfig,
    crypto: &CryptoCtx,
) -> Result<(), AuditError> {
    peer.verify(Some((cfg, crypto)))
        .map_err(|e| AuditError::Corrupt(e.to_string()))?;
    if let Some(trusted) = trusted {
        if peer.head_height() < trusted.head_height() {
            return Err(AuditError::TooShort {
                have: peer.head_height(),
                need: trusted.head_height(),
            });
        }
        for h in 0..=trusted.head_height() {
            let a = trusted.block(h).expect("within range");
            let b = peer.block(h).expect("checked length");
            if a.hash() != b.hash() {
                return Err(AuditError::ForkedAt(h));
            }
        }
    }
    Ok(())
}

/// Rebuild replica state from an audited ledger: replay every block's
/// batch against a fresh store. Returns the recovered store; the caller
/// should verify the final state digest against `peer`'s recorded one
/// (which this function asserts when the ledger records real-execution
/// state digests).
pub fn recover_from(
    peer: &Ledger,
    trusted: Option<&Ledger>,
    cfg: &SystemConfig,
    crypto: &CryptoCtx,
    initial_store: KvStore,
) -> Result<KvStore, AuditError> {
    audit_chain(peer, trusted, cfg, crypto)?;
    let mut store = initial_store;
    for block in peer.blocks().iter().skip(1) {
        let ops: Vec<rdb_store::Operation> = block.batch.batch.operations().cloned().collect();
        store.execute_batch(&ops);
    }
    Ok(store)
}

impl Ledger {
    /// Construct a ledger from raw blocks WITHOUT verification. Exists for
    /// tests and for modeling malicious peers; always [`Ledger::verify`]
    /// or [`audit_chain`] before trusting the result.
    pub fn from_blocks_unchecked(blocks: Vec<crate::block::Block>) -> Ledger {
        // Safety note: Ledger is a plain Vec wrapper; the invariants are
        // re-established by verify().
        let mut l = Ledger::new();
        l.replace_blocks(blocks);
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::ids::{ClientId, NodeId, ReplicaId};
    use rdb_consensus::types::{ClientBatch, SignedBatch, Transaction};
    use rdb_crypto::digest::Digest;
    use rdb_crypto::sign::KeyStore;
    use rdb_store::{Operation, Value};

    fn ctx() -> (SystemConfig, CryptoCtx) {
        let cfg = SystemConfig::geo(1, 4).unwrap();
        let ks = KeyStore::new(5);
        let signer = ks.register(NodeId::Replica(ReplicaId::new(0, 0)));
        (cfg, CryptoCtx::new(signer, ks.verifier(), true))
    }

    fn write_batch(round: u64) -> SignedBatch {
        let client = ClientId::new(0, 0);
        SignedBatch {
            batch: ClientBatch {
                client,
                batch_seq: round,
                txns: vec![Transaction {
                    client,
                    seq: round,
                    op: Operation::Write {
                        key: round,
                        value: Value::from_u64(round * 10),
                    },
                }],
            },
            pubkey: Default::default(),
            sig: Default::default(),
        }
    }

    #[test]
    fn clean_ledger_passes_audit() {
        let (cfg, crypto) = ctx();
        let mut l = Ledger::new();
        l.append(write_batch(1), None, Digest::ZERO);
        assert!(audit_chain(&l, None, &cfg, &crypto).is_ok());
    }

    #[test]
    fn tampered_ledger_fails_audit() {
        let (cfg, crypto) = ctx();
        let mut l = Ledger::new();
        l.append(write_batch(1), None, Digest::ZERO);
        l.append(write_batch(2), None, Digest::ZERO);
        let mut tampered = l.clone();
        // Rewrite history: replace block 1's batch.
        let mut blocks = tampered.blocks().to_vec();
        blocks[1].batch = write_batch(9);
        tampered = rebuild(blocks);
        let err = audit_chain(&tampered, None, &cfg, &crypto).unwrap_err();
        assert!(matches!(err, AuditError::Corrupt(_)));
    }

    #[test]
    fn fork_from_trusted_prefix_detected() {
        let (cfg, crypto) = ctx();
        let mut trusted = Ledger::new();
        trusted.append(write_batch(1), None, Digest::ZERO);
        // Peer built a *different* (but internally valid) history.
        let mut peer = Ledger::new();
        peer.append(write_batch(9), None, Digest::ZERO);
        peer.append(write_batch(2), None, Digest::ZERO);
        let err = audit_chain(&peer, Some(&trusted), &cfg, &crypto).unwrap_err();
        assert_eq!(err, AuditError::ForkedAt(1));
    }

    #[test]
    fn short_peer_rejected() {
        let (cfg, crypto) = ctx();
        let mut trusted = Ledger::new();
        trusted.append(write_batch(1), None, Digest::ZERO);
        let peer = Ledger::new();
        let err = audit_chain(&peer, Some(&trusted), &cfg, &crypto).unwrap_err();
        assert_eq!(err, AuditError::TooShort { have: 0, need: 1 });
    }

    #[test]
    fn recovery_replays_state() {
        let (cfg, crypto) = ctx();
        let mut l = Ledger::new();
        for i in 1..=3 {
            l.append(write_batch(i), None, Digest::ZERO);
        }
        let store = recover_from(&l, None, &cfg, &crypto, KvStore::new()).unwrap();
        assert_eq!(store.get(1), Some(Value::from_u64(10)));
        assert_eq!(store.get(2), Some(Value::from_u64(20)));
        assert_eq!(store.get(3), Some(Value::from_u64(30)));
    }

    /// Rebuild a ledger from raw blocks (test helper emulating a malicious
    /// peer handing over arbitrary data).
    fn rebuild(blocks: Vec<crate::block::Block>) -> Ledger {
        // Construct through the public API then overwrite; simplest is to
        // transmute via serde-like reconstruction. For tests we re-create
        // by direct field access through a helper on Ledger.
        Ledger::from_blocks_unchecked(blocks)
    }
}
