//! Replica recovery by ledger audit.
//!
//! §3 of the paper: "The immutable structure of the ledger also helps when
//! recovering replicas: tampering of its ledger by any replica can easily
//! be detected. Hence, a recovering replica can simply read the ledger of
//! any replica it chooses and directly verify whether the ledger can be
//! trusted (is not tampered with)."

use crate::chain::Ledger;
use rdb_common::config::SystemConfig;
use rdb_consensus::crypto_ctx::CryptoCtx;
use rdb_store::KvStore;
use std::fmt;

/// Why an audited ledger was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// Structural verification failed (hash chain, heights, genesis).
    Corrupt(String),
    /// The ledger is shorter than the prefix the auditor already trusts.
    TooShort {
        /// The peer's head height.
        have: u64,
        /// The height the auditor requires.
        need: u64,
    },
    /// The peer's chain disagrees with a block the auditor already trusts.
    ForkedAt(u64),
    /// The peer compacted its ledger past the height the recovering
    /// replica needs — the audit cannot link the chains, and recovery
    /// requires a newer state snapshot (a full state transfer) instead
    /// of suffix replay.
    PrunedGap {
        /// The peer's first retained height (its recovery anchor).
        base: u64,
        /// The height the auditor needed retained.
        need: u64,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Corrupt(s) => write!(f, "ledger corrupt: {s}"),
            AuditError::TooShort { have, need } => {
                write!(f, "ledger too short: have {have}, need {need}")
            }
            AuditError::ForkedAt(h) => write!(f, "ledger forks from trusted prefix at {h}"),
            AuditError::PrunedGap { base, need } => {
                write!(f, "ledger compacted to {base}, need height {need} retained")
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// Audit a peer's ledger against an optionally-known trusted prefix.
///
/// Returns `Ok(())` when the chain is internally consistent, all
/// certificates verify, and the chain extends `trusted` over every
/// height *both* ledgers retain. Compacted ledgers (on either side)
/// audit from the later of the two recovery anchors; a peer that pruned
/// past everything the auditor trusts is rejected with
/// [`AuditError::PrunedGap`] — nothing links the chains.
pub fn audit_chain(
    peer: &Ledger,
    trusted: Option<&Ledger>,
    cfg: &SystemConfig,
    crypto: &CryptoCtx,
) -> Result<(), AuditError> {
    peer.verify(Some((cfg, crypto)))
        .map_err(|e| AuditError::Corrupt(e.to_string()))?;
    if let Some(trusted) = trusted {
        if peer.head_height() < trusted.head_height() {
            return Err(AuditError::TooShort {
                have: peer.head_height(),
                need: trusted.head_height(),
            });
        }
        if peer.base_height() > trusted.head_height() {
            return Err(AuditError::PrunedGap {
                base: peer.base_height(),
                need: trusted.head_height(),
            });
        }
        let from = peer.base_height().max(trusted.base_height());
        for h in from..=trusted.head_height() {
            let a = trusted.block(h).expect("within retained range");
            let b = peer.block(h).expect("within retained range");
            if a.hash() != b.hash() {
                return Err(AuditError::ForkedAt(h));
            }
        }
    }
    Ok(())
}

/// Rebuild replica state from an audited *uncompacted* ledger: replay
/// every block's batch against a fresh store. Returns the recovered
/// store; the caller should verify the final state digest against
/// `peer`'s recorded one (which this function asserts when the ledger
/// records real-execution state digests). A compacted peer cannot be
/// replayed from genesis — use [`recover_from_checkpoint`].
pub fn recover_from(
    peer: &Ledger,
    trusted: Option<&Ledger>,
    cfg: &SystemConfig,
    crypto: &CryptoCtx,
    initial_store: KvStore,
) -> Result<KvStore, AuditError> {
    if peer.base_height() > 0 {
        return Err(AuditError::PrunedGap {
            base: peer.base_height(),
            need: 0,
        });
    }
    audit_chain(peer, trusted, cfg, crypto)?;
    let mut store = initial_store;
    for block in peer.blocks().iter().skip(1) {
        let ops: Vec<rdb_store::Operation> = block.batch.batch.operations().cloned().collect();
        store.execute_batch(&ops);
    }
    Ok(store)
}

/// Restart a replica from a stable checkpoint: pair the checkpointed
/// state snapshot (`anchor_store`, the table as of `anchor_height`) with
/// a peer's audited ledger, validate the snapshot against the anchor
/// block's recorded `state_digest`, and replay only the suffix above the
/// anchor. Returns the caught-up store, whose digest is checked against
/// the peer's head block — the recovering replica rejoins with the exact
/// state the quorum certified.
///
/// `trusted` is the restarting replica's own retained ledger (fork
/// detection over the overlap); the peer must still retain the anchor
/// height, otherwise recovery needs a newer snapshot
/// ([`AuditError::PrunedGap`]).
pub fn recover_from_checkpoint(
    peer: &Ledger,
    trusted: Option<&Ledger>,
    cfg: &SystemConfig,
    crypto: &CryptoCtx,
    anchor_height: u64,
    anchor_store: KvStore,
) -> Result<KvStore, AuditError> {
    audit_chain(peer, trusted, cfg, crypto)?;
    let Some(anchor_block) = peer.block(anchor_height) else {
        return Err(AuditError::PrunedGap {
            base: peer.base_height(),
            need: anchor_height,
        });
    };
    if anchor_block.state_digest != anchor_store.state_digest() {
        return Err(AuditError::Corrupt(format!(
            "checkpoint snapshot does not match the anchor block's state at height {anchor_height}"
        )));
    }
    let mut store = anchor_store;
    for h in (anchor_height + 1)..=peer.head_height() {
        let block = peer.block(h).expect("suffix retained past the anchor");
        let ops: Vec<rdb_store::Operation> = block.batch.batch.operations().cloned().collect();
        store.execute_batch(&ops);
    }
    let head = peer.block(peer.head_height()).expect("head present");
    if peer.head_height() > anchor_height && head.state_digest != store.state_digest() {
        return Err(AuditError::Corrupt(
            "replayed suffix does not reach the head's recorded state".into(),
        ));
    }
    Ok(store)
}

impl Ledger {
    /// Construct a ledger from raw blocks WITHOUT verification. Exists for
    /// tests and for modeling malicious peers; always [`Ledger::verify`]
    /// or [`audit_chain`] before trusting the result.
    pub fn from_blocks_unchecked(blocks: Vec<crate::block::Block>) -> Ledger {
        // Safety note: Ledger is a plain Vec wrapper; the invariants are
        // re-established by verify().
        let mut l = Ledger::new();
        l.replace_blocks(blocks);
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::ids::{ClientId, NodeId, ReplicaId};
    use rdb_consensus::types::{ClientBatch, SignedBatch, Transaction};
    use rdb_crypto::digest::Digest;
    use rdb_crypto::sign::KeyStore;
    use rdb_store::{Operation, Value};

    fn ctx() -> (SystemConfig, CryptoCtx) {
        let cfg = SystemConfig::geo(1, 4).unwrap();
        let ks = KeyStore::new(5);
        let signer = ks.register(NodeId::Replica(ReplicaId::new(0, 0)));
        (cfg, CryptoCtx::new(signer, ks.verifier(), true))
    }

    fn write_batch(round: u64) -> SignedBatch {
        let client = ClientId::new(0, 0);
        SignedBatch {
            batch: ClientBatch {
                client,
                batch_seq: round,
                txns: vec![Transaction {
                    client,
                    seq: round,
                    op: Operation::Write {
                        key: round,
                        value: Value::from_u64(round * 10),
                    },
                }],
            },
            pubkey: Default::default(),
            sig: Default::default(),
        }
    }

    #[test]
    fn clean_ledger_passes_audit() {
        let (cfg, crypto) = ctx();
        let mut l = Ledger::new();
        l.append(write_batch(1), None, Digest::ZERO);
        assert!(audit_chain(&l, None, &cfg, &crypto).is_ok());
    }

    #[test]
    fn tampered_ledger_fails_audit() {
        let (cfg, crypto) = ctx();
        let mut l = Ledger::new();
        l.append(write_batch(1), None, Digest::ZERO);
        l.append(write_batch(2), None, Digest::ZERO);
        let mut tampered = l.clone();
        // Rewrite history: replace block 1's batch.
        let mut blocks = tampered.blocks().to_vec();
        blocks[1].batch = write_batch(9);
        tampered = rebuild(blocks);
        let err = audit_chain(&tampered, None, &cfg, &crypto).unwrap_err();
        assert!(matches!(err, AuditError::Corrupt(_)));
    }

    #[test]
    fn fork_from_trusted_prefix_detected() {
        let (cfg, crypto) = ctx();
        let mut trusted = Ledger::new();
        trusted.append(write_batch(1), None, Digest::ZERO);
        // Peer built a *different* (but internally valid) history.
        let mut peer = Ledger::new();
        peer.append(write_batch(9), None, Digest::ZERO);
        peer.append(write_batch(2), None, Digest::ZERO);
        let err = audit_chain(&peer, Some(&trusted), &cfg, &crypto).unwrap_err();
        assert_eq!(err, AuditError::ForkedAt(1));
    }

    #[test]
    fn short_peer_rejected() {
        let (cfg, crypto) = ctx();
        let mut trusted = Ledger::new();
        trusted.append(write_batch(1), None, Digest::ZERO);
        let peer = Ledger::new();
        let err = audit_chain(&peer, Some(&trusted), &cfg, &crypto).unwrap_err();
        assert_eq!(err, AuditError::TooShort { have: 0, need: 1 });
    }

    #[test]
    fn recovery_replays_state() {
        let (cfg, crypto) = ctx();
        let mut l = Ledger::new();
        for i in 1..=3 {
            l.append(write_batch(i), None, Digest::ZERO);
        }
        let store = recover_from(&l, None, &cfg, &crypto, KvStore::new()).unwrap();
        assert_eq!(store.get(1), Some(Value::from_u64(10)));
        assert_eq!(store.get(2), Some(Value::from_u64(20)));
        assert_eq!(store.get(3), Some(Value::from_u64(30)));
    }

    /// Rebuild a ledger from raw blocks (test helper emulating a malicious
    /// peer handing over arbitrary data).
    fn rebuild(blocks: Vec<crate::block::Block>) -> Ledger {
        // Construct through the public API then overwrite; simplest is to
        // transmute via serde-like reconstruction. For tests we re-create
        // by direct field access through a helper on Ledger.
        Ledger::from_blocks_unchecked(blocks)
    }

    /// A ledger of `n` write batches whose blocks record the real
    /// post-execution state digests, plus the store states along the way.
    fn executed_ledger(n: u64) -> (Ledger, Vec<KvStore>) {
        let mut l = Ledger::new();
        let mut store = KvStore::new();
        let mut states = vec![store.clone()];
        for i in 1..=n {
            let sb = write_batch(i);
            let ops: Vec<rdb_store::Operation> = sb.batch.operations().cloned().collect();
            store.execute_batch(&ops);
            l.append(sb, None, store.state_digest());
            states.push(store.clone());
        }
        (l, states)
    }

    #[test]
    fn compacted_peer_audits_from_the_anchor() {
        let (cfg, crypto) = ctx();
        let (full, _) = executed_ledger(8);
        let mut peer = full.clone();
        peer.compact(5);
        assert!(audit_chain(&peer, None, &cfg, &crypto).is_ok());
        // Against an uncompacted trusted prefix: overlap heights 5..=8.
        assert!(audit_chain(&peer, Some(&full), &cfg, &crypto).is_ok());
        // And the mirror image: a full peer against a compacted trusted.
        assert!(audit_chain(&full, Some(&peer), &cfg, &crypto).is_ok());
        // Full replay of a compacted peer is impossible.
        let err = recover_from(&peer, None, &cfg, &crypto, KvStore::new()).unwrap_err();
        assert!(matches!(err, AuditError::PrunedGap { base: 5, .. }));
    }

    #[test]
    fn checkpoint_recovery_replays_only_the_suffix() {
        let (cfg, crypto) = ctx();
        let (full, states) = executed_ledger(9);
        let mut peer = full.clone();
        peer.compact(4);
        // Restart from the checkpoint at height 4: its snapshot plus the
        // peer's retained suffix reproduce the head state exactly.
        let recovered =
            recover_from_checkpoint(&peer, None, &cfg, &crypto, 4, states[4].clone()).unwrap();
        assert_eq!(recovered.state_digest(), states[9].state_digest());
        // A snapshot that does not match the anchor block is rejected.
        let err =
            recover_from_checkpoint(&peer, None, &cfg, &crypto, 4, KvStore::new()).unwrap_err();
        assert!(matches!(err, AuditError::Corrupt(_)));
    }

    #[test]
    fn recovery_gap_is_reported_when_peer_pruned_past_the_anchor() {
        let (cfg, crypto) = ctx();
        let (full, states) = executed_ledger(9);
        let mut peer = full.clone();
        peer.compact(7);
        // Our last checkpoint is older than anything the peer retains.
        let err =
            recover_from_checkpoint(&peer, None, &cfg, &crypto, 4, states[4].clone()).unwrap_err();
        assert_eq!(err, AuditError::PrunedGap { base: 7, need: 4 });
        // Same for an audit whose whole trusted prefix was pruned away.
        let mut old = full.clone();
        old.replace_blocks(full.blocks()[..5].to_vec()); // head 4
        let err = audit_chain(&peer, Some(&old), &cfg, &crypto).unwrap_err();
        assert_eq!(err, AuditError::PrunedGap { base: 7, need: 4 });
    }
}
