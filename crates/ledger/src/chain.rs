//! The append-only ledger.

use crate::block::Block;
use rdb_common::config::SystemConfig;
use rdb_common::error::{RdbError, RdbResult};
use rdb_consensus::certificate::CommitCertificate;
use rdb_consensus::crypto_ctx::CryptoCtx;
use rdb_consensus::types::{Decision, SignedBatch};
use rdb_crypto::digest::Digest;
use rdb_crypto::merkle::MerkleTree;

/// A replica's full copy of the blockchain (ResilientDB is fully
/// replicated: "each replica independently maintains a full copy of the
/// ledger", §3).
#[derive(Debug, Clone)]
pub struct Ledger {
    blocks: Vec<Block>,
}

impl Ledger {
    /// A fresh ledger containing only the genesis block.
    pub fn new() -> Ledger {
        Ledger {
            blocks: vec![Block::genesis()],
        }
    }

    /// Number of blocks including genesis.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when only genesis is present.
    pub fn is_empty(&self) -> bool {
        self.blocks.len() == 1
    }

    /// Height of the latest block.
    pub fn head_height(&self) -> u64 {
        self.blocks.last().expect("genesis always present").height
    }

    /// Hash of the latest block.
    pub fn head_hash(&self) -> Digest {
        self.blocks.last().expect("genesis always present").hash()
    }

    /// Get a block by height.
    pub fn block(&self, height: u64) -> Option<&Block> {
        self.blocks.get(height as usize)
    }

    /// All blocks (for audits).
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Append a batch with its certificate as the next block.
    pub fn append(
        &mut self,
        batch: SignedBatch,
        certificate: Option<CommitCertificate>,
        state_digest: Digest,
    ) -> &Block {
        let parent = self.head_hash();
        let height = self.head_height() + 1;
        self.blocks.push(Block {
            height,
            parent,
            batch,
            certificate,
            state_digest,
        });
        self.blocks.last().expect("just pushed")
    }

    /// Append every entry of a consensus decision, in order. GeoBFT
    /// decisions carry `z` batches (one per cluster, §3: "in each round ρ,
    /// each replica creates z blocks in the order of execution of the z
    /// requests"); single-log protocols carry one.
    pub fn append_decision(&mut self, decision: &Decision) {
        for entry in &decision.entries {
            // The driver records the certificate when the protocol
            // produced one for this entry; GeoBFT entries embed it via the
            // decision's origin cluster (re-attached by the driver). Here
            // we only have the batch; certificates are attached by
            // [`Ledger::append`] callers that hold them.
            self.append(entry.batch.clone(), None, decision.state_digest);
        }
    }

    /// Verify the whole chain: heights, parent links, genesis identity,
    /// and every embedded certificate (when `cfg`/`crypto` are provided).
    pub fn verify(&self, cfg: Option<(&SystemConfig, &CryptoCtx)>) -> RdbResult<()> {
        if self.blocks.is_empty() || self.blocks[0] != Block::genesis() {
            return Err(RdbError::LedgerCorruption("bad genesis".into()));
        }
        let mut parent = self.blocks[0].hash();
        for (i, b) in self.blocks.iter().enumerate().skip(1) {
            if b.height != i as u64 {
                return Err(RdbError::LedgerCorruption(format!(
                    "height mismatch at {i}: {}",
                    b.height
                )));
            }
            if b.parent != parent {
                return Err(RdbError::LedgerCorruption(format!(
                    "broken parent link at height {i}"
                )));
            }
            if let Some(cert) = &b.certificate {
                if cert.digest != b.batch.digest() {
                    return Err(RdbError::LedgerCorruption(format!(
                        "certificate digest mismatch at height {i}"
                    )));
                }
                if let Some((sys, crypto)) = cfg {
                    if !cert.verify(sys, crypto) {
                        return Err(RdbError::LedgerCorruption(format!(
                            "invalid certificate at height {i}"
                        )));
                    }
                }
            }
            parent = b.hash();
        }
        Ok(())
    }

    /// Merkle root over all block hashes — a compact commitment to the
    /// entire ledger used by recovery audits.
    pub fn merkle_root(&self) -> Digest {
        let leaves: Vec<Digest> = self.blocks.iter().map(|b| b.hash()).collect();
        MerkleTree::build(&leaves).root()
    }

    /// Replace the block vector wholesale (used by
    /// [`Ledger::from_blocks_unchecked`]; invariants must be re-checked
    /// with [`Ledger::verify`]).
    pub(crate) fn replace_blocks(&mut self, blocks: Vec<Block>) {
        self.blocks = blocks;
    }
}

impl Default for Ledger {
    fn default() -> Self {
        Ledger::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::ids::ClusterId;

    fn noop(round: u64) -> SignedBatch {
        SignedBatch::noop(ClusterId(0), round)
    }

    #[test]
    fn append_links_blocks() {
        let mut l = Ledger::new();
        assert!(l.is_empty());
        l.append(noop(1), None, Digest::of(b"s1"));
        l.append(noop(2), None, Digest::of(b"s2"));
        assert_eq!(l.len(), 3);
        assert_eq!(l.head_height(), 2);
        assert!(l.verify(None).is_ok());
        assert_eq!(l.block(2).unwrap().parent, l.block(1).unwrap().hash());
    }

    #[test]
    fn tampering_with_a_middle_block_is_detected() {
        let mut l = Ledger::new();
        for i in 1..=5 {
            l.append(noop(i), None, Digest::of(&[i as u8]));
        }
        assert!(l.verify(None).is_ok());
        // Tamper: change block 3's batch.
        l.blocks[3].batch = noop(99);
        let err = l.verify(None).unwrap_err();
        assert!(matches!(err, RdbError::LedgerCorruption(_)));
        assert!(err.to_string().contains("height 4"), "{err}");
    }

    #[test]
    fn tampering_with_heights_is_detected() {
        let mut l = Ledger::new();
        l.append(noop(1), None, Digest::ZERO);
        l.blocks[1].height = 7;
        assert!(l.verify(None).is_err());
    }

    #[test]
    fn fake_genesis_is_detected() {
        let mut l = Ledger::new();
        l.append(noop(1), None, Digest::ZERO);
        l.blocks[0].state_digest = Digest::of(b"evil");
        assert!(l.verify(None).is_err());
    }

    #[test]
    fn merkle_root_changes_with_content() {
        let mut a = Ledger::new();
        let mut b = Ledger::new();
        a.append(noop(1), None, Digest::ZERO);
        b.append(noop(1), None, Digest::ZERO);
        assert_eq!(a.merkle_root(), b.merkle_root());
        b.append(noop(2), None, Digest::ZERO);
        assert_ne!(a.merkle_root(), b.merkle_root());
    }

    #[test]
    fn append_decision_adds_all_entries() {
        use rdb_consensus::types::{Decision, DecisionEntry};
        let mut l = Ledger::new();
        let d = Decision {
            seq: 1,
            entries: vec![
                DecisionEntry {
                    origin: Some(ClusterId(0)),
                    batch: noop(1),
                },
                DecisionEntry {
                    origin: Some(ClusterId(1)),
                    batch: SignedBatch::noop(ClusterId(1), 1),
                },
            ],
            state_digest: Digest::of(b"post"),
        };
        l.append_decision(&d);
        assert_eq!(l.len(), 3, "z = 2 blocks per GeoBFT round");
        assert!(l.verify(None).is_ok());
    }
}
