//! The append-only ledger.

use crate::block::Block;
use rdb_common::config::SystemConfig;
use rdb_common::error::{RdbError, RdbResult};
use rdb_consensus::certificate::CommitCertificate;
use rdb_consensus::crypto_ctx::CryptoCtx;
use rdb_consensus::types::{Decision, SignedBatch};
use rdb_crypto::digest::Digest;
use rdb_crypto::merkle::MerkleTree;

/// A replica's copy of the blockchain (ResilientDB is fully replicated:
/// "each replica independently maintains a full copy of the ledger", §3).
///
/// Once the checkpoint stage certifies a prefix as stable, the ledger can
/// be **compacted** ([`Ledger::compact`]): block bodies below the stable
/// height are dropped and the block *at* that height is retained in full
/// as the **recovery anchor** — the trusted root that [`Ledger::verify`]
/// and `recovery::audit_chain` chain the remaining suffix from, and that
/// a restarting replica pairs with its checkpointed state snapshot.
/// Compaction never changes the head: appends, head hashes and retained
/// block hashes are byte-identical to the uncompacted chain.
#[derive(Debug, Clone)]
pub struct Ledger {
    /// Retained blocks; `blocks[0]` is genesis (uncompacted) or the
    /// recovery anchor block at height `base`.
    blocks: Vec<Block>,
    /// Height of `blocks[0]` (0 until the first compaction).
    base: u64,
}

impl Ledger {
    /// A fresh ledger containing only the genesis block.
    pub fn new() -> Ledger {
        Ledger {
            blocks: vec![Block::genesis()],
            base: 0,
        }
    }

    /// Number of *retained* blocks including genesis/anchor.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when only genesis is present.
    pub fn is_empty(&self) -> bool {
        self.base == 0 && self.blocks.len() == 1
    }

    /// Height of the first retained block: 0 until compaction, afterwards
    /// the recovery anchor's height (the last compacted-to stable
    /// checkpoint).
    pub fn base_height(&self) -> u64 {
        self.base
    }

    /// The first retained block — genesis, or the recovery anchor after
    /// compaction.
    pub fn anchor(&self) -> &Block {
        self.blocks.first().expect("anchor always retained")
    }

    /// Drop block bodies below `stable` (a checkpoint-certified height),
    /// keeping the block at `stable` as the recovery anchor. Clamped to
    /// the head; compacting at or below the current base is a no-op.
    /// Returns the number of pruned blocks.
    pub fn compact(&mut self, stable: u64) -> usize {
        let stable = stable.min(self.head_height());
        if stable <= self.base {
            return 0;
        }
        let cut = (stable - self.base) as usize;
        self.blocks.drain(..cut);
        self.base = stable;
        cut
    }

    /// Height of the latest block.
    pub fn head_height(&self) -> u64 {
        self.blocks.last().expect("genesis always present").height
    }

    /// Hash of the latest block.
    pub fn head_hash(&self) -> Digest {
        self.blocks.last().expect("genesis always present").hash()
    }

    /// Get a block by height (`None` for heights compacted away).
    pub fn block(&self, height: u64) -> Option<&Block> {
        let idx = height.checked_sub(self.base)?;
        self.blocks.get(idx as usize)
    }

    /// All retained blocks (for audits), starting at
    /// [`Ledger::base_height`].
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Append a batch with its certificate as the next block.
    pub fn append(
        &mut self,
        batch: SignedBatch,
        certificate: Option<CommitCertificate>,
        state_digest: Digest,
    ) -> &Block {
        let parent = self.head_hash();
        let height = self.head_height() + 1;
        self.blocks.push(Block {
            height,
            parent,
            batch,
            certificate,
            state_digest,
        });
        self.blocks.last().expect("just pushed")
    }

    /// Append every entry of a consensus decision, in order. GeoBFT
    /// decisions carry `z` batches (one per cluster, §3: "in each round ρ,
    /// each replica creates z blocks in the order of execution of the z
    /// requests"); single-log protocols carry one.
    pub fn append_decision(&mut self, decision: &Decision) {
        for entry in &decision.entries {
            // The driver records the certificate when the protocol
            // produced one for this entry; GeoBFT entries embed it via the
            // decision's origin cluster (re-attached by the driver). Here
            // we only have the batch; certificates are attached by
            // [`Ledger::append`] callers that hold them.
            self.append(entry.batch.clone(), None, decision.state_digest);
        }
    }

    /// Verify the retained chain: heights, parent links, genesis identity
    /// (or, after compaction, recovery-anchor consistency), and every
    /// embedded certificate (when `cfg`/`crypto` are provided). The
    /// anchor block itself is the trust root: its own parent link points
    /// into the compacted prefix and cannot be re-checked — which is
    /// exactly why compaction only ever runs on checkpoint-certified
    /// heights.
    pub fn verify(&self, cfg: Option<(&SystemConfig, &CryptoCtx)>) -> RdbResult<()> {
        if self.blocks.is_empty() {
            return Err(RdbError::LedgerCorruption("no anchor block".into()));
        }
        if self.base == 0 {
            if self.blocks[0] != Block::genesis() {
                return Err(RdbError::LedgerCorruption("bad genesis".into()));
            }
        } else if self.blocks[0].height != self.base {
            return Err(RdbError::LedgerCorruption(format!(
                "anchor height {} does not match base {}",
                self.blocks[0].height, self.base
            )));
        }
        let mut parent = self.blocks[0].hash();
        for (i, b) in self.blocks.iter().enumerate().skip(1) {
            let height = self.base + i as u64;
            if b.height != height {
                return Err(RdbError::LedgerCorruption(format!(
                    "height mismatch at {height}: {}",
                    b.height
                )));
            }
            if b.parent != parent {
                return Err(RdbError::LedgerCorruption(format!(
                    "broken parent link at height {height}"
                )));
            }
            if let Some(cert) = &b.certificate {
                if cert.digest != b.batch.digest() {
                    return Err(RdbError::LedgerCorruption(format!(
                        "certificate digest mismatch at height {height}"
                    )));
                }
                if let Some((sys, crypto)) = cfg {
                    if !cert.verify(sys, crypto) {
                        return Err(RdbError::LedgerCorruption(format!(
                            "invalid certificate at height {height}"
                        )));
                    }
                }
            }
            parent = b.hash();
        }
        Ok(())
    }

    /// Merkle root over the *retained* block hashes — a compact
    /// commitment to the ledger (from the recovery anchor onward, once
    /// compacted) used by recovery audits.
    pub fn merkle_root(&self) -> Digest {
        let leaves: Vec<Digest> = self.blocks.iter().map(|b| b.hash()).collect();
        MerkleTree::build(&leaves).root()
    }

    /// Replace the block vector wholesale (used by
    /// [`Ledger::from_blocks_unchecked`]; invariants must be re-checked
    /// with [`Ledger::verify`]). The base is taken from the first block's
    /// height.
    pub(crate) fn replace_blocks(&mut self, blocks: Vec<Block>) {
        self.base = blocks.first().map_or(0, |b| b.height);
        self.blocks = blocks;
    }
}

impl Default for Ledger {
    fn default() -> Self {
        Ledger::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::ids::ClusterId;

    fn noop(round: u64) -> SignedBatch {
        SignedBatch::noop(ClusterId(0), round)
    }

    #[test]
    fn append_links_blocks() {
        let mut l = Ledger::new();
        assert!(l.is_empty());
        l.append(noop(1), None, Digest::of(b"s1"));
        l.append(noop(2), None, Digest::of(b"s2"));
        assert_eq!(l.len(), 3);
        assert_eq!(l.head_height(), 2);
        assert!(l.verify(None).is_ok());
        assert_eq!(l.block(2).unwrap().parent, l.block(1).unwrap().hash());
    }

    #[test]
    fn tampering_with_a_middle_block_is_detected() {
        let mut l = Ledger::new();
        for i in 1..=5 {
            l.append(noop(i), None, Digest::of(&[i as u8]));
        }
        assert!(l.verify(None).is_ok());
        // Tamper: change block 3's batch.
        l.blocks[3].batch = noop(99);
        let err = l.verify(None).unwrap_err();
        assert!(matches!(err, RdbError::LedgerCorruption(_)));
        assert!(err.to_string().contains("height 4"), "{err}");
    }

    #[test]
    fn tampering_with_heights_is_detected() {
        let mut l = Ledger::new();
        l.append(noop(1), None, Digest::ZERO);
        l.blocks[1].height = 7;
        assert!(l.verify(None).is_err());
    }

    #[test]
    fn fake_genesis_is_detected() {
        let mut l = Ledger::new();
        l.append(noop(1), None, Digest::ZERO);
        l.blocks[0].state_digest = Digest::of(b"evil");
        assert!(l.verify(None).is_err());
    }

    #[test]
    fn merkle_root_changes_with_content() {
        let mut a = Ledger::new();
        let mut b = Ledger::new();
        a.append(noop(1), None, Digest::ZERO);
        b.append(noop(1), None, Digest::ZERO);
        assert_eq!(a.merkle_root(), b.merkle_root());
        b.append(noop(2), None, Digest::ZERO);
        assert_ne!(a.merkle_root(), b.merkle_root());
    }

    #[test]
    fn compaction_keeps_anchor_and_suffix_and_head() {
        let mut l = Ledger::new();
        for i in 1..=10 {
            l.append(noop(i), None, Digest::of(&[i as u8]));
        }
        let head = l.head_hash();
        let b7 = l.block(7).unwrap().hash();
        let pruned = l.compact(6);
        assert_eq!(pruned, 6, "genesis plus heights 1..=5");
        assert_eq!(l.base_height(), 6);
        assert_eq!(l.anchor().height, 6);
        assert_eq!(l.len(), 5, "anchor + 4 suffix blocks retained");
        assert!(l.block(5).is_none(), "pruned heights are gone");
        assert_eq!(l.block(7).unwrap().hash(), b7, "suffix is untouched");
        assert_eq!(l.head_hash(), head, "compaction never changes the head");
        assert_eq!(l.head_height(), 10);
        l.verify(None)
            .expect("compacted chain verifies from the anchor");
        // Idempotent / monotone: compacting at or below the base is a no-op.
        assert_eq!(l.compact(6), 0);
        assert_eq!(l.compact(3), 0);
        // Appending after compaction keeps linking from the same head.
        l.append(noop(11), None, Digest::of(b"s11"));
        assert_eq!(l.block(11).unwrap().parent, head);
        l.verify(None).expect("still verifies");
    }

    #[test]
    fn compact_clamps_to_head() {
        let mut l = Ledger::new();
        for i in 1..=3 {
            l.append(noop(i), None, Digest::ZERO);
        }
        l.compact(99);
        assert_eq!(l.base_height(), 3);
        assert_eq!(l.len(), 1, "only the head remains as anchor");
        l.verify(None).expect("single-anchor chain verifies");
    }

    #[test]
    fn tampered_compacted_suffix_is_detected() {
        let mut l = Ledger::new();
        for i in 1..=8 {
            l.append(noop(i), None, Digest::of(&[i as u8]));
        }
        l.compact(4);
        l.blocks[2].batch = noop(99); // height 6
        let err = l.verify(None).unwrap_err();
        assert!(err.to_string().contains("height 7"), "{err}");
    }

    #[test]
    fn anchor_height_must_match_base() {
        let mut l = Ledger::new();
        for i in 1..=4 {
            l.append(noop(i), None, Digest::ZERO);
        }
        l.compact(2);
        l.blocks[0].height = 3; // forged anchor
        let err = l.verify(None).unwrap_err();
        assert!(err.to_string().contains("anchor"), "{err}");
    }

    #[test]
    fn append_decision_adds_all_entries() {
        use rdb_consensus::types::{Decision, DecisionEntry};
        let mut l = Ledger::new();
        let d = Decision {
            seq: 1,
            entries: vec![
                DecisionEntry {
                    origin: Some(ClusterId(0)),
                    batch: noop(1),
                },
                DecisionEntry {
                    origin: Some(ClusterId(1)),
                    batch: SignedBatch::noop(ClusterId(1), 1),
                },
            ],
            state_digest: Digest::of(b"post"),
        };
        l.append_decision(&d);
        assert_eq!(l.len(), 3, "z = 2 blocks per GeoBFT round");
        assert!(l.verify(None).is_ok());
    }
}
