//! Property tests for ledger compaction: for *any* decision sequence and
//! *any* checkpoint interval, compacting the stable prefix must be
//! invisible to everything downstream — audits give the same verdict,
//! the head hash never moves, retained blocks are byte-identical, and
//! checkpoint recovery reaches exactly the state a full-genesis replay
//! reaches.

use proptest::prelude::*;
use rdb_common::config::SystemConfig;
use rdb_common::ids::{ClientId, NodeId, ReplicaId};
use rdb_consensus::crypto_ctx::CryptoCtx;
use rdb_consensus::types::{ClientBatch, Decision, DecisionEntry, SignedBatch, Transaction};
use rdb_crypto::sign::KeyStore;
use rdb_ledger::{audit_chain, recover_from_checkpoint, Ledger};
use rdb_store::{KvStore, Operation, Value};

fn ctx() -> (SystemConfig, CryptoCtx) {
    let cfg = SystemConfig::geo(1, 4).unwrap();
    let ks = KeyStore::new(5);
    let signer = ks.register(NodeId::Replica(ReplicaId::new(0, 0)));
    (cfg, CryptoCtx::new(signer, ks.verifier(), true))
}

/// Deterministically derive a decision sequence from a seed: each
/// decision carries one batch of 1..=3 write/rmw operations, and blocks
/// record the real post-execution state digest — the same shape the
/// fabric's execution stage appends.
fn build_ledger(seed: u64, decisions: u64) -> (Ledger, Vec<KvStore>) {
    let client = ClientId::new(0, 0);
    let mut ledger = Ledger::new();
    let mut store = KvStore::new();
    let mut states = vec![store.clone()];
    let mut x = seed | 1;
    for seq in 1..=decisions {
        let mut txns = Vec::new();
        let n_ops = 1 + (x % 3);
        for i in 0..n_ops {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let op = if x.is_multiple_of(2) {
                Operation::Write {
                    key: x % 17,
                    value: Value::from_u64(x),
                }
            } else {
                Operation::Rmw {
                    key: x % 17,
                    delta: x % 100,
                }
            };
            txns.push(Transaction {
                client,
                seq: seq * 10 + i,
                op,
            });
        }
        let batch = ClientBatch {
            client,
            batch_seq: seq,
            txns,
        };
        let decision = Decision {
            seq,
            entries: vec![DecisionEntry {
                origin: None,
                batch: SignedBatch {
                    batch,
                    pubkey: Default::default(),
                    sig: Default::default(),
                },
            }],
            state_digest: rdb_crypto::digest::Digest::ZERO, // patched below
        };
        for entry in &decision.entries {
            for op in entry.batch.batch.operations() {
                store.execute(op);
            }
        }
        let decision = Decision {
            state_digest: store.state_digest(),
            ..decision
        };
        ledger.append_decision(&decision);
        states.push(store.clone());
    }
    (ledger, states)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// compact-then-audit equals audit of the uncompacted chain, at every
    /// interval boundary, and the head hash never changes.
    #[test]
    fn compaction_is_audit_invariant(
        seed in any::<u64>(),
        decisions in 1u64..40,
        interval in 1u64..10,
    ) {
        let (cfg, crypto) = ctx();
        let (full, _) = build_ledger(seed, decisions);
        prop_assert!(audit_chain(&full, None, &cfg, &crypto).is_ok());
        let head_before = full.head_hash();

        let mut compacted = full.clone();
        // Compact incrementally at every interval boundary, the way the
        // checkpoint stage does as stability advances.
        let mut boundary = interval;
        while boundary <= decisions {
            compacted.compact(boundary);
            prop_assert!(
                audit_chain(&compacted, None, &cfg, &crypto).is_ok(),
                "compaction at {boundary} broke the audit"
            );
            boundary += interval;
        }
        prop_assert_eq!(compacted.head_hash(), head_before, "head hash moved");
        prop_assert_eq!(compacted.head_height(), full.head_height());

        // Retained blocks are byte-identical to the uncompacted chain.
        for h in compacted.base_height()..=compacted.head_height() {
            prop_assert_eq!(
                compacted.block(h).unwrap().hash(),
                full.block(h).unwrap().hash(),
                "retained block {} diverged", h
            );
        }
        // Cross-audits link the two over the overlap in both directions.
        prop_assert!(audit_chain(&compacted, Some(&full), &cfg, &crypto).is_ok());
        prop_assert!(audit_chain(&full, Some(&compacted), &cfg, &crypto).is_ok());
    }

    /// Recovery from any checkpoint boundary reaches the head state a
    /// full replay reaches.
    #[test]
    fn checkpoint_recovery_matches_full_replay(
        seed in any::<u64>(),
        decisions in 2u64..30,
        interval in 1u64..8,
    ) {
        let (cfg, crypto) = ctx();
        let (full, states) = build_ledger(seed, decisions);
        let interval = interval.min(decisions);
        let anchor = (decisions / interval) * interval; // last boundary >= 1
        let mut peer = full.clone();
        peer.compact(anchor);
        let recovered = recover_from_checkpoint(
            &peer, None, &cfg, &crypto, anchor, states[anchor as usize].clone(),
        ).unwrap();
        prop_assert_eq!(
            recovered.state_digest(),
            states[decisions as usize].state_digest(),
            "suffix replay from the anchor must land on the head state"
        );
    }
}
