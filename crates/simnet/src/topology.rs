//! Network topology calibrated to Table 1 of the paper.
//!
//! "Real-world inter- and intra-cluster communication costs in terms of
//! the ping round-trip times (which determines latency) and bandwidth
//! (which determines throughput). These measurements are taken in Google
//! Cloud using clusters of n1 machines (replicas) that are deployed in six
//! different regions."

use rdb_common::region::Region;
use rdb_common::time::SimDuration;

/// Table 1 ping round-trip times in milliseconds, indexed `[from][to]` in
/// paper order (O, I, M, B, T, S). Intra-region RTT is "≤ 1 ms"; we use
/// 0.6 ms.
pub const TABLE1_RTT_MS: [[f64; 6]; 6] = [
    [0.6, 38.0, 65.0, 136.0, 118.0, 161.0],
    [38.0, 0.6, 33.0, 98.0, 153.0, 172.0],
    [65.0, 33.0, 0.6, 82.0, 186.0, 202.0],
    [136.0, 98.0, 82.0, 0.6, 252.0, 270.0],
    [118.0, 153.0, 186.0, 252.0, 0.6, 137.0],
    [161.0, 172.0, 202.0, 270.0, 137.0, 0.6],
];

/// Table 1 bandwidth in Mbit/s, same indexing.
pub const TABLE1_BW_MBIT: [[f64; 6]; 6] = [
    [7998.0, 669.0, 371.0, 194.0, 188.0, 136.0],
    [669.0, 10004.0, 752.0, 243.0, 144.0, 120.0],
    [371.0, 752.0, 7977.0, 283.0, 111.0, 102.0],
    [194.0, 243.0, 283.0, 9728.0, 79.0, 66.0],
    [188.0, 144.0, 111.0, 79.0, 7998.0, 160.0],
    [136.0, 120.0, 102.0, 66.0, 160.0, 7977.0],
];

/// A deployment topology: pairwise latency and bandwidth between regions.
#[derive(Debug, Clone)]
pub struct Topology {
    /// One-way latency between regions, nanoseconds, `[from][to]`.
    latency_ns: Vec<Vec<u64>>,
    /// Region-pair pipe bandwidth, bytes per second, `[from][to]`.
    bandwidth_bps: Vec<Vec<f64>>,
    /// Per-node aggregate WAN egress in bytes per second. Models the
    /// practical per-VM cross-region egress (cloud VMs cap well below NIC
    /// line rate across regions); this is the resource that throttles a
    /// single busy primary (§4.4).
    pub node_wan_egress_bps: f64,
    /// Per-node intra-region NIC bandwidth in bytes per second.
    pub node_nic_bps: f64,
    regions: Vec<Region>,
}

impl Topology {
    /// The paper's six-region Google Cloud topology (Table 1). Works for
    /// any number of regions: synthetic regions past the sixth reuse the
    /// Sydney row (most remote).
    pub fn paper(regions: &[Region]) -> Topology {
        let idx = |r: &Region| r.table1_index().unwrap_or(5);
        let k = regions.len();
        let mut latency_ns = vec![vec![0u64; k]; k];
        let mut bandwidth_bps = vec![vec![0f64; k]; k];
        for a in 0..k {
            for b in 0..k {
                let (ia, ib) = (idx(&regions[a]), idx(&regions[b]));
                let rtt_ms = if a == b { 0.6 } else { table1_rtt(ia, ib) };
                let bw_mbit = if a == b {
                    TABLE1_BW_MBIT[ia][ia]
                } else {
                    TABLE1_BW_MBIT[ia][ib]
                };
                latency_ns[a][b] = ((rtt_ms / 2.0) * 1e6) as u64;
                bandwidth_bps[a][b] = bw_mbit * 1e6 / 8.0;
            }
        }
        Topology {
            latency_ns,
            bandwidth_bps,
            // 480 Mbit/s aggregate WAN egress per VM: calibrated so that a
            // single PBFT primary saturates around the decision rates the
            // paper reports (§4.4); see DESIGN.md and EXPERIMENTS.md.
            node_wan_egress_bps: 480e6 / 8.0,
            // Intra-region NIC ~8 Gbit/s (Table 1 diagonal).
            node_nic_bps: 8e9 / 8.0,
            regions: regions.to_vec(),
        }
    }

    /// A uniform synthetic topology (tests): same latency/bandwidth
    /// between all distinct regions.
    pub fn uniform(
        regions: &[Region],
        one_way: SimDuration,
        wan_mbit: f64,
        local_mbit: f64,
    ) -> Topology {
        let k = regions.len();
        let mut latency_ns = vec![vec![0u64; k]; k];
        let mut bandwidth_bps = vec![vec![0f64; k]; k];
        for a in 0..k {
            for b in 0..k {
                if a == b {
                    latency_ns[a][b] = 300_000; // 0.3 ms one-way
                    bandwidth_bps[a][b] = local_mbit * 1e6 / 8.0;
                } else {
                    latency_ns[a][b] = one_way.as_nanos();
                    bandwidth_bps[a][b] = wan_mbit * 1e6 / 8.0;
                }
            }
        }
        Topology {
            latency_ns,
            bandwidth_bps,
            node_wan_egress_bps: 480e6 / 8.0,
            node_nic_bps: 8e9 / 8.0,
            regions: regions.to_vec(),
        }
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.regions.len()
    }

    /// Region list.
    pub fn region_list(&self) -> &[Region] {
        &self.regions
    }

    /// One-way latency between two region indices.
    pub fn latency(&self, from: usize, to: usize) -> SimDuration {
        SimDuration(self.latency_ns[from][to])
    }

    /// Region-pair pipe bandwidth in bytes/second.
    pub fn bandwidth_bps(&self, from: usize, to: usize) -> f64 {
        self.bandwidth_bps[from][to]
    }

    /// Serialization delay of `bytes` on the pair pipe.
    pub fn pipe_ser_delay(&self, from: usize, to: usize, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps[from][to])
    }
}

fn table1_rtt(a: usize, b: usize) -> f64 {
    TABLE1_RTT_MS[a][b]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper6() -> Topology {
        Topology::paper(&Region::PAPER_ORDER)
    }

    #[test]
    fn oregon_sydney_latency_matches_table1() {
        let t = paper6();
        // RTT 161 ms -> one-way 80.5 ms.
        assert_eq!(t.latency(0, 5).as_millis_f64(), 80.5);
        assert_eq!(t.latency(5, 0).as_millis_f64(), 80.5);
    }

    #[test]
    fn belgium_sydney_is_the_worst_link() {
        let t = paper6();
        let mut max = SimDuration::ZERO;
        for a in 0..6 {
            for b in 0..6 {
                if t.latency(a, b) > max {
                    max = t.latency(a, b);
                }
            }
        }
        assert_eq!(max, t.latency(3, 5)); // B <-> S, 270 ms RTT
    }

    #[test]
    fn bandwidth_is_symmetric_and_matches_table1() {
        let t = paper6();
        // O -> B: 194 Mbit/s.
        let bw = t.bandwidth_bps(0, 3);
        assert!((bw - 194e6 / 8.0).abs() < 1.0);
        assert_eq!(t.bandwidth_bps(0, 3), t.bandwidth_bps(3, 0));
    }

    #[test]
    fn serialization_delay_scales_with_size() {
        let t = paper6();
        let small = t.pipe_ser_delay(0, 3, 250);
        let large = t.pipe_ser_delay(0, 3, 5400);
        assert!(large > small * 20);
        // 5.4 kB over 194 Mbit/s ≈ 0.22 ms.
        assert!((large.as_millis_f64() - 0.2227).abs() < 0.01);
    }

    #[test]
    fn latency_ratios_match_paper_claim() {
        // §1.1: "global message latencies are at least 33-270 times higher
        // than local latencies".
        let t = paper6();
        let local = t.latency(0, 0).as_millis_f64();
        for a in 0..6 {
            for b in 0..6 {
                if a != b {
                    let ratio = t.latency(a, b).as_millis_f64() * 2.0 / (local * 2.0);
                    assert!(ratio >= 33.0, "{a}->{b} ratio {ratio}");
                    assert!(ratio <= 500.0);
                }
            }
        }
    }

    #[test]
    fn extra_regions_fall_back_to_sydney_profile() {
        let regions = [
            Region::Oregon,
            Region::Iowa,
            Region::Montreal,
            Region::Belgium,
            Region::Taiwan,
            Region::Sydney,
            Region::Custom(6),
        ];
        let t = Topology::paper(&regions);
        assert_eq!(t.regions(), 7);
        assert_eq!(t.latency(0, 6), t.latency(0, 5));
    }

    #[test]
    fn uniform_topology_is_uniform() {
        let regions = [Region::Custom(0), Region::Custom(1), Region::Custom(2)];
        let t = Topology::uniform(&regions, SimDuration::from_millis(50), 200.0, 8000.0);
        assert_eq!(t.latency(0, 1), t.latency(1, 2));
        assert_eq!(t.latency(0, 0).as_millis_f64(), 0.3);
    }
}
