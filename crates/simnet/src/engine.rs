//! The discrete-event engine: virtual clock, per-node staged compute
//! (modeled verifier pool → worker → dedicated execution core, paper
//! Figure 9), bandwidth pipes, timers with cancellation, fault filtering
//! and statistics.
//!
//! Determinism note: every engine-owned map whose iteration order can
//! influence event ordering (`replicas`, `clients`, `nodes`, `payloads`,
//! `decided_counts`, per-node `timer_gens`) is a `BTreeMap` — a
//! `HashMap`'s per-process random iteration order would leak into
//! `start()` and statistics and break run-to-run reproducibility.

use crate::compute::ComputeModel;
use crate::faults::FaultState;
use crate::stats::NetStats;
use crate::topology::Topology;
use rdb_common::ids::{ClientId, NodeId, ReplicaId};
use rdb_common::time::{SimDuration, SimTime};
use rdb_consensus::api::{Action, ClientProtocol, Outbox, ReplicaProtocol, TimerKind};
use rdb_consensus::messages::Message;
use rdb_consensus::types::Decision;
use rdb_ledger::Ledger;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// An event in the queue.
// `Deliver` carries the full message and dominates both the size and the
// instance count; boxing it would add an allocation per simulated message.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Ev {
    /// Deliver a message.
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: Message,
    },
    /// A timer fires (if its generation is still current).
    Timer {
        node: NodeId,
        kind: TimerKind,
        generation: u64,
    },
    /// Ask a closed-loop client for its next request.
    ClientKick { client: ClientId },
    /// Reset statistics (end of warm-up).
    ResetStats,
}

/// Per-node runtime state.
#[derive(Debug, Default)]
struct NodeState {
    /// The ordering worker is busy until this instant.
    busy_until: SimTime,
    /// Each modeled verifier thread is busy until its instant (sized from
    /// the compute model's [`crate::compute::PipelineModel`] on first use).
    verifier_free: Vec<SimTime>,
    /// The bounded virtual input queue: service-start times of
    /// *replica-held* messages whose verification has not yet begun.
    /// Entries ≤ now are pruned on every delivery, so `len()` is the
    /// live modeled depth — the virtual twin of the fabric's
    /// `queue_depth(Stage::Input)`. Over-bound admissions are modeled as
    /// held at the sender (the fabric's parked `send`) and never enter,
    /// so the depth respects the configured bound.
    input_queue: BinaryHeap<Reverse<SimTime>>,
    /// Per-lane horizons of the dedicated execution stage: lane `l` is
    /// busy until `exec_lane_free[l]` (sized lazily from the compute
    /// model's [`crate::compute::PipelineModel::exec_lanes`]; one entry —
    /// the classic single execution thread — unless lanes are modeled).
    exec_lane_free: Vec<SimTime>,
    /// Commit-order retirement horizon of the execution stage: the
    /// instant the most recently decided materialization retires (all
    /// its lanes done, and no earlier decision still in flight).
    exec_retired: SimTime,
    /// Retirement instants of in-flight materializations, maintained
    /// only when [`crate::compute::PipelineModel::exec_queue_capacity`]
    /// gates the stage; `len()` is the modeled exec-queue depth.
    exec_inflight: BinaryHeap<Reverse<SimTime>>,
    /// The modeled checkpoint stage (off the execute stage, like the
    /// fabric's checkpoint thread) is busy until this instant.
    ckpt_free: SimTime,
    /// Intra-region NIC egress is busy until this instant.
    nic_free: SimTime,
    /// WAN egress aggregate is busy until this instant.
    wan_free: SimTime,
    /// Timer generations for cancellation.
    timer_gens: BTreeMap<TimerKind, u64>,
}

impl NodeState {
    /// The instant the whole execution stage drains: the latest lane
    /// horizon (`SimTime::ZERO` when execution never ran dedicated).
    #[cfg(test)]
    fn exec_free(&self) -> SimTime {
        self.exec_lane_free
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

type HeapEntry = Reverse<(SimTime, u64)>;

/// The simulator.
pub struct Engine {
    topo: Topology,
    replica_model: ComputeModel,
    client_model: ComputeModel,
    clock: SimTime,
    heap: BinaryHeap<HeapEntry>,
    payloads: BTreeMap<u64, Ev>,
    seq: u64,
    replicas: BTreeMap<ReplicaId, Box<dyn ReplicaProtocol>>,
    clients: BTreeMap<ClientId, Box<dyn ClientProtocol>>,
    nodes: BTreeMap<NodeId, NodeState>,
    faults: FaultState,
    /// Statistics for the current measurement window.
    pub stats: NetStats,
    submit_times: BTreeMap<ClientId, SimTime>,
    /// Decisions executed, per replica (whole run, not window).
    pub decided_counts: BTreeMap<ReplicaId, u64>,
    /// Optional per-replica ledgers (integration tests / examples).
    ledgers: Option<BTreeMap<ReplicaId, Ledger>>,
    /// Maximum events processed before declaring a runaway (safety).
    pub max_events: u64,
    events_processed: u64,
}

impl Engine {
    /// Create an engine over `topo` with the given compute models.
    pub fn new(
        topo: Topology,
        replica_model: ComputeModel,
        client_model: ComputeModel,
        faults: FaultState,
    ) -> Engine {
        Engine {
            topo,
            replica_model,
            client_model,
            clock: SimTime::ZERO,
            heap: BinaryHeap::new(),
            payloads: BTreeMap::new(),
            seq: 0,
            replicas: BTreeMap::new(),
            clients: BTreeMap::new(),
            nodes: BTreeMap::new(),
            faults,
            stats: NetStats::default(),
            submit_times: BTreeMap::new(),
            decided_counts: BTreeMap::new(),
            ledgers: None,
            max_events: 2_000_000_000,
            events_processed: 0,
        }
    }

    /// Track a full ledger per replica (costs memory; integration tests).
    pub fn attach_ledgers(&mut self) {
        self.ledgers = Some(BTreeMap::new());
    }

    /// The per-replica ledgers, if attached.
    pub fn ledgers(&self) -> Option<&BTreeMap<ReplicaId, Ledger>> {
        self.ledgers.as_ref()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Register a replica.
    pub fn add_replica(&mut self, r: Box<dyn ReplicaProtocol>) {
        let id = r.id();
        self.nodes.entry(id.into()).or_default();
        self.replicas.insert(id, r);
    }

    /// Register a client.
    pub fn add_client(&mut self, c: Box<dyn ClientProtocol>) {
        let id = c.id();
        self.nodes.entry(id.into()).or_default();
        self.clients.insert(id, c);
    }

    fn push(&mut self, at: SimTime, ev: Ev) {
        let id = self.seq;
        self.seq += 1;
        self.payloads.insert(id, ev);
        self.heap.push(Reverse((at, id)));
    }

    /// Schedule `on_start` for all replicas and the first request of all
    /// clients at time zero.
    pub fn start(&mut self) {
        let replica_ids: Vec<ReplicaId> = self.replicas.keys().copied().collect();
        for rid in replica_ids {
            let mut out = Outbox::new();
            self.replicas
                .get_mut(&rid)
                .expect("present")
                .on_start(SimTime::ZERO, &mut out);
            self.process_actions(rid.into(), SimTime::ZERO, out.take());
        }
        let client_ids: Vec<ClientId> = self.clients.keys().copied().collect();
        for cid in client_ids {
            self.push(SimTime::ZERO, Ev::ClientKick { client: cid });
        }
    }

    /// Schedule a statistics reset (end of warm-up) at `at`.
    pub fn schedule_stats_reset(&mut self, at: SimTime) {
        self.push(at, Ev::ResetStats);
    }

    /// Run the event loop until `until` (events after it stay queued).
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(Reverse((t, id))) = self.heap.peek().copied() {
            if t > until {
                break;
            }
            self.heap.pop();
            let ev = self.payloads.remove(&id).expect("payload present");
            self.clock = t;
            self.events_processed += 1;
            assert!(
                self.events_processed < self.max_events,
                "event budget exhausted: runaway simulation"
            );
            self.dispatch(t, ev);
        }
        self.clock = self.clock.max(until);
    }

    fn model_for(&self, node: NodeId) -> &ComputeModel {
        match node {
            NodeId::Replica(_) => &self.replica_model,
            NodeId::Client(_) => &self.client_model,
        }
    }

    fn dispatch(&mut self, t: SimTime, ev: Ev) {
        match ev {
            Ev::Deliver { to, from, msg } => {
                if let NodeId::Replica(r) = to {
                    if self.faults.is_crashed(r, t) {
                        return;
                    }
                }
                let model = self.model_for(to).clone();
                let verifiers = model.pipeline.verifier_threads;
                // Bounded virtual input queue (replica inboxes only —
                // the twin of the fabric's bounded input stage): depth is
                // the number of admitted messages whose service has not
                // started by `t`.
                let cap = model.pipeline.input_capacity;
                let bounded_inbox = cap > 0 && matches!(to, NodeId::Replica(_));
                let at_bound = {
                    let state = self.nodes.entry(to).or_default();
                    if bounded_inbox {
                        while state.input_queue.peek().is_some_and(|&Reverse(s)| s <= t) {
                            state.input_queue.pop();
                        }
                        state.input_queue.len() >= cap
                    } else {
                        false
                    }
                };
                if at_bound
                    && model.pipeline.input_overload == crate::compute::Overload::Shed
                    && msg.droppable()
                {
                    // Shed-on-full, exactly as the fabric's input stage
                    // does for droppable (retransmittable) traffic.
                    self.stats.shed_msgs += 1;
                    return;
                }
                let state = self.nodes.entry(to).or_default();
                // Verify stage: the declared signature/MAC work runs on the
                // earliest-free modeled verifier thread, in parallel with
                // the worker. With an empty pool (single-threaded layout)
                // the worker pays for verification itself.
                let (service_start, verified_at, worker_cost) = if verifiers == 0 {
                    (
                        t.max(state.busy_until),
                        t,
                        model.wall(model.receive_cost(&msg)),
                    )
                } else {
                    if state.verifier_free.len() < verifiers {
                        state.verifier_free.resize(verifiers, SimTime::ZERO);
                    }
                    let slot = state
                        .verifier_free
                        .iter_mut()
                        .min()
                        .expect("pool is non-empty");
                    let vstart = t.max(*slot);
                    let vdone = vstart + SimDuration(model.verify_cost(&msg));
                    *slot = vdone;
                    (vstart, vdone, model.wall(model.dispatch_cost(&msg)))
                };
                // Order stage: the worker picks the message up once both
                // it and the verifier are free.
                let start = verified_at.max(state.busy_until);
                let done = start + SimDuration(worker_cost);
                state.busy_until = done;
                if bounded_inbox {
                    if at_bound {
                        // Modeled blocking: the sender holds the message
                        // at the *source* until the pool frees (exactly
                        // the fabric's parked `send`), so it never
                        // occupies the replica-held queue — the queue
                        // stays at its bound and later droppable traffic
                        // competes for freed slots instead of starving
                        // behind blocked requests. The pool is FIFO and
                        // work-conserving, so the wait changes no
                        // schedule — it is made observable.
                        self.stats.blocked_wait += service_start - t;
                    } else {
                        state.input_queue.push(Reverse(service_start));
                        let depth = state.input_queue.len() as u64;
                        if depth > self.stats.max_input_depth {
                            self.stats.max_input_depth = depth;
                        }
                    }
                }
                let mut out = Outbox::new();
                match to {
                    NodeId::Replica(rid) => {
                        if let Some(r) = self.replicas.get_mut(&rid) {
                            r.on_message(done, from, msg, &mut out);
                        }
                    }
                    NodeId::Client(cid) => {
                        if let Some(c) = self.clients.get_mut(&cid) {
                            c.on_message(done, from, msg, &mut out);
                        }
                    }
                }
                self.process_actions(to, done, out.take());
            }
            Ev::Timer {
                node,
                kind,
                generation,
            } => {
                if let NodeId::Replica(r) = node {
                    if self.faults.is_crashed(r, t) {
                        return;
                    }
                }
                let current = self
                    .nodes
                    .get(&node)
                    .and_then(|s| s.timer_gens.get(&kind))
                    .copied();
                if current != Some(generation) {
                    return; // cancelled or superseded
                }
                let state = self.nodes.entry(node).or_default();
                let start = t.max(state.busy_until);
                let done = start + SimDuration(2_000); // timer dispatch cost
                state.busy_until = done;
                let mut out = Outbox::new();
                match node {
                    NodeId::Replica(rid) => {
                        if let Some(r) = self.replicas.get_mut(&rid) {
                            r.on_timer(done, kind, &mut out);
                        }
                    }
                    NodeId::Client(cid) => {
                        if let Some(c) = self.clients.get_mut(&cid) {
                            c.on_timer(done, kind, &mut out);
                        }
                    }
                }
                self.process_actions(node, done, out.take());
            }
            Ev::ClientKick { client } => {
                let node: NodeId = client.into();
                let state = self.nodes.entry(node).or_default();
                let start = t.max(state.busy_until);
                let done = start + SimDuration(2_000);
                state.busy_until = done;
                let mut out = Outbox::new();
                let submitted = if let Some(c) = self.clients.get_mut(&client) {
                    c.next_request(done, &mut out)
                } else {
                    false
                };
                if submitted {
                    self.submit_times.insert(client, done);
                }
                self.process_actions(node, done, out.take());
            }
            Ev::ResetStats => {
                self.stats = NetStats::default();
            }
        }
    }

    fn process_actions(&mut self, node: NodeId, done: SimTime, actions: Vec<Action>) {
        // Charge signing once per logical signed message kind in this
        // batch of actions.
        let model = self.model_for(node).clone();
        let mut signed_labels: Vec<&'static str> = Vec::new();
        let mut cursor = done;
        for a in &actions {
            if let Action::Send { msg, .. } = a {
                if ComputeModel::signs_on_send(msg) && !signed_labels.contains(&msg.label()) {
                    signed_labels.push(msg.label());
                    cursor += SimDuration(model.wall(model.sign_ns));
                }
            }
        }

        for a in actions {
            match a {
                Action::Send { to, msg } => {
                    cursor += SimDuration(model.wall(model.send_cost(&msg)));
                    self.route(node, to, msg, cursor);
                }
                Action::SetTimer { kind, after } => {
                    let state = self.nodes.entry(node).or_default();
                    let gen = state.timer_gens.entry(kind).or_insert(0);
                    *gen += 1;
                    let generation = *gen;
                    self.push(
                        cursor + after,
                        Ev::Timer {
                            node,
                            kind,
                            generation,
                        },
                    );
                }
                Action::CancelTimer { kind } => {
                    let state = self.nodes.entry(node).or_default();
                    *state.timer_gens.entry(kind).or_insert(0) += 1;
                }
                Action::Decided(decision) => {
                    // The worker always pays transaction execution: the
                    // state machines execute inline (inside `on_message`)
                    // to produce reply digests, in the real fabric too.
                    // The dedicated core additionally models the execution
                    // stage's *materialization* (table apply + ledger
                    // append), which is what the staged fabric moved off
                    // the worker's critical path.
                    let exec =
                        model.exec_cost_decision(decision.txn_count(), decision.program_instrs());
                    cursor += SimDuration(model.wall(exec));
                    if model.pipeline.dedicated_execution {
                        cursor = self.charge_execution(node, &model, &decision, cursor);
                    }
                    if let NodeId::Replica(rid) = node {
                        let decided = {
                            let e = self.decided_counts.entry(rid).or_insert(0);
                            *e += 1;
                            *e
                        };
                        if rid == ReplicaId::new(0, 0) {
                            self.stats.observer_decisions += 1;
                            self.stats.observer_txns += decision.txn_count() as u64;
                        }
                        self.append_ledger(rid, &decision);
                        // Checkpoint stage: at every interval boundary,
                        // charge the snapshot/certification cost on the
                        // dedicated checkpoint horizon (off the worker's
                        // critical path, like the fabric's checkpoint
                        // thread) and compact any tracked ledger to the
                        // boundary — the virtual twin of quorum
                        // stability, which in the fabric merely lags by
                        // a delivery round trip.
                        let k = model.pipeline.checkpoint_interval;
                        if k > 0 && decided.is_multiple_of(k) {
                            let cost = model.checkpoint_ns;
                            let state = self.nodes.entry(node).or_default();
                            state.ckpt_free = state.ckpt_free.max(cursor) + SimDuration(cost);
                            self.stats.checkpoints += 1;
                            if let Some(ledgers) = self.ledgers.as_mut() {
                                if let Some(l) = ledgers.get_mut(&rid) {
                                    l.compact(l.head_height());
                                }
                            }
                        }
                    }
                }
                Action::RequestComplete { seq: _, txns } => {
                    if let NodeId::Client(cid) = node {
                        if let Some(submitted) = self.submit_times.remove(&cid) {
                            self.stats.on_complete(txns, submitted, cursor);
                        }
                        self.push(cursor, Ev::ClientKick { client: cid });
                    }
                }
            }
        }
        // The node was busy for the whole action-processing stretch.
        let state = self.nodes.entry(node).or_default();
        state.busy_until = state.busy_until.max(cursor);
    }

    /// Charge `decision`'s materialization (table apply + ledger append)
    /// on the node's modeled execution stage and return the worker's
    /// cursor, advanced past any wait the exec-queue gate imposed.
    ///
    /// With one lane this is exactly the pre-lane model: the whole cost
    /// lands on a single horizon and (with no gate configured) the
    /// cursor comes back untouched, so every existing scenario keeps its
    /// schedule byte for byte. With `exec_lanes > 1` the cost splits
    /// across the lanes the decision's keys home on (`key % lanes`, the
    /// fabric's shard map), so key-disjoint decisions overlap on
    /// independent horizons while same-key traffic serializes on one.
    /// The decision retires in commit order — at the latest of its own
    /// lane finishes and every earlier retirement — and when
    /// `exec_queue_capacity` is nonzero the worker blocks while that
    /// many materializations are still unretired: the virtual twin of
    /// the fabric's bounded Block-policy exec queue, whose capacity is
    /// also the lane pool's reorder window.
    fn charge_execution(
        &mut self,
        node: NodeId,
        model: &ComputeModel,
        decision: &Decision,
        mut cursor: SimTime,
    ) -> SimTime {
        let lanes = model.pipeline.exec_lanes.clamp(1, rdb_store::MAX_LANES);
        let window = model.pipeline.exec_queue_capacity;
        let state = self.nodes.entry(node).or_default();
        if state.exec_lane_free.len() < lanes {
            state.exec_lane_free.resize(lanes, SimTime::ZERO);
        }
        if window > 0 {
            // Retire everything already done, then block the worker until
            // the in-flight backlog fits the bound.
            while let Some(&Reverse(t)) = state.exec_inflight.peek() {
                if t <= cursor {
                    state.exec_inflight.pop();
                } else {
                    break;
                }
            }
            let mut waited = SimDuration::ZERO;
            while state.exec_inflight.len() >= window {
                let Reverse(t) = state.exec_inflight.pop().expect("len checked");
                if t > cursor {
                    waited += t - cursor;
                    cursor = t;
                }
            }
            if waited > SimDuration::ZERO {
                self.stats.exec_gate_waits += 1;
                self.stats.exec_gate_wait += waited;
            }
        }
        let retire = if lanes <= 1 {
            let exec = model.exec_cost_decision(decision.txn_count(), decision.program_instrs());
            state.exec_lane_free[0] = state.exec_lane_free[0].max(cursor) + SimDuration(exec);
            state.exec_lane_free[0]
        } else {
            // Per-lane work: each transaction is charged to its home lane;
            // transaction-program instructions are charged to the program's
            // home lane (the scheduler serializes cross-lane programs, so
            // the home lane carries the whole program's cost).
            let mut lane_txns = vec![0u64; lanes];
            let mut lane_instrs = vec![0u64; lanes];
            for e in &decision.entries {
                for op in e.batch.batch.operations() {
                    let home = rdb_store::lanes::home_lane(op, lanes);
                    lane_txns[home] += 1;
                    if let rdb_store::Operation::Txn(prog) = op {
                        lane_instrs[home] += prog.cost() as u64;
                    }
                }
            }
            let mut finish = cursor;
            for (lane, &txns) in lane_txns.iter().enumerate() {
                if txns == 0 {
                    continue;
                }
                let f = state.exec_lane_free[lane].max(cursor)
                    + SimDuration(
                        model.exec_ns_per_txn * txns + model.exec_ns_per_instr * lane_instrs[lane],
                    );
                state.exec_lane_free[lane] = f;
                finish = finish.max(f);
            }
            finish
        };
        state.exec_retired = state.exec_retired.max(retire);
        if window > 0 {
            let retired = state.exec_retired;
            state.exec_inflight.push(Reverse(retired));
        }
        cursor
    }

    fn append_ledger(&mut self, rid: ReplicaId, decision: &Decision) {
        if let Some(ledgers) = self.ledgers.as_mut() {
            ledgers
                .entry(rid)
                .or_insert_with(Ledger::new)
                .append_decision(decision);
        }
    }

    fn region_of(&self, node: NodeId) -> usize {
        // Clusters are laid out in topology order: cluster index == region
        // index (scenario construction guarantees this).
        (node.cluster().as_usize()).min(self.topo.regions() - 1)
    }

    fn route(&mut self, from: NodeId, to: NodeId, msg: Message, t: SimTime) {
        if let NodeId::Replica(r) = from {
            if self.faults.is_crashed(r, t) {
                return;
            }
        }
        if let (NodeId::Replica(a), NodeId::Replica(b)) = (from, to) {
            if self.faults.is_dropped(a, b, t) {
                return;
            }
        }
        let src = self.region_of(from);
        let dst = self.region_of(to);
        let local = src == dst;
        self.stats.on_message(msg.label(), msg.wire_size(), local);

        if from == to {
            // Loopback: no network resources.
            self.push(t + SimDuration(1_000), Ev::Deliver { to, from, msg });
            return;
        }

        let size = msg.wire_size();
        let state = self.nodes.entry(from).or_default();
        let arrive = if local {
            // Intra-region: per-node NIC serialization + sub-ms latency.
            let ser = SimDuration::from_secs_f64(size as f64 / self.topo.node_nic_bps);
            let depart = t.max(state.nic_free);
            state.nic_free = depart + ser;
            depart + ser + self.topo.latency(src, dst)
        } else {
            // WAN: the sender's aggregate cross-region egress is the
            // shared resource (this is what centralizes a single busy
            // primary, §4.4); the Table 1 bandwidth then acts as the
            // per-flow rate (Table 1 measures machine pairs), and
            // propagation adds half the measured RTT.
            let ser_node = SimDuration::from_secs_f64(size as f64 / self.topo.node_wan_egress_bps);
            let depart = t.max(state.wan_free);
            state.wan_free = depart + ser_node;
            let ser_flow = self.topo.pipe_ser_delay(src, dst, size);
            depart + ser_node + ser_flow + self.topo.latency(src, dst)
        };
        self.push(arrive, Ev::Deliver { to, from, msg });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::region::Region;

    /// A replica that answers any Noop with a Noop to a fixed peer and
    /// counts messages.
    struct Echo {
        id: ReplicaId,
        peer: ReplicaId,
        received: std::sync::Arc<std::sync::atomic::AtomicU64>,
        reply: bool,
    }

    impl ReplicaProtocol for Echo {
        fn id(&self) -> ReplicaId {
            self.id
        }
        fn on_start(&mut self, _now: SimTime, _out: &mut Outbox) {}
        fn on_message(&mut self, _now: SimTime, _from: NodeId, _msg: Message, out: &mut Outbox) {
            self.received
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if self.reply {
                out.send(self.peer, Message::Noop);
            }
        }
        fn on_timer(&mut self, _now: SimTime, _timer: TimerKind, _out: &mut Outbox) {}
    }

    fn two_node_engine(reply: bool) -> (Engine, std::sync::Arc<std::sync::atomic::AtomicU64>) {
        let topo = Topology::paper(&[Region::Oregon, Region::Sydney]);
        let mut e = Engine::new(
            topo,
            ComputeModel::default(),
            ComputeModel::default(),
            FaultState::default(),
        );
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let a = ReplicaId::new(0, 0);
        let b = ReplicaId::new(1, 0);
        e.add_replica(Box::new(Echo {
            id: a,
            peer: b,
            received: counter.clone(),
            reply: false,
        }));
        e.add_replica(Box::new(Echo {
            id: b,
            peer: a,
            received: counter.clone(),
            reply,
        }));
        (e, counter)
    }

    #[test]
    fn wan_delivery_takes_half_rtt_plus_costs() {
        let (mut e, counter) = two_node_engine(false);
        // Inject a message from Oregon replica to Sydney replica at t=0.
        e.route(
            ReplicaId::new(0, 0).into(),
            ReplicaId::new(1, 0).into(),
            Message::Noop,
            SimTime::ZERO,
        );
        e.run_until(SimTime::ZERO + SimDuration::from_millis(100));
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 1);
        // Arrival no earlier than the 80.5 ms one-way latency.
        assert!(e.now() >= SimTime::ZERO + SimDuration::from_millis(80));
    }

    #[test]
    fn wan_egress_serializes_back_to_back_messages() {
        let (mut e, _counter) = two_node_engine(false);
        let from: NodeId = ReplicaId::new(0, 0).into();
        let to: NodeId = ReplicaId::new(1, 0).into();
        // Two large messages at the same instant are serialized by the
        // sender's WAN egress aggregate.
        let big = Message::Request(rdb_consensus::types::SignedBatch::noop(
            rdb_common::ids::ClusterId(0),
            1,
        ));
        e.route(from, to, big.clone(), SimTime::ZERO);
        let first_free = e.nodes[&from].wan_free;
        e.route(from, to, big, SimTime::ZERO);
        let second_free = e.nodes[&from].wan_free;
        assert!(second_free > first_free);
        assert!(first_free > SimTime::ZERO);
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct TimerProto {
            id: ReplicaId,
            fired: std::sync::Arc<std::sync::atomic::AtomicU64>,
        }
        impl ReplicaProtocol for TimerProto {
            fn id(&self) -> ReplicaId {
                self.id
            }
            fn on_start(&mut self, _now: SimTime, out: &mut Outbox) {
                out.set_timer(TimerKind::Progress, SimDuration::from_millis(10));
                // Cancelled before it can fire:
                out.set_timer(
                    TimerKind::ClientRetry { seq: 1 },
                    SimDuration::from_millis(5),
                );
                out.cancel_timer(TimerKind::ClientRetry { seq: 1 });
            }
            fn on_message(&mut self, _n: SimTime, _f: NodeId, _m: Message, _o: &mut Outbox) {}
            fn on_timer(&mut self, _now: SimTime, kind: TimerKind, _out: &mut Outbox) {
                assert_eq!(kind, TimerKind::Progress, "cancelled timer fired");
                self.fired
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let topo = Topology::paper(&[Region::Oregon]);
        let mut e = Engine::new(
            topo,
            ComputeModel::default(),
            ComputeModel::default(),
            FaultState::default(),
        );
        let fired = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        e.add_replica(Box::new(TimerProto {
            id: ReplicaId::new(0, 0),
            fired: fired.clone(),
        }));
        e.start();
        e.run_until(SimTime::ZERO + SimDuration::from_millis(50));
        assert_eq!(fired.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn rearming_supersedes_previous_timer() {
        struct Rearm {
            id: ReplicaId,
            fired: std::sync::Arc<std::sync::atomic::AtomicU64>,
        }
        impl ReplicaProtocol for Rearm {
            fn id(&self) -> ReplicaId {
                self.id
            }
            fn on_start(&mut self, _now: SimTime, out: &mut Outbox) {
                out.set_timer(TimerKind::Progress, SimDuration::from_millis(10));
                out.set_timer(TimerKind::Progress, SimDuration::from_millis(30));
            }
            fn on_message(&mut self, _n: SimTime, _f: NodeId, _m: Message, _o: &mut Outbox) {}
            fn on_timer(&mut self, now: SimTime, _k: TimerKind, _o: &mut Outbox) {
                // Must fire only once, at the re-armed deadline.
                assert!(now >= SimTime::ZERO + SimDuration::from_millis(30));
                self.fired
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let topo = Topology::paper(&[Region::Oregon]);
        let mut e = Engine::new(
            topo,
            ComputeModel::default(),
            ComputeModel::default(),
            FaultState::default(),
        );
        let fired = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        e.add_replica(Box::new(Rearm {
            id: ReplicaId::new(0, 0),
            fired: fired.clone(),
        }));
        e.start();
        e.run_until(SimTime::ZERO + SimDuration::from_millis(100));
        assert_eq!(fired.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn crashed_replicas_neither_send_nor_receive() {
        let topo = Topology::paper(&[Region::Oregon, Region::Sydney]);
        let a = ReplicaId::new(0, 0);
        let b = ReplicaId::new(1, 0);
        let faults = FaultState::new(&[crate::faults::FaultSpec::crash_at_secs(b, 0.0)]);
        let mut e = Engine::new(
            topo,
            ComputeModel::default(),
            ComputeModel::default(),
            faults,
        );
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        e.add_replica(Box::new(Echo {
            id: a,
            peer: b,
            received: counter.clone(),
            reply: false,
        }));
        e.add_replica(Box::new(Echo {
            id: b,
            peer: a,
            received: counter.clone(),
            reply: true,
        }));
        e.route(a.into(), b.into(), Message::Noop, SimTime::ZERO);
        e.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(
            counter.load(std::sync::atomic::Ordering::Relaxed),
            0,
            "crashed replica processed a message"
        );
    }

    #[test]
    fn stats_reset_clears_window() {
        let (mut e, _c) = two_node_engine(false);
        e.route(
            ReplicaId::new(0, 0).into(),
            ReplicaId::new(1, 0).into(),
            Message::Noop,
            SimTime::ZERO,
        );
        assert_eq!(e.stats.msgs_global, 1);
        e.schedule_stats_reset(SimTime::ZERO + SimDuration::from_millis(1));
        e.run_until(SimTime::ZERO + SimDuration::from_millis(2));
        assert_eq!(e.stats.msgs_global, 0);
    }

    #[test]
    fn verifier_pool_overlaps_signature_checks() {
        use crate::compute::PipelineModel;
        use rdb_crypto::digest::Digest;
        use rdb_crypto::sign::Signature;
        let commit = || Message::Commit {
            scope: rdb_consensus::messages::Scope::Global,
            view: 0,
            seq: 1,
            digest: Digest::ZERO,
            sig: Signature::default(),
        };
        let worker_busy_after = |pipeline: PipelineModel| {
            let topo = Topology::paper(&[Region::Oregon]);
            let model = ComputeModel {
                pipeline,
                ..ComputeModel::default()
            };
            let mut e = Engine::new(topo, model.clone(), model, FaultState::default());
            let to = ReplicaId::new(0, 0);
            let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
            e.add_replica(Box::new(Echo {
                id: to,
                peer: to,
                received: counter,
                reply: false,
            }));
            for _ in 0..8 {
                e.route(
                    ReplicaId::new(0, 1).into(),
                    to.into(),
                    commit(),
                    SimTime::ZERO,
                );
            }
            e.run_until(SimTime::ZERO + SimDuration::from_secs(1));
            e.nodes[&NodeId::Replica(to)].busy_until
        };
        let staged = worker_busy_after(PipelineModel::with_verifiers(2));
        let single = worker_busy_after(PipelineModel::single_threaded());
        assert!(
            staged < single,
            "parallel verification must relieve the worker: staged {staged:?} vs single {single:?}"
        );
    }

    #[test]
    fn dedicated_execution_runs_off_the_worker_path() {
        use crate::compute::PipelineModel;
        use rdb_consensus::types::{ClientBatch, DecisionEntry, SignedBatch, Transaction};
        use rdb_crypto::digest::Digest;

        struct Decider {
            id: ReplicaId,
        }
        impl ReplicaProtocol for Decider {
            fn id(&self) -> ReplicaId {
                self.id
            }
            fn on_start(&mut self, _now: SimTime, _out: &mut Outbox) {}
            fn on_message(&mut self, _n: SimTime, _f: NodeId, _m: Message, out: &mut Outbox) {
                let client = rdb_common::ids::ClientId::new(0, 0);
                let batch = ClientBatch {
                    client,
                    batch_seq: 0,
                    txns: (0..1_000)
                        .map(|i| Transaction {
                            client,
                            seq: i,
                            op: rdb_store::Operation::NoOp,
                        })
                        .collect(),
                };
                out.decided(Decision {
                    seq: 1,
                    entries: vec![DecisionEntry {
                        origin: None,
                        batch: SignedBatch {
                            batch,
                            pubkey: Default::default(),
                            sig: Default::default(),
                        },
                    }],
                    state_digest: Digest::ZERO,
                });
            }
            fn on_timer(&mut self, _now: SimTime, _t: TimerKind, _out: &mut Outbox) {}
        }

        let run = |pipeline: PipelineModel| {
            let topo = Topology::paper(&[Region::Oregon]);
            let model = ComputeModel {
                pipeline,
                ..ComputeModel::default()
            };
            let mut e = Engine::new(topo, model.clone(), model, FaultState::default());
            let to = ReplicaId::new(0, 0);
            e.add_replica(Box::new(Decider { id: to }));
            e.route(
                ReplicaId::new(0, 1).into(),
                to.into(),
                Message::Noop,
                SimTime::ZERO,
            );
            e.run_until(SimTime::ZERO + SimDuration::from_secs(1));
            let state = &e.nodes[&NodeId::Replica(to)];
            (state.busy_until, state.exec_free())
        };
        let (staged_busy, staged_exec) = run(PipelineModel::default());
        let (single_busy, single_exec) = run(PipelineModel::single_threaded());
        // Inline execution is worker work in both layouts (the state
        // machine computes reply digests there).
        assert_eq!(staged_busy, single_busy);
        // Staged: the 1000-txn materialization additionally occupies the
        // dedicated core, past the worker's own busy horizon.
        assert!(staged_exec > staged_busy);
        assert_eq!(single_exec, SimTime::ZERO);
    }

    /// A replica that answers every inbound message with one decided
    /// batch of `batch` single-key writes; `spread` keys the writes
    /// `0..batch` (key-disjoint, one per lane) instead of all on key 0.
    struct LaneDecider {
        id: ReplicaId,
        seq: u64,
        batch: u64,
        spread: bool,
    }
    impl ReplicaProtocol for LaneDecider {
        fn id(&self) -> ReplicaId {
            self.id
        }
        fn on_start(&mut self, _now: SimTime, _out: &mut Outbox) {}
        fn on_message(&mut self, _n: SimTime, _f: NodeId, _m: Message, out: &mut Outbox) {
            use rdb_consensus::types::{ClientBatch, DecisionEntry, SignedBatch, Transaction};
            use rdb_crypto::digest::Digest;
            self.seq += 1;
            let client = rdb_common::ids::ClientId::new(0, 0);
            let batch = ClientBatch {
                client,
                batch_seq: self.seq,
                txns: (0..self.batch)
                    .map(|i| Transaction {
                        client,
                        seq: self.seq * self.batch + i,
                        op: rdb_store::Operation::Write {
                            key: if self.spread { i } else { 0 },
                            value: rdb_store::Value::from_u64(i),
                        },
                    })
                    .collect(),
            };
            out.decided(Decision {
                seq: self.seq,
                entries: vec![DecisionEntry {
                    origin: None,
                    batch: SignedBatch {
                        batch,
                        pubkey: Default::default(),
                        sig: Default::default(),
                    },
                }],
                state_digest: Digest::of(&self.seq.to_le_bytes()),
            });
        }
        fn on_timer(&mut self, _now: SimTime, _t: TimerKind, _out: &mut Outbox) {}
    }

    fn lane_run(
        pipeline: crate::compute::PipelineModel,
        spread: bool,
        decisions: u64,
    ) -> (SimTime, SimTime, NetStats) {
        let topo = Topology::paper(&[Region::Oregon]);
        let model = ComputeModel {
            pipeline,
            ..ComputeModel::default()
        };
        let mut e = Engine::new(topo, model.clone(), model, FaultState::default());
        let to = ReplicaId::new(0, 0);
        e.add_replica(Box::new(LaneDecider {
            id: to,
            seq: 0,
            batch: 4,
            spread,
        }));
        for _ in 0..decisions {
            e.route(
                ReplicaId::new(0, 1).into(),
                to.into(),
                Message::Noop,
                SimTime::ZERO,
            );
        }
        e.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        let state = &e.nodes[&NodeId::Replica(to)];
        (state.busy_until, state.exec_free(), e.stats.clone())
    }

    #[test]
    fn exec_lanes_overlap_disjoint_keys_and_serialize_conflicts() {
        use crate::compute::PipelineModel;
        let one = PipelineModel::default().with_exec_lanes(1);
        let four = PipelineModel::default().with_exec_lanes(4);

        // Key-disjoint batches: four lanes drain the materialization
        // backlog in parallel, so the stage's horizon lands earlier.
        let (busy_1, exec_1, _) = lane_run(one, true, 8);
        let (busy_4, exec_4, _) = lane_run(four, true, 8);
        assert!(
            exec_4 < exec_1,
            "disjoint keys must parallelize: 4 lanes {exec_4:?} vs 1 lane {exec_1:?}"
        );
        // Ungated, the lane count never touches the worker's schedule —
        // which is why every existing scenario stays byte-identical.
        assert_eq!(busy_4, busy_1);

        // Same-key batches conflict on one lane and serialize: lanes buy
        // nothing, exactly like the fabric's per-shard ordering.
        let (_, conflict_1, _) = lane_run(PipelineModel::default().with_exec_lanes(1), false, 8);
        let (_, conflict_4, _) = lane_run(PipelineModel::default().with_exec_lanes(4), false, 8);
        assert_eq!(conflict_4, conflict_1);
    }

    #[test]
    fn exec_gate_backpressures_worker_and_lanes_relieve_it() {
        use crate::compute::PipelineModel;
        // A tight window over a slow execute stage: the worker outruns
        // materialization and must block at the bound (PR 3's Block
        // policy). Raise the per-txn cost so the stage is the bottleneck.
        let slow = |lanes: usize| {
            let topo = Topology::paper(&[Region::Oregon]);
            let model = ComputeModel {
                pipeline: PipelineModel::default()
                    .with_exec_lanes(lanes)
                    .with_exec_queue(2),
                exec_ns_per_txn: 2_000_000,
                ..ComputeModel::default()
            };
            let mut e = Engine::new(topo, model.clone(), model, FaultState::default());
            let to = ReplicaId::new(0, 0);
            e.add_replica(Box::new(LaneDecider {
                id: to,
                seq: 0,
                batch: 4,
                spread: true,
            }));
            for _ in 0..12 {
                e.route(
                    ReplicaId::new(0, 1).into(),
                    to.into(),
                    Message::Noop,
                    SimTime::ZERO,
                );
            }
            e.run_until(SimTime::ZERO + SimDuration::from_secs(60));
            let busy = e.nodes[&NodeId::Replica(to)].busy_until;
            (busy, e.stats.clone())
        };
        let (busy_1, stats_1) = slow(1);
        let (busy_4, stats_4) = slow(4);
        // The gate actually engaged and its wait is visible.
        assert!(stats_1.exec_gate_waits > 0);
        assert!(stats_1.exec_gate_wait > SimDuration::ZERO);
        // Lanes drain the window faster on disjoint keys, so the worker
        // blocks less and finishes sooner — modeled throughput scales.
        assert!(
            stats_4.exec_gate_wait < stats_1.exec_gate_wait,
            "4 lanes {:?} must wait less than 1 lane {:?}",
            stats_4.exec_gate_wait,
            stats_1.exec_gate_wait
        );
        assert!(
            busy_4 < busy_1,
            "worker must finish sooner with 4 lanes: {busy_4:?} vs {busy_1:?}"
        );
        // Ungated at 1 lane, the same load never blocks the worker.
        let topo = Topology::paper(&[Region::Oregon]);
        let model = ComputeModel {
            exec_ns_per_txn: 2_000_000,
            ..ComputeModel::default()
        };
        let mut e = Engine::new(topo, model.clone(), model, FaultState::default());
        let to = ReplicaId::new(0, 0);
        e.add_replica(Box::new(LaneDecider {
            id: to,
            seq: 0,
            batch: 4,
            spread: true,
        }));
        for _ in 0..12 {
            e.route(
                ReplicaId::new(0, 1).into(),
                to.into(),
                Message::Noop,
                SimTime::ZERO,
            );
        }
        e.run_until(SimTime::ZERO + SimDuration::from_secs(60));
        assert_eq!(e.stats.exec_gate_waits, 0);
        assert!(e.nodes[&NodeId::Replica(to)].busy_until <= busy_4);
    }

    #[test]
    fn modeled_checkpoint_stage_charges_off_worker_and_compacts() {
        use crate::compute::PipelineModel;
        use rdb_consensus::types::{ClientBatch, DecisionEntry, SignedBatch, Transaction};
        use rdb_crypto::digest::Digest;

        struct Decider {
            id: ReplicaId,
            seq: u64,
        }
        impl ReplicaProtocol for Decider {
            fn id(&self) -> ReplicaId {
                self.id
            }
            fn on_start(&mut self, _now: SimTime, _out: &mut Outbox) {}
            fn on_message(&mut self, _n: SimTime, _f: NodeId, _m: Message, out: &mut Outbox) {
                self.seq += 1;
                let client = rdb_common::ids::ClientId::new(0, 0);
                let batch = ClientBatch {
                    client,
                    batch_seq: self.seq,
                    txns: vec![Transaction {
                        client,
                        seq: self.seq,
                        op: rdb_store::Operation::NoOp,
                    }],
                };
                out.decided(Decision {
                    seq: self.seq,
                    entries: vec![DecisionEntry {
                        origin: None,
                        batch: SignedBatch {
                            batch,
                            pubkey: Default::default(),
                            sig: Default::default(),
                        },
                    }],
                    state_digest: Digest::of(&self.seq.to_le_bytes()),
                });
            }
            fn on_timer(&mut self, _now: SimTime, _t: TimerKind, _out: &mut Outbox) {}
        }

        let run = |interval: u64| {
            let topo = Topology::paper(&[Region::Oregon]);
            let model = ComputeModel {
                pipeline: PipelineModel::default().with_checkpointing(interval),
                ..ComputeModel::default()
            };
            let mut e = Engine::new(topo, model.clone(), model, FaultState::default());
            e.attach_ledgers();
            let to = ReplicaId::new(0, 0);
            e.add_replica(Box::new(Decider { id: to, seq: 0 }));
            for i in 0..7u64 {
                e.route(
                    ReplicaId::new(0, 1).into(),
                    to.into(),
                    Message::Noop,
                    SimTime(i * 1_000_000),
                );
            }
            e.run_until(SimTime::ZERO + SimDuration::from_secs(1));
            let state = &e.nodes[&NodeId::Replica(to)];
            (
                e.stats.checkpoints,
                state.busy_until,
                state.ckpt_free,
                e.ledgers().unwrap()[&to].clone(),
            )
        };
        let (off_ckpts, off_busy, off_ckpt_free, off_ledger) = run(0);
        assert_eq!(off_ckpts, 0);
        assert_eq!(off_ckpt_free, SimTime::ZERO);
        assert_eq!(off_ledger.base_height(), 0, "no compaction when disabled");

        let (on_ckpts, on_busy, on_ckpt_free, on_ledger) = run(3);
        assert_eq!(on_ckpts, 2, "boundaries at decisions 3 and 6");
        // The checkpoint stage hangs off execution: its cost lands on the
        // dedicated horizon, never on the worker — the schedule of every
        // figure reproduction is unchanged.
        assert_eq!(on_busy, off_busy, "checkpointing must not touch the worker");
        assert!(on_ckpt_free > SimTime::ZERO);
        // Compaction tracked the boundaries; content is untouched.
        assert_eq!(on_ledger.base_height(), 6);
        assert_eq!(on_ledger.head_height(), off_ledger.head_height());
        assert_eq!(on_ledger.head_hash(), off_ledger.head_hash());
        for h in on_ledger.base_height()..=on_ledger.head_height() {
            assert_eq!(
                on_ledger.block(h).unwrap().hash(),
                off_ledger.block(h).unwrap().hash(),
                "retained block {h} diverged"
            );
        }
    }

    #[test]
    fn modeled_queue_sheds_droppable_at_exact_bound() {
        use crate::compute::{Overload, PipelineModel};
        use rdb_crypto::digest::Digest;
        use rdb_crypto::sign::Signature;
        let commit = || Message::Commit {
            scope: rdb_consensus::messages::Scope::Global,
            view: 0,
            seq: 1,
            digest: Digest::ZERO,
            sig: Signature::default(),
        };
        // Two verifier slots, queue bound 2, Shed policy. Five commits at
        // t=0: two start service immediately (free slots), two queue
        // (depth 2 = the bound), the fifth is shed. Fully deterministic.
        let topo = Topology::paper(&[Region::Oregon]);
        let model = ComputeModel {
            pipeline: PipelineModel::with_verifiers(2).with_input_queue(2, Overload::Shed),
            ..ComputeModel::default()
        };
        let mut e = Engine::new(topo, model.clone(), model, FaultState::default());
        let to = ReplicaId::new(0, 0);
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        e.add_replica(Box::new(Echo {
            id: to,
            peer: to,
            received: counter.clone(),
            reply: false,
        }));
        for _ in 0..5 {
            e.route(
                ReplicaId::new(0, 1).into(),
                to.into(),
                commit(),
                SimTime::ZERO,
            );
        }
        e.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(e.stats.shed_msgs, 1, "exactly one commit over the bound");
        assert_eq!(
            counter.load(std::sync::atomic::Ordering::Relaxed),
            4,
            "the four admitted commits are processed"
        );
        assert!(e.stats.max_input_depth <= 3, "depth bounded at cap + 1");
    }

    #[test]
    fn modeled_queue_blocks_undroppable_requests_without_loss() {
        use crate::compute::{Overload, PipelineModel};
        // Same bound, but Requests (non-droppable) arrive: nothing is
        // shed — admission waits, the wait is accounted, and every
        // message is eventually processed.
        let request = || {
            Message::Request(rdb_consensus::types::SignedBatch::noop(
                rdb_common::ids::ClusterId(0),
                1,
            ))
        };
        let topo = Topology::paper(&[Region::Oregon]);
        let model = ComputeModel {
            pipeline: PipelineModel::with_verifiers(2).with_input_queue(2, Overload::Shed),
            ..ComputeModel::default()
        };
        let mut e = Engine::new(topo, model.clone(), model, FaultState::default());
        let to = ReplicaId::new(0, 0);
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        e.add_replica(Box::new(Echo {
            id: to,
            peer: to,
            received: counter.clone(),
            reply: false,
        }));
        for _ in 0..6 {
            e.route(
                ReplicaId::new(0, 1).into(),
                to.into(),
                request(),
                SimTime::ZERO,
            );
        }
        e.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(e.stats.shed_msgs, 0, "requests must never shed");
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 6);
        assert!(
            e.stats.blocked_wait > SimDuration::ZERO,
            "over-bound admissions must account their wait"
        );
    }

    #[test]
    fn block_policy_changes_no_schedule() {
        use crate::compute::{Overload, PipelineModel};
        // The Block bound is observability-only: a run with a tiny bound
        // and a run with no bound process events identically.
        let run = |capacity: usize| {
            let topo = Topology::paper(&[Region::Oregon, Region::Sydney]);
            let model = ComputeModel {
                pipeline: PipelineModel::with_verifiers(2)
                    .with_input_queue(capacity, Overload::Block),
                ..ComputeModel::default()
            };
            let mut e = Engine::new(topo, model.clone(), model, FaultState::default());
            let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
            let a = ReplicaId::new(0, 0);
            let b = ReplicaId::new(1, 0);
            e.add_replica(Box::new(Echo {
                id: a,
                peer: b,
                received: counter.clone(),
                reply: false,
            }));
            e.add_replica(Box::new(Echo {
                id: b,
                peer: a,
                received: counter.clone(),
                reply: true,
            }));
            for i in 0..20 {
                e.route(a.into(), b.into(), Message::Noop, SimTime(i * 100));
            }
            e.run_until(SimTime::ZERO + SimDuration::from_secs(2));
            (
                e.events_processed(),
                counter.load(std::sync::atomic::Ordering::Relaxed),
                e.now(),
            )
        };
        let (bounded_ev, bounded_n, bounded_t) = run(1);
        let (unbounded_ev, unbounded_n, unbounded_t) = run(0);
        assert_eq!(bounded_ev, unbounded_ev);
        assert_eq!(bounded_n, unbounded_n);
        assert_eq!(bounded_t, unbounded_t);
    }

    #[test]
    fn deterministic_event_ordering() {
        // Two runs of the same schedule process the same number of events.
        let runs: Vec<u64> = (0..2)
            .map(|_| {
                let (mut e, _c) = two_node_engine(true);
                for i in 0..10 {
                    e.route(
                        ReplicaId::new(0, 0).into(),
                        ReplicaId::new(1, 0).into(),
                        Message::Noop,
                        SimTime(i * 1000),
                    );
                }
                e.run_until(SimTime::ZERO + SimDuration::from_secs(2));
                e.events_processed()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }
}
