//! The per-node compute model.
//!
//! §3 of the paper: "throughput can be limited by waiting (e.g., due to
//! message latencies) or by computational costs (e.g., costs of signing
//! and verifying messages)". The simulator charges virtual time for both;
//! this module prices the compute side.
//!
//! Default costs approximate an 8-core Skylake VM running Crypto++
//! ED25519 / AES-CMAC / SHA-256 (§3 "Cryptography"), with a
//! `parallelism` factor modeling how much of the multi-threaded pipeline
//! (paper Figure 9) each protocol keeps busy. Absolute numbers need not
//! match the paper's testbed; see EXPERIMENTS.md for the calibration.

use rdb_consensus::messages::Message;
use serde::{Deserialize, Serialize};

/// Overload policy of the modeled bounded input queue — the virtual twin
/// of `resilientdb::queue::Overload`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Overload {
    /// Admission never drops: messages over the bound simply wait for the
    /// verifier pool, and the wait is accounted as blocked time
    /// (`NetStats::blocked_wait`). Because the modeled pool is
    /// work-conserving and FIFO, Block changes *no* delivery schedule —
    /// it only makes the queueing observable — which is why it is the
    /// simulator default: figure reproductions are unaffected.
    Block,
    /// Mirror the fabric's shed-on-full input stage: droppable messages
    /// (per `Message::droppable`) arriving while the virtual queue is at
    /// capacity are dropped and counted (`NetStats::shed_msgs`);
    /// non-droppable client requests still wait. Opt in for saturation
    /// studies, as the fabric's overload tests do.
    Shed,
}

/// The modeled stage layout of a node's pipeline (paper Figure 9): how
/// many dedicated verifier threads check inbound signatures, whether
/// decisions execute on their own core instead of the ordering worker,
/// and the bound + overload policy of the virtual input queue.
/// Mirrors the real fabric's `resilientdb::pipeline::PipelineConfig`
/// (including its `queues.input` bound).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineModel {
    /// Parallel verifier threads (fan-out of the Verify stage).
    pub verifier_threads: usize,
    /// Model the execution stage's materialization (table apply + ledger
    /// append) on a dedicated core. Inline transaction execution stays on
    /// the worker either way — the state machines execute inside
    /// `on_message` to produce reply digests, in the real fabric too.
    pub dedicated_execution: bool,
    /// Capacity of the virtual input queue (messages admitted but whose
    /// verification has not yet started). `0` disables the bound — the
    /// pre-backpressure strawman whose unbounded growth the "Looking
    /// Glass" study documents.
    pub input_capacity: usize,
    /// What happens at the bound.
    pub input_overload: Overload,
    /// Decisions between pipeline checkpoints — the virtual twin of the
    /// fabric's `CheckpointConfig::interval`. At every boundary the
    /// engine charges [`ComputeModel::checkpoint_ns`] on the dedicated
    /// checkpoint horizon (off the worker's critical path, like the
    /// fabric's checkpoint thread) and compacts any tracked ledger to
    /// the boundary height. `0` (the default) disables the stage, so
    /// every pre-checkpoint figure reproduction is unchanged byte for
    /// byte.
    pub checkpoint_interval: u64,
    /// Key-sharded execution lanes of the modeled execute stage — the
    /// virtual twin of the fabric's `PipelineConfig::exec_lanes`. Each
    /// decision's materialization cost is split across the lanes its key
    /// footprint touches (`lane = key % lanes`, like the fabric), so
    /// key-disjoint batches advance independent lane horizons in
    /// parallel while same-key traffic serializes on one lane. `1` (the
    /// default) models the single execution thread and leaves every
    /// existing scenario unchanged byte for byte.
    pub exec_lanes: usize,
    /// Bound on in-flight materializations awaiting commit-order
    /// retirement — the virtual twin of the fabric's bounded execute
    /// queue, whose capacity doubles as the lane pool's reorder window
    /// `W`. When nonzero (and execution is dedicated), a worker that
    /// decides while `W` materializations are still in flight blocks
    /// until the oldest retires, the same backpressure the fabric's
    /// Block-policy exec queue applies. `0` (the default) leaves the
    /// stage ungated, preserving every pre-lane scenario byte for byte.
    pub exec_queue_capacity: usize,
}

impl Default for PipelineModel {
    /// Two modeled verifiers: what the real fabric's host-sized default
    /// (`cores / 4`, clamped to 1..=4) resolves to on the paper's 8-core
    /// N1 machines. The input bound is derived from the paper's batch
    /// size (100) and that fan-out via [`PipelineModel::input_capacity_for`],
    /// with the schedule-neutral [`Overload::Block`] policy.
    fn default() -> Self {
        PipelineModel {
            verifier_threads: 2,
            dedicated_execution: true,
            input_capacity: PipelineModel::input_capacity_for(100, 2),
            input_overload: Overload::Block,
            checkpoint_interval: 0,
            exec_lanes: 1,
            exec_queue_capacity: 0,
        }
    }
}

impl PipelineModel {
    /// A single-threaded pipeline: everything on the worker and an
    /// unbounded inbox (the paper's "Looking Glass" strawman, and the
    /// pre-staging behavior).
    pub fn single_threaded() -> PipelineModel {
        PipelineModel {
            verifier_threads: 0,
            dedicated_execution: false,
            input_capacity: 0,
            input_overload: Overload::Block,
            checkpoint_interval: 0,
            exec_lanes: 1,
            exec_queue_capacity: 0,
        }
    }

    /// A pipeline with `n` verifier threads and dedicated execution; the
    /// input bound is re-derived for that fan-out.
    pub fn with_verifiers(n: usize) -> PipelineModel {
        PipelineModel {
            verifier_threads: n,
            input_capacity: PipelineModel::input_capacity_for(100, n),
            ..PipelineModel::default()
        }
    }

    /// Override the input queue bound and policy.
    pub fn with_input_queue(mut self, capacity: usize, overload: Overload) -> PipelineModel {
        self.input_capacity = capacity;
        self.input_overload = overload;
        self
    }

    /// Enable the modeled checkpoint stage every `interval` decisions
    /// (the fabric's `DeploymentBuilder::checkpoint_interval` twin).
    pub fn with_checkpointing(mut self, interval: u64) -> PipelineModel {
        self.checkpoint_interval = interval;
        self
    }

    /// Model `lanes` key-sharded execution lanes (the fabric's
    /// `DeploymentBuilder::exec_lanes` twin), clamped to
    /// `1..=`[`rdb_store::MAX_LANES`] exactly as the fabric clamps.
    pub fn with_exec_lanes(mut self, lanes: usize) -> PipelineModel {
        self.exec_lanes = lanes.clamp(1, rdb_store::MAX_LANES);
        self
    }

    /// Bound the modeled execute stage at `capacity` in-flight
    /// materializations (the fabric's exec-queue bound, which doubles as
    /// the lane pool's reorder window). `0` disables the gate.
    pub fn with_exec_queue(mut self, capacity: usize) -> PipelineModel {
        self.exec_queue_capacity = capacity;
        self
    }

    /// The fabric's input-queue derivation (`StageQueues::derive` in
    /// `resilientdb`): `32 · fan-out` envelopes of consensus chatter plus
    /// `4 ·` batch size for request bursts, floor 64.
    pub fn input_capacity_for(batch_size: usize, verifier_threads: usize) -> usize {
        (32 * verifier_threads.max(1) + 4 * batch_size.max(1)).max(64)
    }
}

/// Per-node compute cost model (all times in nanoseconds of single-core
/// work; divide by `parallelism` for wall time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeModel {
    /// Effective pipeline parallelism of the node (cores kept busy).
    pub parallelism: f64,
    /// Stage layout: verifier fan-out and execution placement.
    pub pipeline: PipelineModel,
    /// Cost of producing a digital signature (ED25519 sign).
    pub sign_ns: u64,
    /// Cost of verifying a digital signature (ED25519 verify).
    pub verify_ns: u64,
    /// Cost of computing/checking a MAC (AES-CMAC stand-in).
    pub mac_ns: u64,
    /// Hashing/serialization cost per byte moved through the pipeline.
    pub per_byte_ns: f64,
    /// Fixed cost of receiving any message (dispatch, queues).
    pub recv_ns: u64,
    /// Fixed cost of emitting one message copy.
    pub send_ns: u64,
    /// Cost of executing one transaction against the store.
    pub exec_ns_per_txn: u64,
    /// Additional cost per transaction-program *instruction* (see
    /// `rdb_store::txn`): a program is charged `exec_ns_per_txn` as a
    /// transaction plus this per instruction executed conservatively
    /// (static instruction count). Zero for YCSB workloads, so paper
    /// reproductions are unaffected.
    pub exec_ns_per_instr: u64,
    /// Cost of one pipeline checkpoint (snapshot digest + certification
    /// bookkeeping + compaction), charged on the dedicated checkpoint
    /// horizon when [`PipelineModel::checkpoint_interval`] is nonzero.
    pub checkpoint_ns: u64,
}

impl Default for ComputeModel {
    fn default() -> Self {
        ComputeModel {
            parallelism: 1.6,
            pipeline: PipelineModel::default(),
            sign_ns: 30_000,
            verify_ns: 60_000,
            mac_ns: 1_000,
            per_byte_ns: 4.0,
            recv_ns: 8_000,
            send_ns: 6_000,
            exec_ns_per_txn: 2_000,
            // A register-machine instruction is a small fraction of a
            // whole YCSB query (hash probe + copy).
            exec_ns_per_instr: 250,
            // ~the cost of digesting and broadcasting one compact state
            // snapshot (a few signature-equivalents); only charged when
            // the modeled checkpoint stage is enabled.
            checkpoint_ns: 250_000,
        }
    }
}

impl ComputeModel {
    /// A model with a different parallelism factor (per-protocol pipeline
    /// calibration).
    pub fn with_parallelism(mut self, parallelism: f64) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Wall-clock nanoseconds for `work_ns` of single-core work.
    #[inline]
    pub fn wall(&self, work_ns: u64) -> u64 {
        (work_ns as f64 / self.parallelism) as u64
    }

    fn bytes_cost(&self, bytes: usize) -> u64 {
        (bytes as f64 * self.per_byte_ns) as u64
    }

    /// Single-core cost of the *Verify stage's* work on one copy of `msg`:
    /// the signature/MAC checks the message declares via
    /// [`Message::verification_cost`] (§3: threshold signatures are
    /// omitted, so certificates carry `n - f` individual signatures that
    /// each receiver checks). Charged on the modeled verifier pool.
    pub fn verify_cost(&self, msg: &Message) -> u64 {
        msg.verification_cost().ns(self.verify_ns, self.mac_ns)
    }

    /// Single-core cost of the *worker stage's* receive-side work on one
    /// copy of `msg`: dispatch, queue handling and deserialization.
    pub fn dispatch_cost(&self, msg: &Message) -> u64 {
        self.recv_ns + self.bytes_cost(msg.wire_size())
    }

    /// Total single-core cost of receiving and validating one copy of
    /// `msg` — the sum of the Verify and worker portions; what a
    /// single-threaded (unstaged) node would pay.
    pub fn receive_cost(&self, msg: &Message) -> u64 {
        self.dispatch_cost(msg) + self.verify_cost(msg)
    }

    /// Single-core cost of emitting one copy of `msg` (serialization +
    /// session MAC). Signing is charged once per *logical* message by the
    /// engine, not per copy.
    pub fn send_cost(&self, msg: &Message) -> u64 {
        self.send_ns + self.mac_ns + self.bytes_cost(msg.wire_size())
    }

    /// Whether emitting this message type involves producing a digital
    /// signature (charged once per logical message).
    pub fn signs_on_send(msg: &Message) -> bool {
        matches!(
            msg,
            Message::Request(_)
                | Message::Commit { .. }
                | Message::Rvc { .. }
                | Message::SpecResponse { .. }
                | Message::HsVote { .. }
                | Message::StewardLocalAccept { .. }
        )
    }

    /// Cost of executing `txns` transactions.
    pub fn exec_cost(&self, txns: usize) -> u64 {
        self.exec_ns_per_txn * txns as u64
    }

    /// Cost of executing one decision: its transactions plus the
    /// register-machine instructions of any transaction programs they
    /// carry. Equals [`ComputeModel::exec_cost`] for program-free
    /// batches, keeping YCSB reproductions byte-identical.
    pub fn exec_cost_decision(&self, txns: usize, program_instrs: usize) -> u64 {
        self.exec_cost(txns) + self.exec_ns_per_instr * program_instrs as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::ids::{ClusterId, ReplicaId};
    use rdb_consensus::certificate::{CommitCertificate, CommitSig};
    use rdb_consensus::types::SignedBatch;
    use rdb_crypto::digest::Digest;
    use rdb_crypto::sign::Signature;

    fn model() -> ComputeModel {
        ComputeModel::default()
    }

    #[test]
    fn certificate_cost_scales_with_commit_count() {
        let m = model();
        let cert = |k: usize| {
            let batch = SignedBatch::noop(ClusterId(0), 1);
            Message::GlobalShare {
                cert: CommitCertificate {
                    cluster: ClusterId(0),
                    round: 1,
                    digest: batch.digest(),
                    batch,
                    commits: (0..k as u16)
                        .map(|i| CommitSig {
                            replica: ReplicaId::new(0, i),
                            sig: Signature::default(),
                        })
                        .collect(),
                },
            }
        };
        let small = m.receive_cost(&cert(3));
        let large = m.receive_cost(&cert(11));
        assert!(large > small + 7 * m.verify_ns);
    }

    #[test]
    fn control_messages_are_cheap() {
        let m = model();
        let prepare = Message::Prepare {
            scope: rdb_consensus::messages::Scope::Global,
            view: 0,
            seq: 1,
            digest: Digest::ZERO,
        };
        let commit = Message::Commit {
            scope: rdb_consensus::messages::Scope::Global,
            view: 0,
            seq: 1,
            digest: Digest::ZERO,
            sig: Signature::default(),
        };
        // A commit costs one signature verification more than a prepare.
        assert_eq!(
            m.receive_cost(&commit) - m.receive_cost(&prepare),
            m.verify_ns
        );
    }

    #[test]
    fn parallelism_divides_wall_time() {
        let m = model().with_parallelism(2.0);
        assert_eq!(m.wall(10_000), 5_000);
    }

    #[test]
    fn signing_message_classification() {
        let commit = Message::Commit {
            scope: rdb_consensus::messages::Scope::Global,
            view: 0,
            seq: 1,
            digest: Digest::ZERO,
            sig: Signature::default(),
        };
        assert!(ComputeModel::signs_on_send(&commit));
        let prepare = Message::Prepare {
            scope: rdb_consensus::messages::Scope::Global,
            view: 0,
            seq: 1,
            digest: Digest::ZERO,
        };
        assert!(!ComputeModel::signs_on_send(&prepare));
    }

    #[test]
    fn exec_cost_linear() {
        let m = model();
        assert_eq!(m.exec_cost(100), 100 * m.exec_ns_per_txn);
    }

    #[test]
    fn receive_cost_is_verify_plus_dispatch() {
        let m = model();
        let commit = Message::Commit {
            scope: rdb_consensus::messages::Scope::Global,
            view: 0,
            seq: 1,
            digest: Digest::ZERO,
            sig: Signature::default(),
        };
        assert_eq!(
            m.receive_cost(&commit),
            m.verify_cost(&commit) + m.dispatch_cost(&commit)
        );
        // The verify portion follows the message's declared cost exactly.
        assert_eq!(m.verify_cost(&commit), m.verify_ns + m.mac_ns);
    }

    #[test]
    fn pipeline_model_presets() {
        let single = PipelineModel::single_threaded();
        assert_eq!(single.verifier_threads, 0);
        assert!(!single.dedicated_execution);
        assert_eq!(single.input_capacity, 0, "strawman is unbounded");
        let wide = PipelineModel::with_verifiers(4);
        assert_eq!(wide.verifier_threads, 4);
        assert!(wide.dedicated_execution);
        assert_eq!(ComputeModel::default().pipeline, PipelineModel::default());
        // Execution lanes default to the single-thread model with no gate.
        assert_eq!(single.exec_lanes, 1);
        assert_eq!(wide.exec_lanes, 1);
        assert_eq!(wide.exec_queue_capacity, 0);
    }

    #[test]
    fn exec_lane_builders_clamp_like_the_fabric() {
        let m = PipelineModel::default()
            .with_exec_lanes(4)
            .with_exec_queue(8);
        assert_eq!(m.exec_lanes, 4);
        assert_eq!(m.exec_queue_capacity, 8);
        assert_eq!(PipelineModel::default().with_exec_lanes(0).exec_lanes, 1);
        assert_eq!(
            PipelineModel::default().with_exec_lanes(10_000).exec_lanes,
            rdb_store::MAX_LANES
        );
        // The lane fields ride the model's serde round-trip like every
        // other stage knob.
        let json = serde_json::to_string(&m).unwrap();
        let back: PipelineModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn input_capacity_mirrors_fabric_derivation() {
        // Same formula as resilientdb's StageQueues::derive.
        assert_eq!(PipelineModel::input_capacity_for(1, 1), 64, "floor");
        assert_eq!(PipelineModel::input_capacity_for(100, 2), 464);
        assert_eq!(
            PipelineModel::default().input_capacity,
            PipelineModel::input_capacity_for(100, 2)
        );
        assert!(
            PipelineModel::with_verifiers(4).input_capacity
                > PipelineModel::with_verifiers(1).input_capacity
        );
        let q = PipelineModel::default().with_input_queue(8, Overload::Shed);
        assert_eq!(q.input_capacity, 8);
        assert_eq!(q.input_overload, Overload::Shed);
    }
}
