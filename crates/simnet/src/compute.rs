//! The per-node compute model.
//!
//! §3 of the paper: "throughput can be limited by waiting (e.g., due to
//! message latencies) or by computational costs (e.g., costs of signing
//! and verifying messages)". The simulator charges virtual time for both;
//! this module prices the compute side.
//!
//! Default costs approximate an 8-core Skylake VM running Crypto++
//! ED25519 / AES-CMAC / SHA-256 (§3 "Cryptography"), with a
//! `parallelism` factor modeling how much of the multi-threaded pipeline
//! (paper Figure 9) each protocol keeps busy. Absolute numbers need not
//! match the paper's testbed; see EXPERIMENTS.md for the calibration.

use rdb_consensus::messages::Message;
use serde::{Deserialize, Serialize};

/// Per-node compute cost model (all times in nanoseconds of single-core
/// work; divide by `parallelism` for wall time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeModel {
    /// Effective pipeline parallelism of the node (cores kept busy).
    pub parallelism: f64,
    /// Cost of producing a digital signature (ED25519 sign).
    pub sign_ns: u64,
    /// Cost of verifying a digital signature (ED25519 verify).
    pub verify_ns: u64,
    /// Cost of computing/checking a MAC (AES-CMAC stand-in).
    pub mac_ns: u64,
    /// Hashing/serialization cost per byte moved through the pipeline.
    pub per_byte_ns: f64,
    /// Fixed cost of receiving any message (dispatch, queues).
    pub recv_ns: u64,
    /// Fixed cost of emitting one message copy.
    pub send_ns: u64,
    /// Cost of executing one transaction against the store.
    pub exec_ns_per_txn: u64,
}

impl Default for ComputeModel {
    fn default() -> Self {
        ComputeModel {
            parallelism: 1.6,
            sign_ns: 30_000,
            verify_ns: 60_000,
            mac_ns: 1_000,
            per_byte_ns: 4.0,
            recv_ns: 8_000,
            send_ns: 6_000,
            exec_ns_per_txn: 2_000,
        }
    }
}

impl ComputeModel {
    /// A model with a different parallelism factor (per-protocol pipeline
    /// calibration).
    pub fn with_parallelism(mut self, parallelism: f64) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Wall-clock nanoseconds for `work_ns` of single-core work.
    #[inline]
    pub fn wall(&self, work_ns: u64) -> u64 {
        (work_ns as f64 / self.parallelism) as u64
    }

    fn bytes_cost(&self, bytes: usize) -> u64 {
        (bytes as f64 * self.per_byte_ns) as u64
    }

    /// Single-core cost of *receiving and validating* one copy of `msg`.
    ///
    /// Mirrors what the protocol implementations actually validate:
    /// batches cost one client-signature verification plus hashing;
    /// certificates/QCs cost one verification per carried signature
    /// (§3: threshold signatures are omitted, so certificates carry
    /// `n - f` individual signatures that each receiver checks).
    pub fn receive_cost(&self, msg: &Message) -> u64 {
        let base = self.recv_ns + self.bytes_cost(msg.wire_size());
        let crypto = match msg {
            Message::Request(_) | Message::Forward(_) => self.mac_ns + self.verify_ns,
            Message::PrePrepare { .. } | Message::OrderReq { .. } => self.mac_ns + self.verify_ns,
            Message::Prepare { .. }
            | Message::Checkpoint { .. }
            | Message::Drvc { .. }
            | Message::LocalCommit { .. }
            | Message::Reply { .. } => self.mac_ns,
            Message::Commit { .. } => self.mac_ns + self.verify_ns,
            Message::ViewChange { .. } | Message::NewView { .. } => self.mac_ns,
            Message::GlobalShare { cert } | Message::StewardProposal { cert, .. } => {
                // Client signature + every commit signature.
                self.mac_ns + self.verify_ns * (1 + cert.commits.len() as u64)
            }
            Message::Rvc { .. } => self.verify_ns,
            Message::SpecResponse { .. } => self.verify_ns,
            Message::ZyzCommit { sigs, .. } => self.verify_ns * sigs.len() as u64,
            Message::HsProposal { batch, justify, .. } => {
                let b = if batch.is_some() { self.verify_ns } else { 0 };
                let q = justify
                    .as_ref()
                    .map_or(0, |qc| self.verify_ns * qc.votes.len() as u64);
                self.mac_ns + b + q
            }
            Message::HsVote { .. } => self.verify_ns,
            Message::StewardLocalAccept { .. } => self.verify_ns,
            Message::StewardAccept { sigs, .. } => self.verify_ns * sigs.len() as u64,
            Message::Noop => 0,
        };
        base + crypto
    }

    /// Single-core cost of emitting one copy of `msg` (serialization +
    /// session MAC). Signing is charged once per *logical* message by the
    /// engine, not per copy.
    pub fn send_cost(&self, msg: &Message) -> u64 {
        self.send_ns + self.mac_ns + self.bytes_cost(msg.wire_size())
    }

    /// Whether emitting this message type involves producing a digital
    /// signature (charged once per logical message).
    pub fn signs_on_send(msg: &Message) -> bool {
        matches!(
            msg,
            Message::Request(_)
                | Message::Commit { .. }
                | Message::Rvc { .. }
                | Message::SpecResponse { .. }
                | Message::HsVote { .. }
                | Message::StewardLocalAccept { .. }
        )
    }

    /// Cost of executing `txns` transactions.
    pub fn exec_cost(&self, txns: usize) -> u64 {
        self.exec_ns_per_txn * txns as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::ids::{ClusterId, ReplicaId};
    use rdb_consensus::certificate::{CommitCertificate, CommitSig};
    use rdb_consensus::types::SignedBatch;
    use rdb_crypto::digest::Digest;
    use rdb_crypto::sign::Signature;

    fn model() -> ComputeModel {
        ComputeModel::default()
    }

    #[test]
    fn certificate_cost_scales_with_commit_count() {
        let m = model();
        let cert = |k: usize| {
            let batch = SignedBatch::noop(ClusterId(0), 1);
            Message::GlobalShare {
                cert: CommitCertificate {
                    cluster: ClusterId(0),
                    round: 1,
                    digest: batch.digest(),
                    batch,
                    commits: (0..k as u16)
                        .map(|i| CommitSig {
                            replica: ReplicaId::new(0, i),
                            sig: Signature::default(),
                        })
                        .collect(),
                },
            }
        };
        let small = m.receive_cost(&cert(3));
        let large = m.receive_cost(&cert(11));
        assert!(large > small + 7 * m.verify_ns);
    }

    #[test]
    fn control_messages_are_cheap() {
        let m = model();
        let prepare = Message::Prepare {
            scope: rdb_consensus::messages::Scope::Global,
            view: 0,
            seq: 1,
            digest: Digest::ZERO,
        };
        let commit = Message::Commit {
            scope: rdb_consensus::messages::Scope::Global,
            view: 0,
            seq: 1,
            digest: Digest::ZERO,
            sig: Signature::default(),
        };
        // A commit costs one signature verification more than a prepare.
        assert_eq!(
            m.receive_cost(&commit) - m.receive_cost(&prepare),
            m.verify_ns
        );
    }

    #[test]
    fn parallelism_divides_wall_time() {
        let m = model().with_parallelism(2.0);
        assert_eq!(m.wall(10_000), 5_000);
    }

    #[test]
    fn signing_message_classification() {
        let commit = Message::Commit {
            scope: rdb_consensus::messages::Scope::Global,
            view: 0,
            seq: 1,
            digest: Digest::ZERO,
            sig: Signature::default(),
        };
        assert!(ComputeModel::signs_on_send(&commit));
        let prepare = Message::Prepare {
            scope: rdb_consensus::messages::Scope::Global,
            view: 0,
            seq: 1,
            digest: Digest::ZERO,
        };
        assert!(!ComputeModel::signs_on_send(&prepare));
    }

    #[test]
    fn exec_cost_linear() {
        let m = model();
        assert_eq!(m.exec_cost(100), 100 * m.exec_ns_per_txn);
    }
}
