//! High-level experiment scenarios: build a full deployment (replicas +
//! closed-loop YCSB clients + faults) for any protocol, run
//! warm-up + measurement, and report the metrics the paper's figures
//! plot.
//!
//! Defaults mirror §4 of the paper: six-region Google Cloud topology
//! (Table 1), 160 k logical clients equally distributed across regions,
//! YCSB write-only workload over 600 k records, batch size 100. The
//! simulated durations are shorter than the paper's 180 s runs (warm-up +
//! measurement are configurable); throughput is a rate, so the window
//! only affects noise.

use crate::compute::ComputeModel;
use crate::engine::Engine;
use crate::faults::{FaultSpec, FaultState};
use crate::stats::NetStats;
use crate::topology::Topology;
use rdb_common::config::SystemConfig;
use rdb_common::ids::{ClientId, ReplicaId};
use rdb_common::time::{SimDuration, SimTime};
use rdb_consensus::adversary::AdversarySpec;
use rdb_consensus::clients::BatchSource;
use rdb_consensus::config::{ExecMode, ProtocolConfig, ProtocolKind};
use rdb_consensus::crypto_ctx::CryptoCtx;
use rdb_consensus::geobft::GeoFaults;
use rdb_consensus::registry;
use rdb_crypto::sign::KeyStore;
use rdb_store::KvStore;
use rdb_workload::ycsb::{batch_source, YcsbConfig};
use serde::Serialize;

/// Pipeline-parallelism calibration per protocol: how many cores of the
/// 8-core N1 machines each implementation keeps busy in the Figure 9
/// pipeline. These and [`protocol_window`] are the only per-protocol
/// fudge factors in the model; see EXPERIMENTS.md ("Calibration").
pub fn protocol_parallelism(kind: ProtocolKind) -> f64 {
    match kind {
        ProtocolKind::GeoBft => 1.3,
        ProtocolKind::Pbft => 2.0,
        ProtocolKind::Zyzzyva => 1.0,
        ProtocolKind::HotStuff => 2.2,
        ProtocolKind::Steward => 1.0,
    }
}

/// Out-of-order pipelining window per protocol. PBFT-family protocols keep
/// a deep in-flight window (ResilientDB processes consensus instances out
/// of order); Steward's wide-area ordering is nearly sequential, which is
/// part of why the paper finds it slow.
pub fn protocol_window(kind: ProtocolKind) -> u64 {
    match kind {
        ProtocolKind::GeoBft => 48,
        ProtocolKind::Pbft => 48,
        ProtocolKind::Zyzzyva => 64,
        ProtocolKind::HotStuff => 24,
        ProtocolKind::Steward => 8,
    }
}

/// A full experiment configuration.
#[derive(Clone)]
pub struct Scenario {
    /// Protocol under test.
    pub kind: ProtocolKind,
    /// Protocol tunables (embeds the z x n system configuration).
    pub cfg: ProtocolConfig,
    /// Network topology; defaults to the Table 1 paper topology over the
    /// system's regions.
    pub topology: Option<Topology>,
    /// Base compute model (protocol parallelism applied automatically).
    pub compute: ComputeModel,
    /// Total logical clients (paper: 160 000), grouped into one
    /// closed-loop batch client per `batch_size` logical clients.
    pub logical_clients: usize,
    /// Warm-up duration (excluded from measurement).
    pub warmup: SimDuration,
    /// Measurement window.
    pub measure: SimDuration,
    /// Deployment seed (keys, workload).
    pub seed: u64,
    /// Faults to inject.
    pub faults: Vec<FaultSpec>,
    /// Workload shape.
    pub ycsb: YcsbConfig,
    /// Keep a full ledger per replica (memory-heavy; tests/examples).
    pub track_ledgers: bool,
    /// With `ExecMode::Real`, preload this many YCSB records per replica.
    pub real_exec_records: u64,
    /// Byzantine behaviour per replica (see
    /// [`rdb_consensus::adversary`]); applied as protocol wrappers at
    /// deployment time.
    pub adversaries: Vec<(ReplicaId, AdversarySpec)>,
    /// Replace the YCSB workload with a custom per-client batch source
    /// (`factory(client, seed)`); used by the scenario harness for
    /// SmallBank-style transaction-program workloads. `Arc` so
    /// [`Scenario`] stays `Clone`.
    pub source_factory: Option<std::sync::Arc<dyn Fn(ClientId, u64) -> BatchSource + Send + Sync>>,
}

impl Scenario {
    /// A paper-style scenario: `z` clusters of `n` replicas running
    /// `kind`, batch size 100, Table 1 topology.
    pub fn paper(kind: ProtocolKind, z: usize, n: usize) -> Scenario {
        let system = SystemConfig::geo(z, n).expect("valid system");
        let mut cfg = ProtocolConfig::new(system);
        cfg.exec_mode = ExecMode::Modeled;
        cfg.window = protocol_window(kind);
        // Zyzzyva clients wait this long for the full n responses before
        // falling back to the commit phase — the conservative timeout that
        // wrecks Zyzzyva under failures (§4.3, [Clement et al.]).
        cfg.spec_window = SimDuration::from_millis(1_500);
        Scenario {
            kind,
            cfg,
            topology: None,
            compute: ComputeModel::default(),
            logical_clients: 160_000,
            warmup: SimDuration::from_millis(1_500),
            measure: SimDuration::from_secs(3),
            seed: 0xD1CE,
            faults: Vec::new(),
            ycsb: YcsbConfig::default(),
            track_ledgers: false,
            real_exec_records: 1_000,
            adversaries: Vec::new(),
            source_factory: None,
        }
    }

    /// Set the batch size on both the protocol and the workload.
    pub fn with_batch_size(mut self, batch: usize) -> Scenario {
        self.cfg.batch_size = batch;
        self.ycsb.batch_size = batch;
        self
    }

    /// Shorter windows for tests.
    pub fn quick(mut self) -> Scenario {
        self.warmup = SimDuration::from_millis(500);
        self.measure = SimDuration::from_millis(1_500);
        self
    }

    /// Number of closed-loop batch clients (each stands for `batch_size`
    /// logical clients, keeping the paper's outstanding-transaction count).
    pub fn batch_clients(&self) -> usize {
        (self.logical_clients / self.ycsb.batch_size.max(1)).max(self.cfg.system.z())
    }

    /// Execute the scenario, returning only the metrics.
    pub fn run(self) -> RunMetrics {
        self.run_full().0
    }

    /// Execute the scenario, also returning per-replica ledgers when
    /// [`Scenario::track_ledgers`] is set.
    pub fn run_full(
        self,
    ) -> (
        RunMetrics,
        Option<std::collections::BTreeMap<ReplicaId, rdb_ledger::Ledger>>,
    ) {
        let z = self.cfg.system.z();
        let n = self.cfg.system.n();
        let topology = self
            .topology
            .clone()
            .unwrap_or_else(|| Topology::paper(&self.cfg.system.regions));

        let replica_model = self
            .compute
            .clone()
            .with_parallelism(protocol_parallelism(self.kind));
        // Client pools have plenty of cores in aggregate (8 x 4-core
        // machines in the paper); they are not the bottleneck.
        let client_model = ComputeModel {
            parallelism: 64.0,
            ..self.compute.clone()
        };

        let suppressors: Vec<ReplicaId> = self
            .faults
            .iter()
            .filter_map(|f| match f {
                FaultSpec::SuppressGlobalShare { replica } => Some(*replica),
                _ => None,
            })
            .collect();
        let fault_state = FaultState::new(&self.faults);

        let mut engine = Engine::new(topology, replica_model, client_model, fault_state);
        if self.track_ledgers {
            engine.attach_ledgers();
        }

        // Keys are generated but signature checking is modeled: the
        // compute model charges virtual time instead (DESIGN.md §1).
        let ks = KeyStore::new(self.seed);

        let real_exec = self.cfg.exec_mode == ExecMode::Real;
        for rid in self.cfg.system.all_replicas().collect::<Vec<_>>() {
            let signer = ks.register(rid.into());
            let crypto = CryptoCtx::new(signer, ks.verifier(), false);
            let store = if real_exec {
                KvStore::with_ycsb_records(self.real_exec_records)
            } else {
                KvStore::new() // Modeled execution: state untouched.
            };
            let adversary = self
                .adversaries
                .iter()
                .find(|(r, _)| *r == rid)
                .map(|(_, spec)| spec);
            let replica = if self.kind == ProtocolKind::GeoBft && suppressors.contains(&rid) {
                registry::build_geobft_with_faults(
                    self.cfg.clone(),
                    rid,
                    crypto,
                    store,
                    GeoFaults {
                        suppress_global_share: true,
                    },
                )
            } else {
                registry::build_replica_with_adversary(
                    self.kind,
                    self.cfg.clone(),
                    rid,
                    crypto,
                    store,
                    adversary,
                )
            };
            engine.add_replica(replica);
        }

        // Clients, equally distributed across clusters (§4).
        let clients = self.batch_clients();
        for i in 0..clients {
            let cid = ClientId::new((i % z) as u16, (i / z) as u32);
            let signer = ks.register(cid.into());
            let crypto = CryptoCtx::new(signer, ks.verifier(), false);
            let source = match &self.source_factory {
                Some(factory) => factory(cid, self.seed),
                None => batch_source(self.ycsb.clone(), cid, self.seed),
            };
            engine.add_client(registry::build_client(
                self.kind,
                self.cfg.clone(),
                cid,
                crypto,
                source,
            ));
        }

        engine.start();
        let t_warm = SimTime::ZERO + self.warmup;
        let t_end = t_warm + self.measure;
        engine.schedule_stats_reset(t_warm);
        engine.run_until(t_end);

        let stats = std::mem::take(&mut engine.stats);
        let ledgers = if self.track_ledgers {
            engine.ledgers().cloned()
        } else {
            None
        };
        let secs = self.measure.as_secs_f64();
        let decisions = stats.observer_decisions.max(1);
        let metrics = RunMetrics {
            protocol: self.kind.name().to_string(),
            z,
            n,
            batch: self.ycsb.batch_size,
            throughput_txn_s: stats.completed_txns as f64 / secs,
            avg_latency_s: stats.avg_latency().as_secs_f64(),
            p50_latency_s: stats.latency_percentile(0.5).as_secs_f64(),
            p99_latency_s: stats.latency_percentile(0.99).as_secs_f64(),
            decisions_per_s: stats.observer_decisions as f64 / secs,
            msgs_local_per_decision: stats.msgs_local as f64 / decisions as f64,
            msgs_global_per_decision: stats.msgs_global as f64 / decisions as f64,
            global_mb_per_s: stats.bytes_global as f64 / secs / 1e6,
            completed_batches: stats.completed_batches,
            shed_msgs: stats.shed_msgs,
            blocked_s: stats.blocked_wait.as_secs_f64(),
            max_input_depth: stats.max_input_depth,
            checkpoints: stats.checkpoints,
            events: engine.events_processed(),
            stats,
        };
        (metrics, ledgers)
    }
}

/// Results of one scenario run — one data point in a figure.
#[derive(Debug, Clone, Serialize)]
pub struct RunMetrics {
    /// Protocol name as in the paper's figures.
    pub protocol: String,
    /// Number of clusters.
    pub z: usize,
    /// Replicas per cluster.
    pub n: usize,
    /// Batch size.
    pub batch: usize,
    /// Client-observed transactions per second (the paper's y-axis).
    pub throughput_txn_s: f64,
    /// Mean client latency in seconds (the paper's latency axis).
    pub avg_latency_s: f64,
    /// Median client latency.
    pub p50_latency_s: f64,
    /// Tail client latency.
    pub p99_latency_s: f64,
    /// Consensus decisions per second at the observer replica.
    pub decisions_per_s: f64,
    /// Intra-region messages per decision (Table 2 "local").
    pub msgs_local_per_decision: f64,
    /// Inter-region messages per decision (Table 2 "global").
    pub msgs_global_per_decision: f64,
    /// WAN traffic in MB/s.
    pub global_mb_per_s: f64,
    /// Completed client batches in the window.
    pub completed_batches: u64,
    /// Droppable messages shed at full modeled input queues (nonzero
    /// only with `Overload::Shed` and offered load past capacity).
    pub shed_msgs: u64,
    /// Virtual seconds messages spent waiting for admission at full
    /// modeled input queues (the modeled backpressure).
    pub blocked_s: f64,
    /// Deepest modeled input-queue backlog at any replica — bounded by
    /// `PipelineModel::input_capacity + 1` when a bound is set.
    pub max_input_depth: u64,
    /// Pipeline checkpoints taken across all replicas (modeled stage).
    /// Skipped in JSON output so figure reproductions stay byte-stable
    /// against pre-checkpoint baselines.
    #[serde(skip)]
    pub checkpoints: u64,
    /// Events processed (simulation cost).
    pub events: u64,
    /// Raw statistics.
    #[serde(skip)]
    pub stats: NetStats,
}

impl RunMetrics {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<9} z={} n={:<2} batch={:<3} | {:>9.0} txn/s | lat {:>6.3}s | {:>6.1} dec/s | msgs/dec local {:>7.1} global {:>6.1}",
            self.protocol,
            self.z,
            self.n,
            self.batch,
            self.throughput_txn_s,
            self.avg_latency_s,
            self.decisions_per_s,
            self.msgs_local_per_decision,
            self.msgs_global_per_decision,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(kind: ProtocolKind, z: usize, n: usize) -> Scenario {
        let mut s = Scenario::paper(kind, z, n).quick();
        s.logical_clients = 2_000;
        s.ycsb = YcsbConfig {
            record_count: 1_000,
            batch_size: 50,
            ..YcsbConfig::default()
        };
        s.cfg.batch_size = 50;
        s
    }

    #[test]
    fn geobft_two_clusters_makes_progress() {
        let m = tiny(ProtocolKind::GeoBft, 2, 4).run();
        assert!(m.throughput_txn_s > 0.0, "no throughput: {m:?}");
        assert!(m.avg_latency_s > 0.0);
        assert!(m.decisions_per_s > 0.0);
    }

    #[test]
    fn pbft_single_cluster_makes_progress() {
        let m = tiny(ProtocolKind::Pbft, 1, 4).run();
        assert!(m.throughput_txn_s > 0.0, "no throughput: {m:?}");
    }

    #[test]
    fn all_protocols_make_progress_at_2x4() {
        for kind in ProtocolKind::ALL {
            let m = tiny(kind, 2, 4).run();
            assert!(
                m.completed_batches > 0,
                "{kind} made no progress: {}",
                m.summary()
            );
        }
    }

    #[test]
    fn modeled_verifier_fanout_scales_throughput() {
        // The staged compute model must show the paper's Figure-9 effect:
        // on a verification-bound workload, adding verifier threads lifts
        // throughput (1 -> 4), deterministically and regardless of host
        // cores.
        let run = |fanout: usize| {
            let mut s = tiny(ProtocolKind::Pbft, 1, 4);
            s.compute.pipeline = crate::compute::PipelineModel::with_verifiers(fanout);
            s.run().throughput_txn_s
        };
        let narrow = run(1);
        let wide = run(4);
        assert!(
            wide > narrow,
            "fan-out 4 ({wide:.0} txn/s) must beat fan-out 1 ({narrow:.0} txn/s)"
        );
    }

    #[test]
    fn geobft_beats_pbft_at_geo_scale() {
        // The headline claim, at small scale: with several distant
        // regions, GeoBFT outperforms PBFT.
        let geo = tiny(ProtocolKind::GeoBft, 4, 4).run();
        let pbft = tiny(ProtocolKind::Pbft, 4, 4).run();
        assert!(
            geo.throughput_txn_s > pbft.throughput_txn_s,
            "GeoBFT {} <= PBFT {}",
            geo.summary(),
            pbft.summary()
        );
    }

    #[test]
    fn geobft_survives_suppressing_primary() {
        // Byzantine primary of cluster 0 withholds certificates; the
        // remote view-change protocol must restore progress.
        let mut s = tiny(ProtocolKind::GeoBft, 2, 4);
        s.cfg.remote_timeout = SimDuration::from_millis(200);
        s.cfg.progress_timeout = SimDuration::from_millis(400);
        s.faults = vec![FaultSpec::SuppressGlobalShare {
            replica: ReplicaId::new(0, 0),
        }];
        let m = s.run();
        assert!(
            m.completed_batches > 0,
            "no progress under Byzantine primary: {}",
            m.summary()
        );
    }

    #[test]
    fn crash_of_backup_does_not_halt_geobft() {
        let mut s = tiny(ProtocolKind::GeoBft, 2, 4);
        s.faults = vec![FaultSpec::crash_at_secs(ReplicaId::new(1, 3), 0.0)];
        let m = s.run();
        assert!(m.completed_batches > 0);
    }
}
