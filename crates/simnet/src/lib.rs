//! # rdb-simnet
//!
//! A deterministic discrete-event simulator of a geo-distributed
//! deployment, calibrated to the measurements in Table 1 of the paper.
//! The protocol state machines from `rdb-consensus` run unmodified on this
//! simulator; virtual time advances through three first-order resources:
//!
//! 1. **Propagation delay and bandwidth** per region pair (Table 1): each
//!    directed region pair is a shared pipe with the measured bandwidth
//!    and half-RTT latency, plus a per-node WAN egress aggregate and an
//!    intra-region NIC — reproducing the "bottlenecked by the bandwidth
//!    of the single primary" effect of §4.4.
//! 2. **Compute** per node ([`compute::ComputeModel`]): configurable costs
//!    for signature/MAC operations, per-message handling, hashing and
//!    execution, charged across a modeled Figure-9 stage layout
//!    ([`compute::PipelineModel`]): inbound signature work lands on a
//!    verifier-thread pool behind a *bounded* virtual input queue
//!    (capacity + [`compute::Overload`] policy, mirroring the fabric's
//!    backpressure design — droppable traffic sheds at the bound,
//!    requests wait), ordering on the worker's busy-until queue, and
//!    decision execution on a dedicated core — the same pipeline
//!    abstraction the real fabric (`resilientdb`) runs on OS threads.
//! 3. **Timers** with generation-based cancellation.
//!
//! [`scenario::Scenario`] wires a full deployment (replicas, closed-loop
//! YCSB clients, faults) and returns [`scenario::RunMetrics`] with
//! client-observed throughput/latency and message statistics — the raw
//! material for every figure reproduction in `rdb-bench`.

pub mod compute;
pub mod engine;
pub mod faults;
pub mod scenario;
pub mod stats;
pub mod topology;

pub use compute::{ComputeModel, Overload, PipelineModel};
pub use engine::Engine;
pub use faults::FaultSpec;
pub use scenario::{RunMetrics, Scenario};
pub use stats::NetStats;
pub use topology::Topology;
