//! Fault injection for the failure experiments (§4.3 of the paper).

use rdb_common::ids::ReplicaId;
use rdb_common::time::SimTime;

/// A fault to inject during a run.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// Crash-stop a replica at `at`: from then on it neither receives nor
    /// sends. Used for the single-non-primary, f-per-cluster and
    /// primary-failure scenarios of Figure 12.
    Crash {
        /// The replica to crash.
        replica: ReplicaId,
        /// Virtual time of the crash.
        at: SimTime,
    },
    /// GeoBFT-specific Byzantine behaviour (Example 2.4 case 1): the
    /// replica participates in local replication but, when primary, never
    /// shares certificates globally. Installed at deployment time.
    SuppressGlobalShare {
        /// The Byzantine replica.
        replica: ReplicaId,
    },
    /// Drop every message between two replicas (asymmetric link failure /
    /// partition building block), starting at `from_time` and healing at
    /// `until` (`None` = never heals).
    DropLink {
        /// Sender side.
        a: ReplicaId,
        /// Receiver side.
        b: ReplicaId,
        /// When the link goes dark.
        from_time: SimTime,
        /// When the link heals (exclusive); `None` for a permanent cut.
        until: Option<SimTime>,
    },
}

impl FaultSpec {
    /// Convenience: crash at a given virtual second.
    pub fn crash_at_secs(replica: ReplicaId, secs: f64) -> FaultSpec {
        FaultSpec::Crash {
            replica,
            at: SimTime((secs * 1e9) as u64),
        }
    }

    /// Convenience: a permanent directional link cut.
    pub fn drop_link(a: ReplicaId, b: ReplicaId, from_time: SimTime) -> FaultSpec {
        FaultSpec::DropLink {
            a,
            b,
            from_time,
            until: None,
        }
    }

    /// A full bidirectional partition between two replica groups over
    /// `[from, until)`: every cross-group link drops in both directions,
    /// then heals. Retransmission timers re-deliver what was lost, so a
    /// healed partition must converge back to one ledger — the scenario
    /// suite asserts exactly that.
    pub fn partition(
        side_a: &[ReplicaId],
        side_b: &[ReplicaId],
        from: SimTime,
        until: SimTime,
    ) -> Vec<FaultSpec> {
        let mut out = Vec::with_capacity(side_a.len() * side_b.len() * 2);
        for &a in side_a {
            for &b in side_b {
                for (x, y) in [(a, b), (b, a)] {
                    out.push(FaultSpec::DropLink {
                        a: x,
                        b: y,
                        from_time: from,
                        until: Some(until),
                    });
                }
            }
        }
        out
    }
}

/// Runtime fault state consulted by the engine on every delivery.
#[derive(Debug, Default)]
pub struct FaultState {
    crashes: Vec<(ReplicaId, SimTime)>,
    drops: Vec<(ReplicaId, ReplicaId, SimTime, Option<SimTime>)>,
}

impl FaultState {
    /// Build from specs (suppress-share faults are consumed at deployment
    /// time by the scenario builder, not here).
    pub fn new(specs: &[FaultSpec]) -> FaultState {
        let mut fs = FaultState::default();
        for s in specs {
            match s {
                FaultSpec::Crash { replica, at } => fs.crashes.push((*replica, *at)),
                FaultSpec::DropLink {
                    a,
                    b,
                    from_time,
                    until,
                } => fs.drops.push((*a, *b, *from_time, *until)),
                FaultSpec::SuppressGlobalShare { .. } => {}
            }
        }
        fs
    }

    /// Is the replica crashed at `now`?
    pub fn is_crashed(&self, r: ReplicaId, now: SimTime) -> bool {
        self.crashes.iter().any(|(c, at)| *c == r && now >= *at)
    }

    /// Should a message from `a` to `b` be dropped at `now`?
    pub fn is_dropped(&self, a: ReplicaId, b: ReplicaId, now: SimTime) -> bool {
        self.drops.iter().any(|(x, y, at, until)| {
            *x == a && *y == b && now >= *at && until.is_none_or(|u| now < u)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_takes_effect_at_time() {
        let r = ReplicaId::new(0, 1);
        let fs = FaultState::new(&[FaultSpec::crash_at_secs(r, 1.0)]);
        assert!(!fs.is_crashed(r, SimTime(999_999_999)));
        assert!(fs.is_crashed(r, SimTime(1_000_000_000)));
        assert!(!fs.is_crashed(ReplicaId::new(0, 2), SimTime(2_000_000_000)));
    }

    #[test]
    fn link_drops_are_directional() {
        let a = ReplicaId::new(0, 0);
        let b = ReplicaId::new(1, 0);
        let fs = FaultState::new(&[FaultSpec::drop_link(a, b, SimTime::ZERO)]);
        assert!(fs.is_dropped(a, b, SimTime(1)));
        assert!(!fs.is_dropped(b, a, SimTime(1)));
    }

    #[test]
    fn partitions_heal() {
        let a = ReplicaId::new(0, 0);
        let b = ReplicaId::new(0, 1);
        let specs = FaultSpec::partition(&[a], &[b], SimTime(100), SimTime(200));
        assert_eq!(specs.len(), 2, "both directions cut");
        let fs = FaultState::new(&specs);
        assert!(!fs.is_dropped(a, b, SimTime(99)));
        assert!(fs.is_dropped(a, b, SimTime(100)));
        assert!(fs.is_dropped(b, a, SimTime(199)));
        assert!(!fs.is_dropped(a, b, SimTime(200)), "healed");
        assert!(!fs.is_dropped(b, a, SimTime(250)));
    }
}
