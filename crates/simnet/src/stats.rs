//! Measurement-window statistics collected by the engine.

use rdb_common::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Message and decision statistics for one run.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Messages whose source and destination share a region.
    pub msgs_local: u64,
    /// Messages crossing regions.
    pub msgs_global: u64,
    /// Bytes on intra-region links.
    pub bytes_local: u64,
    /// Bytes on inter-region links.
    pub bytes_global: u64,
    /// Per-label (message kind) counts and bytes. Ordered so reports and
    /// JSON output are byte-stable across runs.
    pub per_label: BTreeMap<&'static str, (u64, u64)>,
    /// Client-observed completed batches.
    pub completed_batches: u64,
    /// Client-observed completed transactions.
    pub completed_txns: u64,
    /// Sum of client request latencies (for the mean).
    pub latency_sum: SimDuration,
    /// All request latencies (for percentiles), nanoseconds.
    pub latencies_ns: Vec<u64>,
    /// Decisions executed by the observation replica (replica 0.0).
    pub observer_decisions: u64,
    /// Transactions executed by the observation replica.
    pub observer_txns: u64,
    /// Droppable messages shed at a full modeled input queue
    /// (`PipelineModel::input_capacity` with `Overload::Shed`) — the
    /// virtual twin of the fabric's per-stage `shed` counter.
    pub shed_msgs: u64,
    /// Accumulated virtual time messages spent waiting for admission at
    /// a full modeled input queue — the twin of the fabric's
    /// `blocked_ns`.
    pub blocked_wait: SimDuration,
    /// Deepest modeled input-queue backlog observed at any replica; with
    /// a bound configured this never exceeds `input_capacity + 1`.
    pub max_input_depth: u64,
    /// Pipeline checkpoints taken across all replicas (nonzero only when
    /// `PipelineModel::checkpoint_interval` enables the modeled stage).
    pub checkpoints: u64,
    /// Times a modeled worker blocked on the bounded execute stage — the
    /// in-flight materialization backlog was at
    /// `PipelineModel::exec_queue_capacity` (nonzero only when that gate
    /// is configured). The virtual twin of the fabric's Block-policy
    /// exec-queue backpressure.
    pub exec_gate_waits: u64,
    /// Accumulated virtual time workers spent blocked on that gate.
    pub exec_gate_wait: SimDuration,
}

impl NetStats {
    /// Record a message send.
    pub fn on_message(&mut self, label: &'static str, bytes: usize, local: bool) {
        if local {
            self.msgs_local += 1;
            self.bytes_local += bytes as u64;
        } else {
            self.msgs_global += 1;
            self.bytes_global += bytes as u64;
        }
        let e = self.per_label.entry(label).or_insert((0, 0));
        e.0 += 1;
        e.1 += bytes as u64;
    }

    /// Record a completed client request.
    pub fn on_complete(&mut self, txns: usize, submitted: SimTime, now: SimTime) {
        self.completed_batches += 1;
        self.completed_txns += txns as u64;
        let lat = now - submitted;
        self.latency_sum += lat;
        self.latencies_ns.push(lat.as_nanos());
    }

    /// Mean client latency.
    pub fn avg_latency(&self) -> SimDuration {
        if self.completed_batches == 0 {
            SimDuration::ZERO
        } else {
            self.latency_sum / self.completed_batches
        }
    }

    /// Latency percentile (0.0 ..= 1.0).
    pub fn latency_percentile(&self, p: f64) -> SimDuration {
        if self.latencies_ns.is_empty() {
            return SimDuration::ZERO;
        }
        let mut v = self.latencies_ns.clone();
        v.sort_unstable();
        let idx = ((v.len() as f64 - 1.0) * p).round() as usize;
        SimDuration(v[idx.min(v.len() - 1)])
    }

    /// Total messages.
    pub fn msgs_total(&self) -> u64 {
        self.msgs_local + self.msgs_global
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_accounting_splits_local_global() {
        let mut s = NetStats::default();
        s.on_message("prepare", 250, true);
        s.on_message("global-share", 6400, false);
        s.on_message("prepare", 250, true);
        assert_eq!(s.msgs_local, 2);
        assert_eq!(s.msgs_global, 1);
        assert_eq!(s.bytes_local, 500);
        assert_eq!(s.bytes_global, 6400);
        assert_eq!(s.per_label["prepare"], (2, 500));
        assert_eq!(s.msgs_total(), 3);
    }

    #[test]
    fn latency_stats() {
        let mut s = NetStats::default();
        for ms in [10u64, 20, 30, 40] {
            s.on_complete(
                100,
                SimTime::ZERO,
                SimTime::ZERO + SimDuration::from_millis(ms),
            );
        }
        assert_eq!(s.completed_batches, 4);
        assert_eq!(s.completed_txns, 400);
        assert_eq!(s.avg_latency(), SimDuration::from_millis(25));
        assert_eq!(s.latency_percentile(0.0), SimDuration::from_millis(10));
        assert_eq!(s.latency_percentile(1.0), SimDuration::from_millis(40));
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = NetStats::default();
        assert_eq!(s.avg_latency(), SimDuration::ZERO);
        assert_eq!(s.latency_percentile(0.5), SimDuration::ZERO);
    }
}
