//! Merkle trees over transaction batches and ledger segments.
//!
//! Used by the ledger to fingerprint batches and by recovering replicas to
//! verify that a downloaded ledger prefix matches a trusted root without
//! re-reading every block (§3, "The ledger": "a recovering replica can
//! simply read the ledger of any replica it chooses and directly verify
//! whether the ledger can be trusted").

use crate::digest::Digest;

/// A Merkle tree built over a list of leaf digests.
///
/// Odd nodes are promoted (duplicated-last-style trees are avoided: we
/// carry the odd node up unchanged, which keeps proofs unambiguous).
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// levels[0] = leaves, last level = [root].
    levels: Vec<Vec<Digest>>,
}

/// A Merkle inclusion proof for a single leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// Sibling digests from leaf level upward; `None` when the node was
    /// promoted without a sibling at that level.
    pub path: Vec<Option<(Side, Digest)>>,
}

/// Which side a sibling sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Sibling is the left input of the parent hash.
    Left,
    /// Sibling is the right input of the parent hash.
    Right,
}

impl MerkleTree {
    /// Build a tree over `leaves`. An empty leaf list produces a tree whose
    /// root is `Digest::ZERO`.
    pub fn build(leaves: &[Digest]) -> MerkleTree {
        if leaves.is_empty() {
            return MerkleTree {
                levels: vec![vec![Digest::ZERO]],
            };
        }
        let mut levels = vec![leaves.to_vec()];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                match pair {
                    [a, b] => next.push(Digest::combine(a, b)),
                    [a] => next.push(*a), // promote odd node
                    _ => unreachable!(),
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root digest.
    pub fn root(&self) -> Digest {
        self.levels.last().unwrap()[0]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// True when the tree was built over no leaves.
    pub fn is_empty(&self) -> bool {
        self.levels.len() == 1 && self.levels[0].len() == 1 && self.levels[0][0] == Digest::ZERO
    }

    /// Produce an inclusion proof for leaf `index`.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.levels[0].len() {
            return None;
        }
        let mut path = Vec::new();
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = if i.is_multiple_of(2) {
                // We are a left child; sibling (if any) is to the right.
                level.get(i + 1).map(|d| (Side::Right, *d))
            } else {
                Some((Side::Left, level[i - 1]))
            };
            path.push(sibling);
            i /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            path,
        })
    }

    /// Verify an inclusion proof against a root.
    pub fn verify(root: &Digest, leaf: &Digest, proof: &MerkleProof) -> bool {
        let mut acc = *leaf;
        for step in &proof.path {
            acc = match step {
                Some((Side::Left, sib)) => Digest::combine(sib, &acc),
                Some((Side::Right, sib)) => Digest::combine(&acc, sib),
                None => acc, // promoted without sibling
            };
        }
        acc == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Digest> {
        (0..n)
            .map(|i| Digest::of(&(i as u64).to_le_bytes()))
            .collect()
    }

    #[test]
    fn empty_tree_root_is_zero() {
        let t = MerkleTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.root(), Digest::ZERO);
    }

    #[test]
    fn single_leaf_root_is_leaf() {
        let l = leaves(1);
        let t = MerkleTree::build(&l);
        assert_eq!(t.root(), l[0]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn two_leaf_root_is_combined() {
        let l = leaves(2);
        let t = MerkleTree::build(&l);
        assert_eq!(t.root(), Digest::combine(&l[0], &l[1]));
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..=33 {
            let l = leaves(n);
            let t = MerkleTree::build(&l);
            for (i, leaf) in l.iter().enumerate() {
                let p = t.prove(i).expect("proof exists");
                assert!(
                    MerkleTree::verify(&t.root(), leaf, &p),
                    "n={n} leaf={i} proof failed"
                );
            }
        }
    }

    #[test]
    fn proof_for_wrong_leaf_fails() {
        let l = leaves(8);
        let t = MerkleTree::build(&l);
        let p = t.prove(3).unwrap();
        assert!(!MerkleTree::verify(&t.root(), &l[4], &p));
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let t = MerkleTree::build(&leaves(4));
        assert!(t.prove(4).is_none());
    }

    #[test]
    fn changing_a_leaf_changes_the_root() {
        let mut l = leaves(9);
        let before = MerkleTree::build(&l).root();
        l[5] = Digest::of(b"tampered");
        assert_ne!(MerkleTree::build(&l).root(), before);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn all_proofs_verify(n in 1usize..64, probe in any::<usize>()) {
                let l = leaves(n);
                let t = MerkleTree::build(&l);
                let i = probe % n;
                let p = t.prove(i).unwrap();
                prop_assert!(MerkleTree::verify(&t.root(), &l[i], &p));
                // A proof must not validate a different leaf value.
                let fake = Digest::of(b"fake");
                prop_assert!(!MerkleTree::verify(&t.root(), &fake, &p));
            }
        }
    }
}
