//! Pairwise message authentication codes.
//!
//! ResilientDB uses AES-CMAC for all messages that are not forwarded
//! (§2.1, §3 "Cryptography"); we substitute HMAC-SHA256 truncated to 16
//! bytes, which provides the same authenticated-communication property at
//! the same wire size. Each ordered pair of nodes shares a symmetric key;
//! in this reproduction the pairwise key is derived deterministically from
//! the two identities, mirroring a key-exchange performed at deployment
//! time in the real system.

use crate::hmac::{ct_eq, hmac_sha256};
use rdb_common::ids::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 16-byte message authentication code (AES-CMAC wire size).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Mac(pub [u8; 16]);

impl fmt::Debug for Mac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex: String = self.0[..4].iter().map(|b| format!("{b:02x}")).collect();
        write!(f, "Mac({hex}..)")
    }
}

/// A symmetric key shared by an (unordered) pair of nodes.
#[derive(Clone)]
pub struct MacKey([u8; 32]);

impl MacKey {
    /// Derive the pairwise key between two nodes from a deployment seed.
    ///
    /// The derivation is symmetric — `derive(seed, a, b) == derive(seed, b,
    /// a)` — so both endpoints arrive at the same key, as they would after
    /// a real key exchange.
    pub fn derive(seed: u64, a: NodeId, b: NodeId) -> MacKey {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut material = Vec::with_capacity(32);
        material.extend_from_slice(&seed.to_le_bytes());
        material.extend_from_slice(&node_bytes(lo));
        material.extend_from_slice(&node_bytes(hi));
        MacKey(hmac_sha256(b"rdb-mac-pairwise", &material))
    }

    /// Authenticate a message under this key.
    pub fn tag(&self, msg: &[u8]) -> Mac {
        let full = hmac_sha256(&self.0, msg);
        let mut out = [0u8; 16];
        out.copy_from_slice(&full[..16]);
        Mac(out)
    }

    /// Check a tag.
    pub fn verify(&self, msg: &[u8], mac: &Mac) -> bool {
        ct_eq(&self.tag(msg).0, &mac.0)
    }
}

fn node_bytes(node: NodeId) -> [u8; 8] {
    let mut out = [0u8; 8];
    match node {
        NodeId::Replica(r) => {
            out[0] = 0;
            out[1..3].copy_from_slice(&r.cluster.0.to_le_bytes());
            out[3..5].copy_from_slice(&r.index.to_le_bytes());
        }
        NodeId::Client(c) => {
            out[0] = 1;
            out[1..3].copy_from_slice(&c.cluster.0.to_le_bytes());
            out[3..7].copy_from_slice(&c.index.to_le_bytes());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::ids::ReplicaId;

    #[test]
    fn derivation_is_symmetric() {
        let a: NodeId = ReplicaId::new(0, 0).into();
        let b: NodeId = ReplicaId::new(1, 3).into();
        let k1 = MacKey::derive(5, a, b);
        let k2 = MacKey::derive(5, b, a);
        assert_eq!(k1.tag(b"m").0, k2.tag(b"m").0);
    }

    #[test]
    fn tag_roundtrip_and_rejection() {
        let a: NodeId = ReplicaId::new(0, 0).into();
        let b: NodeId = ReplicaId::new(0, 1).into();
        let k = MacKey::derive(5, a, b);
        let mac = k.tag(b"payload");
        assert!(k.verify(b"payload", &mac));
        assert!(!k.verify(b"payloae", &mac));

        let other = MacKey::derive(5, a, ReplicaId::new(0, 2).into());
        assert!(!other.verify(b"payload", &mac));
    }

    #[test]
    fn distinct_pairs_have_distinct_keys() {
        let a: NodeId = ReplicaId::new(0, 0).into();
        let b: NodeId = ReplicaId::new(0, 1).into();
        let c: NodeId = ReplicaId::new(0, 2).into();
        let kab = MacKey::derive(5, a, b).tag(b"m");
        let kac = MacKey::derive(5, a, c).tag(b"m");
        assert_ne!(kab.0, kac.0);
    }

    #[test]
    fn seed_separates_deployments() {
        let a: NodeId = ReplicaId::new(0, 0).into();
        let b: NodeId = ReplicaId::new(0, 1).into();
        assert_ne!(
            MacKey::derive(1, a, b).tag(b"m").0,
            MacKey::derive(2, a, b).tag(b"m").0
        );
    }
}
