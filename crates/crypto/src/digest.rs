//! The 32-byte digest value type used throughout the system.

use crate::sha256::{sha256, Sha256};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A SHA-256 digest. Used for request digests, block hashes, state
/// fingerprints and checkpoint identities.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest; used as the parent of the genesis block.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Hash a byte string.
    pub fn of(data: &[u8]) -> Digest {
        Digest(sha256(data))
    }

    /// Hash the concatenation of several byte strings, with length framing
    /// so that `(["ab","c"])` and `(["a","bc"])` differ.
    pub fn of_parts(parts: &[&[u8]]) -> Digest {
        let mut h = Sha256::new();
        for p in parts {
            h.update(&(p.len() as u64).to_le_bytes());
            h.update(p);
        }
        Digest(h.finalize())
    }

    /// Combine two digests (used by Merkle trees and chain hashes).
    pub fn combine(a: &Digest, b: &Digest) -> Digest {
        let mut h = Sha256::new();
        h.update(&a.0);
        h.update(&b.0);
        Digest(h.finalize())
    }

    /// Raw bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Short hex prefix for logs.
    pub fn short_hex(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Full hex encoding.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}..)", self.short_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_matches_sha256() {
        assert_eq!(Digest::of(b"abc").0, sha256(b"abc"));
    }

    #[test]
    fn parts_framing_prevents_ambiguity() {
        let a = Digest::of_parts(&[b"ab", b"c"]);
        let b = Digest::of_parts(&[b"a", b"bc"]);
        assert_ne!(a, b);
        let c = Digest::of_parts(&[b"abc"]);
        assert_ne!(a, c);
    }

    #[test]
    fn combine_is_order_sensitive() {
        let x = Digest::of(b"x");
        let y = Digest::of(b"y");
        assert_ne!(Digest::combine(&x, &y), Digest::combine(&y, &x));
    }

    #[test]
    fn hex_renderings() {
        let d = Digest::of(b"abc");
        assert_eq!(d.to_hex().len(), 64);
        assert!(d.to_hex().starts_with(&d.short_hex()));
        assert_eq!(format!("{d}"), d.short_hex());
    }

    #[test]
    fn zero_digest_is_all_zero() {
        assert_eq!(Digest::ZERO.0, [0u8; 32]);
    }
}
