//! HMAC-SHA256 per RFC 2104 / FIPS 198-1.
//!
//! Used in two places:
//! * as the tag function behind the simulation signature scheme
//!   ([`crate::sign`]), and
//! * as the pairwise message-authentication code standing in for the
//!   paper's AES-CMAC ([`crate::mac`]).
//!
//! Validated against the RFC 4231 test vectors.

use crate::sha256::{sha256, Sha256};

const BLOCK: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Compute `HMAC-SHA256(key, msg)`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    let mut hm = HmacSha256::new(key);
    hm.update(msg);
    hm.finalize()
}

/// Streaming HMAC-SHA256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK],
}

impl HmacSha256 {
    /// Start an HMAC computation under `key` (any length; longer keys are
    /// hashed first per the RFC).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK];
        if key.len() > BLOCK {
            key_block[..32].copy_from_slice(&sha256(key));
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad_key = [0u8; BLOCK];
        let mut opad_key = [0u8; BLOCK];
        for i in 0..BLOCK {
            ipad_key[i] = key_block[i] ^ IPAD;
            opad_key[i] = key_block[i] ^ OPAD;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad_key);
        HmacSha256 { inner, opad_key }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, msg: &[u8]) -> &mut Self {
        self.inner.update(msg);
        self
    }

    /// Produce the 32-byte tag.
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Constant-time equality for fixed-size tags. In a simulation this is not
/// security-critical, but it is the correct idiom and costs nothing.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2: key "Jefe".
    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: 131-byte key (exceeds the block size).
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // RFC 4231 test case 7: long key and long data.
    #[test]
    fn rfc4231_case7_long_key_and_data() {
        let key = [0xaau8; 131];
        let msg: &[u8] = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        assert_eq!(
            hex(&hmac_sha256(&key, msg)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key = b"stream-key";
        let msg = b"part one | part two | part three";
        let mut hm = HmacSha256::new(key);
        hm.update(&msg[..7]).update(&msg[7..20]);
        hm.update(&msg[20..]);
        assert_eq!(hm.finalize(), hmac_sha256(key, msg));
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"sane"));
        assert!(!ct_eq(b"short", b"longer"));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn key_and_message_sensitivity(
                key in proptest::collection::vec(any::<u8>(), 1..96),
                msg in proptest::collection::vec(any::<u8>(), 0..256),
            ) {
                let tag = hmac_sha256(&key, &msg);
                // Flipping a key bit changes the tag.
                let mut k2 = key.clone();
                k2[0] ^= 0x80;
                prop_assert_ne!(hmac_sha256(&k2, &msg), tag);
                // Appending to the message changes the tag.
                let mut m2 = msg.clone();
                m2.push(0);
                prop_assert_ne!(hmac_sha256(&key, &m2), tag);
            }
        }
    }
}
