//! # rdb-crypto
//!
//! The cryptographic substrate of the ResilientDB/GeoBFT reproduction.
//!
//! The paper (§3, "Cryptography") uses NIST-recommended primitives:
//! ED25519 digital signatures, AES-CMAC message authentication codes, and
//! SHA-256 message digests. This crate provides:
//!
//! * [`sha256`] — a from-scratch FIPS 180-4 SHA-256 implementation,
//!   validated against the NIST test vectors;
//! * [`hmac`] — HMAC-SHA256 (RFC 2104), validated against RFC 4231;
//! * [`digest::Digest`] — a 32-byte digest value type;
//! * [`merkle`] — Merkle trees over transaction batches and ledger state;
//! * [`sign`] — the **simulation signature scheme**: an Ed25519-*shaped*
//!   API (32-byte public keys, 64-byte signatures) implemented with
//!   HMAC-SHA256 under per-identity keys held by a [`sign::KeyStore`].
//!
//! ## Why a simulation signature scheme?
//!
//! This reproduction runs every replica, client and adversary inside one
//! process. What the evaluation actually depends on is (a) unforgeability
//! *within the simulation* and (b) realistic *compute cost* and *wire
//! size*. Property (a) holds because only the `KeyStore` can produce tags
//! and it only hands out non-cloneable [`sign::Signer`] handles — Byzantine
//! replica code cannot reach another identity's signing key. Property (b)
//! is modeled explicitly: the discrete-event simulator charges configurable
//! sign/verify costs, and wire sizes use the Ed25519 sizes (64-byte
//! signatures, 32-byte keys). See DESIGN.md §1 for the substitution table.

pub mod digest;
pub mod hmac;
pub mod mac;
pub mod merkle;
pub mod sha256;
pub mod sign;

pub use digest::Digest;
pub use mac::{Mac, MacKey};
pub use sign::{KeyStore, PublicKey, Signature, Signer, Verifier};
