//! The simulation signature scheme (Ed25519-shaped API).
//!
//! §2.1 of the paper requires digital signatures for forwarded messages
//! (client requests, commit messages) such that "it is practically
//! impossible to forge digital signatures", plus authenticated
//! communication for everything else. ResilientDB uses ED25519.
//!
//! Inside a single-process reproduction we do not need public-key
//! cryptography to obtain those guarantees — we need an API whose *trust
//! boundaries* mirror them:
//!
//! * a [`KeyStore`] generates identities and hands out exactly one
//!   [`Signer`] per identity. `Signer` is deliberately `!Clone`; protocol
//!   code for replica R can only ever sign as R.
//! * anyone holding a [`Verifier`] (cheaply cloneable) can check a
//!   signature against a [`PublicKey`], but cannot produce one.
//! * tags are HMAC-SHA256 under a per-identity secret derived from a
//!   store-level root secret; 64-byte signatures are formed from two
//!   domain-separated HMAC invocations so the wire size matches Ed25519.
//!
//! Forging a signature without the `Signer` would require inverting
//! HMAC-SHA256, so within the simulation the unforgeability assumption of
//! §2.1 holds. The *compute cost* of real Ed25519 (the quantity that
//! matters for the evaluation) is modeled separately by the simulator's
//! compute model (`rdb-simnet::compute`).

use crate::hmac::{ct_eq, hmac_sha256, HmacSha256};
use parking_lot::RwLock;
use rdb_common::ids::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A 32-byte public key / identity handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct PublicKey(pub [u8; 32]);

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex: String = self.0[..4].iter().map(|b| format!("{b:02x}")).collect();
        write!(f, "PublicKey({hex}..)")
    }
}

/// A 64-byte signature, the same wire size as Ed25519.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature(#[serde(with = "serde_bytes64")] pub [u8; 64]);

impl Default for Signature {
    fn default() -> Self {
        Signature([0u8; 64])
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex: String = self.0[..4].iter().map(|b| format!("{b:02x}")).collect();
        write!(f, "Signature({hex}..)")
    }
}

/// Serde support for `[u8; 64]` (serde only derives up to 32 by default).
mod serde_bytes64 {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(v: &[u8; 64], s: S) -> Result<S::Ok, S::Error> {
        v.as_slice().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<[u8; 64], D::Error> {
        let v: Vec<u8> = Vec::deserialize(d)?;
        let mut out = [0u8; 64];
        if v.len() != 64 {
            return Err(serde::de::Error::custom("signature must be 64 bytes"));
        }
        out.copy_from_slice(&v);
        Ok(out)
    }
}

/// Interior state of a key store.
struct KeyStoreInner {
    /// Root secret from which per-identity secrets derive.
    root: [u8; 32],
    /// identity -> public key.
    by_node: RwLock<HashMap<NodeId, PublicKey>>,
    /// public key -> per-identity secret (verification needs it; only the
    /// store itself can read this map).
    secrets: RwLock<HashMap<PublicKey, [u8; 32]>>,
}

/// Central authority generating identities and checking signatures.
///
/// One `KeyStore` is created per deployment. It can mint one [`Signer`] per
/// node and arbitrarily many [`Verifier`]s.
#[derive(Clone)]
pub struct KeyStore {
    inner: Arc<KeyStoreInner>,
}

impl KeyStore {
    /// Create a key store from a deployment seed. Deterministic: the same
    /// seed yields the same keys, which keeps simulations reproducible.
    pub fn new(seed: u64) -> Self {
        let root = hmac_sha256(b"rdb-keystore-root", &seed.to_le_bytes());
        KeyStore {
            inner: Arc::new(KeyStoreInner {
                root,
                by_node: RwLock::new(HashMap::new()),
                secrets: RwLock::new(HashMap::new()),
            }),
        }
    }

    /// Register `node` and return its unique signing handle. Panics if the
    /// node was already registered — each identity signs from exactly one
    /// place.
    pub fn register(&self, node: NodeId) -> Signer {
        let node_bytes = encode_node(node);
        let secret = hmac_sha256(&self.inner.root, &node_bytes);
        let public = PublicKey(hmac_sha256(&secret, b"public-key"));

        let mut by_node = self.inner.by_node.write();
        assert!(
            !by_node.contains_key(&node),
            "node {node:?} registered twice"
        );
        by_node.insert(node, public);
        self.inner.secrets.write().insert(public, secret);

        Signer {
            node,
            public,
            secret,
        }
    }

    /// A verification handle sharing this store's registry.
    pub fn verifier(&self) -> Verifier {
        Verifier {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Look up a node's public key (if registered).
    pub fn public_key_of(&self, node: NodeId) -> Option<PublicKey> {
        self.inner.by_node.read().get(&node).copied()
    }
}

fn encode_node(node: NodeId) -> Vec<u8> {
    match node {
        NodeId::Replica(r) => {
            let mut v = vec![0u8];
            v.extend_from_slice(&r.cluster.0.to_le_bytes());
            v.extend_from_slice(&r.index.to_le_bytes());
            v
        }
        NodeId::Client(c) => {
            let mut v = vec![1u8];
            v.extend_from_slice(&c.cluster.0.to_le_bytes());
            v.extend_from_slice(&c.index.to_le_bytes());
            v
        }
    }
}

fn tag(secret: &[u8; 32], msg: &[u8]) -> [u8; 64] {
    // Two domain-separated HMACs to fill 64 bytes (Ed25519 size).
    let mut first = HmacSha256::new(secret);
    first.update(b"sig/0").update(msg);
    let lo = first.finalize();
    let mut second = HmacSha256::new(secret);
    second.update(b"sig/1").update(msg);
    let hi = second.finalize();
    let mut out = [0u8; 64];
    out[..32].copy_from_slice(&lo);
    out[32..].copy_from_slice(&hi);
    out
}

/// The unique signing handle of one identity. Not `Clone`: ownership of a
/// `Signer` *is* the secret key.
pub struct Signer {
    node: NodeId,
    public: PublicKey,
    secret: [u8; 32],
}

impl Signer {
    /// The identity this signer belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This identity's public key.
    pub fn public_key(&self) -> PublicKey {
        self.public
    }

    /// Sign a message.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        Signature(tag(&self.secret, msg))
    }
}

impl fmt::Debug for Signer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signer({:?})", self.node)
    }
}

/// Cheaply cloneable verification handle.
#[derive(Clone)]
pub struct Verifier {
    inner: Arc<KeyStoreInner>,
}

impl Verifier {
    /// Check `sig` over `msg` against `public`. Returns `false` for
    /// unknown keys and invalid tags alike.
    pub fn verify(&self, public: &PublicKey, msg: &[u8], sig: &Signature) -> bool {
        let secrets = self.inner.secrets.read();
        match secrets.get(public) {
            Some(secret) => ct_eq(&tag(secret, msg), &sig.0),
            None => false,
        }
    }

    /// Look up a node's public key (if registered).
    pub fn public_key_of(&self, node: NodeId) -> Option<PublicKey> {
        self.inner.by_node.read().get(&node).copied()
    }

    /// Batched verification: check every `(public key, signature)` pair
    /// against the same `msg` under a single registry-lock acquisition.
    /// This is the shape certificate/QC checks take — `n - f` signatures
    /// over one payload — and is what the pipeline's verifier stage calls.
    /// Returns `true` only if *all* pairs verify.
    pub fn verify_many(&self, msg: &[u8], pairs: &[(PublicKey, Signature)]) -> bool {
        let secrets = self.inner.secrets.read();
        pairs.iter().all(|(public, sig)| match secrets.get(public) {
            Some(secret) => ct_eq(&tag(secret, msg), &sig.0),
            None => false,
        })
    }
}

impl fmt::Debug for Verifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Verifier")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::ids::{ClientId, ReplicaId};

    fn store() -> KeyStore {
        KeyStore::new(42)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let ks = store();
        let signer = ks.register(ReplicaId::new(0, 0).into());
        let v = ks.verifier();
        let sig = signer.sign(b"hello");
        assert!(v.verify(&signer.public_key(), b"hello", &sig));
    }

    #[test]
    fn verification_rejects_wrong_message() {
        let ks = store();
        let signer = ks.register(ReplicaId::new(0, 0).into());
        let v = ks.verifier();
        let sig = signer.sign(b"hello");
        assert!(!v.verify(&signer.public_key(), b"hellO", &sig));
    }

    #[test]
    fn verification_rejects_wrong_signer() {
        let ks = store();
        let a = ks.register(ReplicaId::new(0, 0).into());
        let b = ks.register(ReplicaId::new(0, 1).into());
        let v = ks.verifier();
        let sig = a.sign(b"msg");
        assert!(!v.verify(&b.public_key(), b"msg", &sig));
    }

    #[test]
    fn verify_many_checks_every_pair() {
        let ks = store();
        let a = ks.register(ReplicaId::new(0, 0).into());
        let b = ks.register(ReplicaId::new(0, 1).into());
        let v = ks.verifier();
        let msg = b"quorum payload";
        let good = vec![(a.public_key(), a.sign(msg)), (b.public_key(), b.sign(msg))];
        assert!(v.verify_many(msg, &good));
        assert!(v.verify_many(msg, &[]));
        let bad = vec![
            (a.public_key(), a.sign(msg)),
            (b.public_key(), b.sign(b"other")),
        ];
        assert!(!v.verify_many(msg, &bad));
        let unknown = vec![(PublicKey([7u8; 32]), a.sign(msg))];
        assert!(!v.verify_many(msg, &unknown));
    }

    #[test]
    fn unknown_key_rejected() {
        let ks = store();
        let v = ks.verifier();
        assert!(!v.verify(&PublicKey([9u8; 32]), b"m", &Signature([0u8; 64])));
    }

    #[test]
    fn deterministic_across_stores_with_same_seed() {
        let a = KeyStore::new(7).register(ClientId::new(0, 3).into());
        let b = KeyStore::new(7).register(ClientId::new(0, 3).into());
        assert_eq!(a.public_key(), b.public_key());
        assert_eq!(a.sign(b"x").0.to_vec(), b.sign(b"x").0.to_vec());
    }

    #[test]
    fn different_seeds_differ() {
        let a = KeyStore::new(1).register(ClientId::new(0, 0).into());
        let b = KeyStore::new(2).register(ClientId::new(0, 0).into());
        assert_ne!(a.public_key(), b.public_key());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let ks = store();
        let node: NodeId = ReplicaId::new(0, 0).into();
        let _a = ks.register(node);
        let _b = ks.register(node);
    }

    #[test]
    fn public_key_lookup() {
        let ks = store();
        let node: NodeId = ReplicaId::new(1, 2).into();
        let s = ks.register(node);
        assert_eq!(ks.public_key_of(node), Some(s.public_key()));
        assert_eq!(ks.verifier().public_key_of(node), Some(s.public_key()));
        assert_eq!(ks.public_key_of(ReplicaId::new(1, 3).into()), None);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Tampering with any byte of a signature invalidates it.
            #[test]
            fn tampered_signature_rejected(msg in proptest::collection::vec(any::<u8>(), 0..128),
                                           byte in 0usize..64, flip in 1u8..=255) {
                let ks = KeyStore::new(99);
                let signer = ks.register(ReplicaId::new(0, 0).into());
                let v = ks.verifier();
                let mut sig = signer.sign(&msg);
                sig.0[byte] ^= flip;
                prop_assert!(!v.verify(&signer.public_key(), &msg, &sig));
            }
        }
    }
}
