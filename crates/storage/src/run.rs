//! Sorted immutable run files ("SSTables") and their k-way merge.
//!
//! ## File format
//!
//! ```text
//! header:  "RDBRUN01" [ks: u8] [count: u32 LE]              (13 bytes)
//! entry:   [kind: u8] [key_len: u32 LE] [key] [val_len: u32 LE] [val]
//! footer:  [check: 8 bytes]
//! ```
//!
//! Entries are ascending by key; `kind` 1 marks a tombstone (no value
//! fields). `check` is the first 8 bytes of SHA-256 over everything after
//! the magic. Runs are written to a `.tmp` sibling and renamed into place,
//! so a run file either exists whole or not at all — crash atomicity for
//! flushes comes from the filesystem rename, not from replay logic.

use crate::backend::Keyspace;
use rdb_crypto::sha256::sha256;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// Magic bytes opening every run file.
pub const RUN_MAGIC: &[u8; 8] = b"RDBRUN01";

/// A run resident in memory: sorted entries, `None` value = tombstone.
#[derive(Debug, Clone)]
pub struct Run {
    /// Keyspace the run belongs to.
    pub ks: Keyspace,
    /// Entries ascending by key; `None` marks a deletion.
    pub entries: Vec<(Vec<u8>, Option<Vec<u8>>)>,
}

impl Run {
    /// Binary-search the run. `None` = key absent; `Some(None)` = tombstone.
    pub fn get(&self, key: &[u8]) -> Option<Option<&[u8]>> {
        self.entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| self.entries[i].1.as_deref())
    }
}

/// Serialize `run` and atomically install it at `path` (`.tmp` + rename).
/// Returns the bytes written.
pub fn write_run(path: &Path, run: &Run, fsync: bool) -> io::Result<u64> {
    debug_assert!(run.entries.windows(2).all(|w| w[0].0 < w[1].0));
    let mut body = Vec::new();
    body.push(run.ks as u8);
    body.extend_from_slice(&(run.entries.len() as u32).to_le_bytes());
    for (key, value) in &run.entries {
        match value {
            Some(v) => {
                body.push(0);
                body.extend_from_slice(&(key.len() as u32).to_le_bytes());
                body.extend_from_slice(key);
                body.extend_from_slice(&(v.len() as u32).to_le_bytes());
                body.extend_from_slice(v);
            }
            None => {
                body.push(1);
                body.extend_from_slice(&(key.len() as u32).to_le_bytes());
                body.extend_from_slice(key);
            }
        }
    }

    let tmp = path.with_extension("tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(RUN_MAGIC)?;
    file.write_all(&body)?;
    file.write_all(&sha256(&body)[..8])?;
    if fsync {
        file.sync_data()?;
    }
    drop(file);
    fs::rename(&tmp, path)?;
    Ok((RUN_MAGIC.len() + body.len() + 8) as u64)
}

/// Load and validate the run at `path`.
pub fn read_run(path: &Path) -> io::Result<Run> {
    let bytes = fs::read(path)?;
    let bad = |msg: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {msg}", path.display()),
        )
    };
    if bytes.len() < RUN_MAGIC.len() + 8 || &bytes[..RUN_MAGIC.len()] != RUN_MAGIC {
        return Err(bad("bad run magic"));
    }
    let body = &bytes[RUN_MAGIC.len()..bytes.len() - 8];
    let check = &bytes[bytes.len() - 8..];
    if sha256(body)[..8] != *check {
        return Err(bad("run checksum mismatch"));
    }

    let mut pos = 0usize;
    let ks = Keyspace::from_tag(*body.first().ok_or_else(|| bad("empty body"))?)
        .ok_or_else(|| bad("bad keyspace tag"))?;
    pos += 1;
    let count = u32::from_le_bytes(
        body.get(pos..pos + 4)
            .ok_or_else(|| bad("short body"))?
            .try_into()
            .unwrap(),
    ) as usize;
    pos += 4;

    let mut take = |n: usize| -> io::Result<&[u8]> {
        let s = body
            .get(pos..pos + n)
            .ok_or_else(|| bad("entry out of bounds"))?;
        pos += n;
        Ok(s)
    };

    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let kind = take(1)?[0];
        let key_len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
        let key = take(key_len)?.to_vec();
        let value = match kind {
            0 => {
                let val_len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
                Some(take(val_len)?.to_vec())
            }
            1 => None,
            _ => return Err(bad("bad entry kind")),
        };
        entries.push((key, value));
    }
    if pos != body.len() {
        return Err(bad("trailing bytes"));
    }
    if !entries.windows(2).all(|w| w[0].0 < w[1].0) {
        return Err(bad("entries out of order"));
    }
    Ok(Run { ks, entries })
}

/// K-way merge of `runs` ordered oldest → newest; for a key present in
/// several runs the *newest* entry wins. When `drop_tombstones` is set
/// (compacting down to a single base run) deletions are elided entirely.
pub fn merge_runs(runs: &[Run], drop_tombstones: bool) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
    let mut heads = vec![0usize; runs.len()];
    let mut out = Vec::new();
    loop {
        // Smallest key among the current heads.
        let mut min: Option<&[u8]> = None;
        for (r, &h) in runs.iter().zip(&heads) {
            if let Some((k, _)) = r.entries.get(h) {
                if min.is_none_or(|m| k.as_slice() < m) {
                    min = Some(k);
                }
            }
        }
        let Some(key) = min.map(<[u8]>::to_vec) else {
            break;
        };
        // Advance every run sitting on that key; the last (newest) wins.
        let mut winner: Option<Option<Vec<u8>>> = None;
        for (r, h) in runs.iter().zip(heads.iter_mut()) {
            if let Some((k, v)) = r.entries.get(*h) {
                if k == &key {
                    winner = Some(v.clone());
                    *h += 1;
                }
            }
        }
        let value = winner.expect("some run held the minimum key");
        if value.is_some() || !drop_tombstones {
            out.push((key, value));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(ks: Keyspace, entries: &[(&[u8], Option<&[u8]>)]) -> Run {
        Run {
            ks,
            entries: entries
                .iter()
                .map(|(k, v)| (k.to_vec(), v.map(<[u8]>::to_vec)))
                .collect(),
        }
    }

    #[test]
    fn run_file_round_trips() {
        let dir = std::env::temp_dir().join(format!("rdb-run-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table-00000001.run");

        let r = run(
            Keyspace::Table,
            &[
                (b"a", Some(b"1")),
                (b"b", None),
                (b"c", Some(b"3333333333")),
            ],
        );
        write_run(&path, &r, false).unwrap();
        let back = read_run(&path).unwrap();
        assert_eq!(back.ks, Keyspace::Table);
        assert_eq!(back.entries, r.entries);
        assert_eq!(back.get(b"a"), Some(Some(b"1".as_slice())));
        assert_eq!(back.get(b"b"), Some(None));
        assert_eq!(back.get(b"z"), None);

        // Corrupt one byte: the checksum refuses the file.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        fs::write(&path, &bytes).unwrap();
        assert!(read_run(&path).is_err());
    }

    #[test]
    fn merge_newest_wins_and_drops_tombstones() {
        let old = run(
            Keyspace::Table,
            &[
                (b"a", Some(b"old")),
                (b"b", Some(b"old")),
                (b"d", Some(b"old")),
            ],
        );
        let new = run(
            Keyspace::Table,
            &[(b"a", Some(b"new")), (b"b", None), (b"c", Some(b"new"))],
        );

        let kept = merge_runs(&[old.clone(), new.clone()], false);
        assert_eq!(
            kept,
            vec![
                (b"a".to_vec(), Some(b"new".to_vec())),
                (b"b".to_vec(), None),
                (b"c".to_vec(), Some(b"new".to_vec())),
                (b"d".to_vec(), Some(b"old".to_vec())),
            ]
        );

        let compacted = merge_runs(&[old, new], true);
        assert!(compacted.iter().all(|(_, v)| v.is_some()));
        assert_eq!(compacted.len(), 3);
    }
}
