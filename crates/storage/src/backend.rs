//! The storage interface the fabric writes through, plus the in-memory
//! engine that preserves the pre-durability behavior.

use std::collections::BTreeMap;
use std::io;

/// Named keyspaces, in the spirit of RocksDB column families.
///
/// Every key lives in exactly one keyspace; scans and flushes are
/// per-keyspace. The discriminant is the on-disk tag byte, so variants must
/// never be reordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Keyspace {
    /// Application records: 8-byte big-endian key → 24-byte value plus
    /// 8-byte little-endian version.
    Table = 0,
    /// Ledger blocks: 8-byte big-endian height → encoded block. Blocks
    /// compacted out of the in-memory ledger are *retained* here (archival
    /// past the recovery anchor instead of dropping them).
    Blocks = 1,
    /// Certified checkpoint records: 8-byte big-endian height → encoded
    /// checkpoint (stable state digest and certificate summary).
    Checkpoints = 2,
    /// Replica markers: short string key → encoded marker (applied height,
    /// stable height, deployment manifest pointer).
    Meta = 3,
}

impl Keyspace {
    /// All keyspaces, in tag order.
    pub const ALL: [Keyspace; 4] = [
        Keyspace::Table,
        Keyspace::Blocks,
        Keyspace::Checkpoints,
        Keyspace::Meta,
    ];

    /// Stable lower-case name, used in run file names and docs.
    pub fn name(self) -> &'static str {
        match self {
            Keyspace::Table => "table",
            Keyspace::Blocks => "blocks",
            Keyspace::Checkpoints => "checkpoints",
            Keyspace::Meta => "meta",
        }
    }

    /// Index into per-keyspace arrays (`0..4`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Keyspace::index`] / the on-disk tag byte.
    pub fn from_tag(tag: u8) -> Option<Keyspace> {
        match tag {
            0 => Some(Keyspace::Table),
            1 => Some(Keyspace::Blocks),
            2 => Some(Keyspace::Checkpoints),
            3 => Some(Keyspace::Meta),
            _ => None,
        }
    }
}

/// One write in a [`WriteBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Insert or overwrite `key` with `value`.
    Put {
        /// Target keyspace.
        ks: Keyspace,
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Remove `key` if present.
    Delete {
        /// Target keyspace.
        ks: Keyspace,
        /// Key bytes.
        key: Vec<u8>,
    },
}

/// An ordered group of writes applied atomically across keyspaces.
///
/// [`LogBackend`](crate::LogBackend) appends the whole batch as a single
/// checksummed WAL record, so crash recovery observes either all of a batch
/// or none of it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    /// The writes, in application order.
    pub ops: Vec<WriteOp>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an insert/overwrite of `key` in `ks`.
    pub fn put(&mut self, ks: Keyspace, key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) {
        self.ops.push(WriteOp::Put {
            ks,
            key: key.into(),
            value: value.into(),
        });
    }

    /// Queue a delete of `key` in `ks`.
    pub fn delete(&mut self, ks: Keyspace, key: impl Into<Vec<u8>>) {
        self.ops.push(WriteOp::Delete {
            ks,
            key: key.into(),
        });
    }

    /// Whether the batch carries no writes.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of queued writes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }
}

/// Counters an engine maintains about its own activity.
///
/// All counters are cumulative since open; the fabric folds them into its
/// `Metrics` so `DeploymentReport::storage` can report flush/compaction/
/// bytes-written totals per deployment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Keys put (including overwrites).
    pub puts: u64,
    /// Keys deleted.
    pub deletes: u64,
    /// Batches appended to the WAL.
    pub wal_records: u64,
    /// Bytes appended to the WAL (record framing included).
    pub wal_bytes: u64,
    /// Memtable flushes (run files written, summed over keyspaces).
    pub flushes: u64,
    /// Bytes written to run files.
    pub run_bytes: u64,
    /// K-way-merge compactions performed.
    pub compactions: u64,
    /// Keys recovered from disk (runs + WAL replay) at open.
    pub keys_recovered: u64,
    /// Bytes of torn WAL tail truncated during replay at open.
    pub wal_truncated_bytes: u64,
}

impl StorageStats {
    /// Fold `other` into `self` (used when a deployment sums per-replica
    /// engines).
    pub fn merge(&mut self, other: &StorageStats) {
        self.puts += other.puts;
        self.deletes += other.deletes;
        self.wal_records += other.wal_records;
        self.wal_bytes += other.wal_bytes;
        self.flushes += other.flushes;
        self.run_bytes += other.run_bytes;
        self.compactions += other.compactions;
        self.keys_recovered += other.keys_recovered;
        self.wal_truncated_bytes += other.wal_truncated_bytes;
    }
}

/// The narrow storage interface the fabric writes through.
///
/// Implementations must apply a [`WriteBatch`] atomically with respect to
/// crash recovery, return point reads that reflect every applied batch, and
/// produce `scan` output in ascending key order.
pub trait StorageBackend: Send {
    /// Apply `batch` atomically.
    fn apply(&mut self, batch: WriteBatch) -> io::Result<()>;

    /// Read the current value of `key` in `ks`.
    fn get(&self, ks: Keyspace, key: &[u8]) -> Option<Vec<u8>>;

    /// All live `(key, value)` pairs of `ks` in ascending key order.
    fn scan(&self, ks: Keyspace) -> Vec<(Vec<u8>, Vec<u8>)>;

    /// Number of live keys in `ks`.
    fn len(&self, ks: Keyspace) -> usize;

    /// Whether `ks` holds no live keys.
    fn is_empty(&self, ks: Keyspace) -> bool {
        self.len(ks) == 0
    }

    /// Force all applied batches onto durable media (no-op for memory).
    fn flush(&mut self) -> io::Result<()>;

    /// Cumulative activity counters.
    fn stats(&self) -> StorageStats;
}

/// Heap-only engine: the pre-durability behavior, extracted.
///
/// Used by every repro binary and by `StorageMode::Memory` deployments, so
/// the figure-generating paths carry no durability overhead and their bytes
/// are untouched.
#[derive(Debug, Default)]
pub struct MemoryBackend {
    spaces: [BTreeMap<Vec<u8>, Vec<u8>>; 4],
    stats: StorageStats,
}

impl MemoryBackend {
    /// An empty in-memory engine.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageBackend for MemoryBackend {
    fn apply(&mut self, batch: WriteBatch) -> io::Result<()> {
        for op in batch.ops {
            match op {
                WriteOp::Put { ks, key, value } => {
                    self.spaces[ks.index()].insert(key, value);
                    self.stats.puts += 1;
                }
                WriteOp::Delete { ks, key } => {
                    self.spaces[ks.index()].remove(&key);
                    self.stats.deletes += 1;
                }
            }
        }
        Ok(())
    }

    fn get(&self, ks: Keyspace, key: &[u8]) -> Option<Vec<u8>> {
        self.spaces[ks.index()].get(key).cloned()
    }

    fn scan(&self, ks: Keyspace) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.spaces[ks.index()]
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    fn len(&self, ks: Keyspace) -> usize {
        self.spaces[ks.index()].len()
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn stats(&self) -> StorageStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyspace_tags_round_trip() {
        for ks in Keyspace::ALL {
            assert_eq!(Keyspace::from_tag(ks as u8), Some(ks));
        }
        assert_eq!(Keyspace::from_tag(4), None);
    }

    #[test]
    fn memory_backend_basic_ops() {
        let mut b = MemoryBackend::new();
        let mut batch = WriteBatch::new();
        batch.put(Keyspace::Table, *b"k1", *b"v1");
        batch.put(Keyspace::Table, *b"k0", *b"v0");
        batch.put(Keyspace::Meta, *b"m", *b"1");
        b.apply(batch).unwrap();

        assert_eq!(b.get(Keyspace::Table, b"k1"), Some(b"v1".to_vec()));
        assert_eq!(b.get(Keyspace::Meta, b"m"), Some(b"1".to_vec()));
        assert_eq!(b.get(Keyspace::Blocks, b"k1"), None);
        assert_eq!(b.len(Keyspace::Table), 2);

        // Scans come back key-ordered regardless of insertion order.
        let scan = b.scan(Keyspace::Table);
        assert_eq!(scan[0].0, b"k0".to_vec());
        assert_eq!(scan[1].0, b"k1".to_vec());

        let mut batch = WriteBatch::new();
        batch.delete(Keyspace::Table, *b"k0");
        b.apply(batch).unwrap();
        assert_eq!(b.get(Keyspace::Table, b"k0"), None);
        assert_eq!(b.stats().puts, 3);
        assert_eq!(b.stats().deletes, 1);
    }
}
