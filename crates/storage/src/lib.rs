//! # rdb-storage
//!
//! Durable storage engines for the ResilientDB/GeoBFT reproduction.
//!
//! The paper positions ResilientDB as a *fabric* for production permissioned
//! deployments; production fabrics keep their ledger and application state on
//! disk so a replica can be killed and rebooted without losing its chain
//! (the companion `rs_node` fabric stores both behind RocksDB column
//! families). This crate reproduces that shape without an external database
//! dependency:
//!
//! * [`StorageBackend`] — the narrow interface the fabric writes through:
//!   atomic multi-keyspace batches, point reads, ordered scans, and an
//!   explicit `flush` durability point.
//! * [`Keyspace`] — four named keyspaces in the spirit of column families:
//!   `table` (application records), `blocks` (the ledger chain, including
//!   blocks compacted out of memory), `checkpoints` (certified checkpoint
//!   records), and `meta` (replica markers such as the applied height).
//! * [`MemoryBackend`] — today's behavior, extracted: a heap-only engine
//!   used by every repro binary so figure bytes are untouched.
//! * [`LogBackend`] — a log-structured persistent engine over `std::fs`:
//!   a checksummed write-ahead log with torn-tail truncation on replay, an
//!   in-memory memtable per keyspace, sorted immutable runs flushed at a
//!   size threshold, and k-way-merge compaction.
//!
//! Every batch appended to the WAL is atomic: replay either observes the
//! whole batch or (when the tail record is torn) none of it, so a crash can
//! only lose a *suffix of whole batches* — never leave a keyspace half
//! written. The fabric exploits this by packing one committed decision
//! (ledger blocks + table writes + applied-height marker) into one batch,
//! which makes "recovered state digest matches the recovered ledger head"
//! true by construction.

pub mod backend;
pub mod log;
pub mod run;
pub mod wal;

pub use backend::{Keyspace, MemoryBackend, StorageBackend, StorageStats, WriteBatch};
pub use log::{LogBackend, LogConfig};
