//! Checksummed write-ahead log with torn-tail truncation on replay.
//!
//! ## File format
//!
//! ```text
//! header:  "RDBWAL01"                                  (8 bytes)
//! record:  [len: u32 LE] [check: 8 bytes] [payload: len bytes]
//! ```
//!
//! `check` is the first 8 bytes of SHA-256 over the payload. A record is
//! valid only if the full frame is present *and* the checksum matches; the
//! first invalid frame ends replay and the file is truncated there, so a
//! torn tail (partial `write` at crash) silently disappears and the log
//! always ends on a whole-record boundary.
//!
//! One record carries one [`WriteBatch`] serialized by
//! [`encode_batch`]; atomicity of the batch is therefore exactly the
//! atomicity of one record.

use crate::backend::{Keyspace, WriteBatch, WriteOp};
use rdb_crypto::sha256::sha256;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"RDBWAL01";

/// Bytes of record framing per record (length + checksum).
pub const RECORD_OVERHEAD: u64 = 12;

/// Append-side handle on a WAL file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Bytes currently in the file (header + whole records).
    len: u64,
    fsync: bool,
}

/// Outcome of replaying a WAL file at open.
#[derive(Debug)]
pub struct Replay {
    /// The decoded batches, in append order.
    pub batches: Vec<WriteBatch>,
    /// Bytes of torn tail discarded by truncation (0 for a clean log).
    pub truncated_bytes: u64,
}

impl Wal {
    /// Open (creating if absent) the WAL at `path`, replay every valid
    /// record, and truncate any torn tail so subsequent appends extend a
    /// well-formed log.
    pub fn open(path: &Path, fsync: bool) -> io::Result<(Wal, Replay)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;

        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.is_empty() {
            file.write_all(WAL_MAGIC)?;
            if fsync {
                file.sync_data()?;
            }
            let wal = Wal {
                file,
                path: path.to_path_buf(),
                len: WAL_MAGIC.len() as u64,
                fsync,
            };
            return Ok((
                wal,
                Replay {
                    batches: Vec::new(),
                    truncated_bytes: 0,
                },
            ));
        }

        // A file that exists but lacks the magic is not ours — refuse
        // rather than silently overwrite.
        if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a WAL file (bad magic)", path.display()),
            ));
        }

        let mut batches = Vec::new();
        let mut pos = WAL_MAGIC.len();
        while let Some(frame) = read_frame(&bytes, pos) {
            let Ok(batch) = decode_batch(frame.payload) else {
                // Checksum passed but the payload is malformed: treat like a
                // torn record and stop here. (Only reachable if a record was
                // written by a different version; checksums catch bit rot.)
                break;
            };
            batches.push(batch);
            pos = frame.end;
        }

        let truncated = (bytes.len() - pos) as u64;
        if truncated > 0 {
            file.set_len(pos as u64)?;
            if fsync {
                file.sync_data()?;
            }
        }
        file.seek(SeekFrom::End(0))?;

        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                len: pos as u64,
                fsync,
            },
            Replay {
                batches,
                truncated_bytes: truncated,
            },
        ))
    }

    /// Append one batch as a single checksummed record. Returns the bytes
    /// appended (framing included).
    pub fn append(&mut self, batch: &WriteBatch) -> io::Result<u64> {
        let payload = encode_batch(batch);
        let mut frame = Vec::with_capacity(payload.len() + RECORD_OVERHEAD as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&sha256(&payload)[..8]);
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        if self.fsync {
            self.file.sync_data()?;
        }
        self.len += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Discard every record: once a flush has made the memtables durable as
    /// run files, the log restarts empty.
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        self.file.seek(SeekFrom::End(0))?;
        if self.fsync {
            self.file.sync_data()?;
        }
        self.len = WAL_MAGIC.len() as u64;
        Ok(())
    }

    /// Current file length in bytes (header included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == WAL_MAGIC.len() as u64
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

struct Frame<'a> {
    payload: &'a [u8],
    end: usize,
}

/// Validate the frame starting at `pos`; `None` if truncated or corrupt.
fn read_frame(bytes: &[u8], pos: usize) -> Option<Frame<'_>> {
    let head = bytes.get(pos..pos + RECORD_OVERHEAD as usize)?;
    let len = u32::from_le_bytes(head[..4].try_into().unwrap()) as usize;
    let payload =
        bytes.get(pos + RECORD_OVERHEAD as usize..pos + RECORD_OVERHEAD as usize + len)?;
    if sha256(payload)[..8] != head[4..12] {
        return None;
    }
    Some(Frame {
        payload,
        end: pos + RECORD_OVERHEAD as usize + len,
    })
}

/// Serialize a batch:
/// `[op_count: u32 LE]` then per op
/// `[ks: u8] [kind: u8] [key_len: u32 LE] [key] [val_len: u32 LE] [val]`
/// (kind 0 = put, 1 = delete; deletes omit the value fields).
pub fn encode_batch(batch: &WriteBatch) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(batch.ops.len() as u32).to_le_bytes());
    for op in &batch.ops {
        match op {
            WriteOp::Put { ks, key, value } => {
                out.push(*ks as u8);
                out.push(0);
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key);
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                out.extend_from_slice(value);
            }
            WriteOp::Delete { ks, key } => {
                out.push(*ks as u8);
                out.push(1);
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key);
            }
        }
    }
    out
}

/// Inverse of [`encode_batch`].
pub fn decode_batch(payload: &[u8]) -> Result<WriteBatch, &'static str> {
    let mut pos = 0usize;
    let count = read_u32(payload, &mut pos)? as usize;
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        let ks = Keyspace::from_tag(read_u8(payload, &mut pos)?).ok_or("bad keyspace tag")?;
        let kind = read_u8(payload, &mut pos)?;
        let key = read_bytes(payload, &mut pos)?.to_vec();
        match kind {
            0 => {
                let value = read_bytes(payload, &mut pos)?.to_vec();
                ops.push(WriteOp::Put { ks, key, value });
            }
            1 => ops.push(WriteOp::Delete { ks, key }),
            _ => return Err("bad op kind"),
        }
    }
    if pos != payload.len() {
        return Err("trailing bytes in record");
    }
    Ok(WriteBatch { ops })
}

fn read_u8(b: &[u8], pos: &mut usize) -> Result<u8, &'static str> {
    let v = *b.get(*pos).ok_or("record too short")?;
    *pos += 1;
    Ok(v)
}

fn read_u32(b: &[u8], pos: &mut usize) -> Result<u32, &'static str> {
    let s = b.get(*pos..*pos + 4).ok_or("record too short")?;
    *pos += 4;
    Ok(u32::from_le_bytes(s.try_into().unwrap()))
}

fn read_bytes<'a>(b: &'a [u8], pos: &mut usize) -> Result<&'a [u8], &'static str> {
    let len = read_u32(b, pos)? as usize;
    let s = b.get(*pos..*pos + len).ok_or("record too short")?;
    *pos += len;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Keyspace;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rdb-wal-{}-{}", std::process::id(), name));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("wal")
    }

    fn sample(i: u64) -> WriteBatch {
        let mut b = WriteBatch::new();
        b.put(Keyspace::Table, i.to_be_bytes(), vec![i as u8; 24]);
        b.put(Keyspace::Meta, *b"applied", i.to_le_bytes());
        if i.is_multiple_of(3) {
            b.delete(Keyspace::Table, (i / 3).to_be_bytes());
        }
        b
    }

    #[test]
    fn batch_codec_round_trips() {
        for i in 0..10 {
            let b = sample(i);
            assert_eq!(decode_batch(&encode_batch(&b)).unwrap(), b);
        }
        assert!(decode_batch(&[1, 2, 3]).is_err());
    }

    #[test]
    fn append_then_replay_recovers_all_batches() {
        let path = tmp("replay");
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        let batches: Vec<_> = (0..20).map(sample).collect();
        for b in &batches {
            wal.append(b).unwrap();
        }
        drop(wal);

        let (_, replay) = Wal::open(&path, false).unwrap();
        assert_eq!(replay.batches, batches);
        assert_eq!(replay.truncated_bytes, 0);
    }

    #[test]
    fn torn_tail_is_truncated_to_a_record_boundary() {
        let path = tmp("torn");
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        for i in 0..8 {
            wal.append(&sample(i)).unwrap();
        }
        let full = wal.len();
        drop(wal);

        // Tear the file at every byte offset inside the last record and
        // check replay always lands on a whole-batch prefix.
        let bytes = fs::read(&path).unwrap();
        for cut in (WAL_MAGIC.len() as u64..full).rev().take(40) {
            fs::write(&path, &bytes[..cut as usize]).unwrap();
            let (_, replay) = Wal::open(&path, false).unwrap();
            assert!(replay.batches.len() <= 8);
            for (i, b) in replay.batches.iter().enumerate() {
                assert_eq!(*b, sample(i as u64));
            }
            // After truncation the file reopens clean.
            let (_, again) = Wal::open(&path, false).unwrap();
            assert_eq!(again.truncated_bytes, 0);
            assert_eq!(again.batches.len(), replay.batches.len());
        }
    }

    #[test]
    fn corrupt_record_ends_replay() {
        let path = tmp("corrupt");
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        for i in 0..5 {
            wal.append(&sample(i)).unwrap();
        }
        drop(wal);

        // Flip a payload byte in the middle record: replay keeps the prefix
        // before it and truncates the rest.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let (_, replay) = Wal::open(&path, false).unwrap();
        assert!(replay.batches.len() < 5);
        assert!(replay.truncated_bytes > 0);
        for (i, b) in replay.batches.iter().enumerate() {
            assert_eq!(*b, sample(i as u64));
        }
    }

    #[test]
    fn reset_empties_the_log() {
        let path = tmp("reset");
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        wal.append(&sample(1)).unwrap();
        wal.reset().unwrap();
        assert!(wal.is_empty());
        wal.append(&sample(2)).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path, false).unwrap();
        assert_eq!(replay.batches, vec![sample(2)]);
    }

    #[test]
    fn foreign_file_is_refused() {
        let path = tmp("foreign");
        fs::write(&path, b"definitely not a wal").unwrap();
        assert!(Wal::open(&path, false).is_err());
    }
}
