//! The log-structured persistent engine.
//!
//! A [`LogBackend`] owns one directory:
//!
//! ```text
//! <dir>/wal                      the write-ahead log (crate::wal)
//! <dir>/<keyspace>-<seq>.run     sorted immutable runs (crate::run)
//! ```
//!
//! Writes land in the WAL first (one record per batch, so a batch is
//! atomic under crash), then in per-keyspace in-memory memtables. When the
//! memtables exceed [`LogConfig::memtable_bytes`] — or on an explicit
//! [`flush`](crate::StorageBackend::flush) — each dirty memtable is written
//! out as a new sorted run and the WAL is reset (everything it protected is
//! now durable in runs). When a keyspace accumulates
//! [`LogConfig::compact_runs`] runs they are k-way-merged, newest wins,
//! into a single base run and the inputs are deleted; tombstones vanish at
//! the base.
//!
//! ## Recovery state machine (at [`LogBackend::open`])
//!
//! 1. list `<ks>-<seq>.run` files, validate checksums, load ascending by
//!    sequence number (older seq = older data);
//! 2. replay the WAL: every checksummed record re-applies one whole batch
//!    to the memtables; the first torn/corrupt frame truncates the file;
//! 3. serve reads newest-first: memtable, then runs from newest to oldest.

use crate::backend::{Keyspace, StorageBackend, StorageStats, WriteBatch, WriteOp};
use crate::run::{merge_runs, read_run, write_run, Run};
use crate::wal::Wal;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Tuning knobs for [`LogBackend`].
#[derive(Debug, Clone, Copy)]
pub struct LogConfig {
    /// Flush memtables to runs once their resident payload exceeds this
    /// many bytes (keys + values, summed over keyspaces).
    pub memtable_bytes: usize,
    /// Compact a keyspace down to one run once it holds this many runs.
    pub compact_runs: usize,
    /// `fsync` after WAL appends and run writes. Off in CI and benches;
    /// the crash-safety tests model torn writes by truncating files, which
    /// is independent of fsync.
    pub fsync: bool,
}

impl Default for LogConfig {
    fn default() -> Self {
        Self {
            memtable_bytes: 1 << 20,
            compact_runs: 4,
            fsync: false,
        }
    }
}

/// One keyspace's mutable state: resident writes plus on-disk runs.
#[derive(Debug, Default)]
struct Space {
    /// Resident writes; `None` value = tombstone awaiting flush.
    memtable: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    /// Runs oldest → newest, each paired with its sequence number.
    runs: Vec<(u64, Run)>,
}

/// Log-structured persistent engine over `std::fs`.
#[derive(Debug)]
pub struct LogBackend {
    dir: PathBuf,
    cfg: LogConfig,
    wal: Wal,
    spaces: [Space; 4],
    /// Payload bytes resident in memtables (flush trigger).
    resident_bytes: usize,
    /// Next run-file sequence number.
    next_seq: u64,
    stats: StorageStats,
}

impl LogBackend {
    /// Open (creating if needed) the engine rooted at `dir` and run the
    /// recovery state machine described at module level.
    pub fn open(dir: &Path, cfg: LogConfig) -> io::Result<LogBackend> {
        fs::create_dir_all(dir)?;
        let mut stats = StorageStats::default();

        // 1. Load runs, ascending by sequence number.
        let mut loaded: Vec<(u64, Run)> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(seq) = parse_run_name(name) else {
                continue;
            };
            let run = read_run(&entry.path())?;
            loaded.push((seq, run));
        }
        loaded.sort_by_key(|(seq, _)| *seq);
        let next_seq = loaded.last().map_or(1, |(seq, _)| seq + 1);

        let mut spaces: [Space; 4] = Default::default();
        for (seq, run) in loaded {
            stats.keys_recovered += run.entries.len() as u64;
            spaces[run.ks.index()].runs.push((seq, run));
        }

        // 2. Replay the WAL into the memtables (truncating any torn tail).
        let (wal, replay) = Wal::open(&dir.join("wal"), cfg.fsync)?;
        stats.wal_truncated_bytes = replay.truncated_bytes;
        let mut backend = LogBackend {
            dir: dir.to_path_buf(),
            cfg,
            wal,
            spaces,
            resident_bytes: 0,
            next_seq,
            stats,
        };
        for batch in replay.batches {
            backend.stats.keys_recovered += batch.ops.len() as u64;
            backend.apply_to_memtables(batch);
        }
        Ok(backend)
    }

    /// Directory this engine persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active configuration.
    pub fn config(&self) -> LogConfig {
        self.cfg
    }

    /// Number of on-disk runs currently serving `ks`.
    pub fn run_count(&self, ks: Keyspace) -> usize {
        self.spaces[ks.index()].runs.len()
    }

    fn apply_to_memtables(&mut self, batch: WriteBatch) {
        for op in batch.ops {
            match op {
                WriteOp::Put { ks, key, value } => {
                    self.resident_bytes += key.len() + value.len();
                    self.spaces[ks.index()].memtable.insert(key, Some(value));
                    self.stats.puts += 1;
                }
                WriteOp::Delete { ks, key } => {
                    self.resident_bytes += key.len();
                    self.spaces[ks.index()].memtable.insert(key, None);
                    self.stats.deletes += 1;
                }
            }
        }
    }

    /// Write every dirty memtable out as a run, then reset the WAL.
    fn flush_memtables(&mut self) -> io::Result<()> {
        let mut wrote = false;
        for ks in Keyspace::ALL {
            let space = &mut self.spaces[ks.index()];
            if space.memtable.is_empty() {
                continue;
            }
            let entries: Vec<_> = std::mem::take(&mut space.memtable).into_iter().collect();
            let run = Run { ks, entries };
            let seq = self.next_seq;
            self.next_seq += 1;
            let path = self.dir.join(run_name(ks, seq));
            let bytes = write_run(&path, &run, self.cfg.fsync)?;
            space.runs.push((seq, run));
            self.stats.flushes += 1;
            self.stats.run_bytes += bytes;
            wrote = true;
        }
        if wrote {
            // Every write the WAL protected now lives in a run; restart the
            // log so replay cost stays proportional to the unflushed tail.
            self.wal.reset()?;
            self.resident_bytes = 0;
        }
        for ks in Keyspace::ALL {
            if self.spaces[ks.index()].runs.len() >= self.cfg.compact_runs {
                self.compact(ks)?;
            }
        }
        Ok(())
    }

    /// K-way-merge every run of `ks` into a single base run.
    fn compact(&mut self, ks: Keyspace) -> io::Result<()> {
        let space = &mut self.spaces[ks.index()];
        if space.runs.len() < 2 {
            return Ok(());
        }
        let inputs: Vec<(u64, Run)> = std::mem::take(&mut space.runs);
        let ordered: Vec<Run> = inputs.iter().map(|(_, r)| r.clone()).collect();
        // The merged output is the new base: tombstones have nothing older
        // to shadow, so they are dropped.
        let entries = merge_runs(&ordered, true);
        let run = Run { ks, entries };
        let seq = self.next_seq;
        self.next_seq += 1;
        let path = self.dir.join(run_name(ks, seq));
        let bytes = write_run(&path, &run, self.cfg.fsync)?;
        // New run is in place; the inputs are now garbage.
        for (old_seq, _) in &inputs {
            let _ = fs::remove_file(self.dir.join(run_name(ks, *old_seq)));
        }
        self.spaces[ks.index()].runs = vec![(seq, run)];
        self.stats.compactions += 1;
        self.stats.run_bytes += bytes;
        Ok(())
    }
}

impl StorageBackend for LogBackend {
    fn apply(&mut self, batch: WriteBatch) -> io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let appended = self.wal.append(&batch)?;
        self.stats.wal_records += 1;
        self.stats.wal_bytes += appended;
        self.apply_to_memtables(batch);
        if self.resident_bytes > self.cfg.memtable_bytes {
            self.flush_memtables()?;
        }
        Ok(())
    }

    fn get(&self, ks: Keyspace, key: &[u8]) -> Option<Vec<u8>> {
        let space = &self.spaces[ks.index()];
        if let Some(v) = space.memtable.get(key) {
            return v.clone();
        }
        for (_, run) in space.runs.iter().rev() {
            if let Some(v) = run.get(key) {
                return v.map(<[u8]>::to_vec);
            }
        }
        None
    }

    fn scan(&self, ks: Keyspace) -> Vec<(Vec<u8>, Vec<u8>)> {
        let space = &self.spaces[ks.index()];
        // Oldest runs first, memtable last: later inserts overwrite.
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for (_, run) in &space.runs {
            for (k, v) in &run.entries {
                merged.insert(k.clone(), v.clone());
            }
        }
        for (k, v) in &space.memtable {
            merged.insert(k.clone(), v.clone());
        }
        merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect()
    }

    fn len(&self, ks: Keyspace) -> usize {
        self.scan(ks).len()
    }

    fn flush(&mut self) -> io::Result<()> {
        self.flush_memtables()
    }

    fn stats(&self) -> StorageStats {
        self.stats
    }
}

fn run_name(ks: Keyspace, seq: u64) -> String {
    format!("{}-{seq:08}.run", ks.name())
}

/// Parse `<ks>-<seq>.run`; `None` for any other file (e.g. `wal`, `.tmp`).
fn parse_run_name(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(".run")?;
    let (ks_name, seq) = stem.rsplit_once('-')?;
    if !Keyspace::ALL.iter().any(|ks| ks.name() == ks_name) {
        return None;
    }
    seq.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rdb-log-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn put(b: &mut LogBackend, ks: Keyspace, k: u64, v: &[u8]) {
        let mut batch = WriteBatch::new();
        batch.put(ks, k.to_be_bytes(), v);
        b.apply(batch).unwrap();
    }

    #[test]
    fn survives_close_and_reopen() {
        let dir = tmp("reopen");
        let mut b = LogBackend::open(&dir, LogConfig::default()).unwrap();
        for k in 0..50u64 {
            put(&mut b, Keyspace::Table, k, &[k as u8; 24]);
        }
        put(&mut b, Keyspace::Meta, 0, b"applied");
        b.flush().unwrap();
        for k in 50..80u64 {
            // These stay in the WAL (memtable under threshold, no flush).
            put(&mut b, Keyspace::Table, k, &[k as u8; 24]);
        }
        drop(b);

        let b = LogBackend::open(&dir, LogConfig::default()).unwrap();
        for k in 0..80u64 {
            assert_eq!(
                b.get(Keyspace::Table, &k.to_be_bytes()),
                Some(vec![k as u8; 24]),
                "key {k}"
            );
        }
        assert_eq!(
            b.get(Keyspace::Meta, &0u64.to_be_bytes()),
            Some(b"applied".to_vec())
        );
        assert_eq!(b.len(Keyspace::Table), 80);
        assert!(b.stats().keys_recovered > 0);
    }

    #[test]
    fn memtable_threshold_triggers_flush_and_compaction() {
        let dir = tmp("compact");
        let cfg = LogConfig {
            memtable_bytes: 256,
            compact_runs: 3,
            fsync: false,
        };
        let mut b = LogBackend::open(&dir, cfg).unwrap();
        for k in 0..200u64 {
            put(&mut b, Keyspace::Table, k % 40, &k.to_le_bytes());
        }
        let stats = b.stats();
        assert!(stats.flushes > 0, "expected flushes, got {stats:?}");
        assert!(stats.compactions > 0, "expected compactions, got {stats:?}");
        // Compaction keeps reads identical: every key shows its last write.
        for k in 0..40u64 {
            let last = (0..200u64).rev().find(|x| x % 40 == k).unwrap();
            assert_eq!(
                b.get(Keyspace::Table, &k.to_be_bytes()),
                Some(last.to_le_bytes().to_vec())
            );
        }
        assert_eq!(b.len(Keyspace::Table), 40);

        // And the compacted directory still reopens to the same state.
        drop(b);
        let b = LogBackend::open(&dir, cfg).unwrap();
        assert_eq!(b.len(Keyspace::Table), 40);
    }

    #[test]
    fn deletes_survive_flush_compaction_and_reopen() {
        let dir = tmp("deletes");
        let cfg = LogConfig {
            memtable_bytes: 128,
            compact_runs: 2,
            fsync: false,
        };
        let mut b = LogBackend::open(&dir, cfg).unwrap();
        for k in 0..20u64 {
            put(&mut b, Keyspace::Table, k, b"live");
        }
        b.flush().unwrap();
        for k in 0..20u64 {
            if k.is_multiple_of(2) {
                let mut batch = WriteBatch::new();
                batch.delete(Keyspace::Table, k.to_be_bytes());
                b.apply(batch).unwrap();
            }
        }
        b.flush().unwrap();
        drop(b);

        let b = LogBackend::open(&dir, cfg).unwrap();
        for k in 0..20u64 {
            let got = b.get(Keyspace::Table, &k.to_be_bytes());
            if k.is_multiple_of(2) {
                assert_eq!(got, None, "key {k} should be deleted");
            } else {
                assert_eq!(got, Some(b"live".to_vec()), "key {k} should live");
            }
        }
        assert_eq!(b.len(Keyspace::Table), 10);
    }

    #[test]
    fn scan_merges_runs_and_memtable_in_key_order() {
        let dir = tmp("scan");
        let mut b = LogBackend::open(&dir, LogConfig::default()).unwrap();
        put(&mut b, Keyspace::Blocks, 2, b"two");
        b.flush().unwrap();
        put(&mut b, Keyspace::Blocks, 1, b"one");
        put(&mut b, Keyspace::Blocks, 2, b"TWO");
        let scan = b.scan(Keyspace::Blocks);
        assert_eq!(
            scan,
            vec![
                (1u64.to_be_bytes().to_vec(), b"one".to_vec()),
                (2u64.to_be_bytes().to_vec(), b"TWO".to_vec()),
            ]
        );
    }

    #[test]
    fn empty_batches_write_nothing() {
        let dir = tmp("empty");
        let mut b = LogBackend::open(&dir, LogConfig::default()).unwrap();
        b.apply(WriteBatch::new()).unwrap();
        assert_eq!(b.stats().wal_records, 0);
    }
}
