//! Error type shared across the workspace.

use std::fmt;

/// Result alias using [`RdbError`].
pub type RdbResult<T> = Result<T, RdbError>;

/// Errors surfaced by the ResilientDB reproduction crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdbError {
    /// Invalid deployment or protocol configuration.
    Config(String),
    /// A cryptographic check failed (bad signature, MAC, or digest).
    CryptoVerification(String),
    /// A message failed validation (malformed, wrong epoch, replayed...).
    InvalidMessage(String),
    /// Ledger integrity violation (hash chain broken, certificate invalid).
    LedgerCorruption(String),
    /// The requested item does not exist.
    NotFound(String),
    /// An operation was attempted in a state that does not allow it.
    InvalidState(String),
    /// I/O-ish failure in the fabric runtime (channel closed, thread gone).
    Runtime(String),
}

impl fmt::Display for RdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdbError::Config(s) => write!(f, "configuration error: {s}"),
            RdbError::CryptoVerification(s) => write!(f, "crypto verification failed: {s}"),
            RdbError::InvalidMessage(s) => write!(f, "invalid message: {s}"),
            RdbError::LedgerCorruption(s) => write!(f, "ledger corruption: {s}"),
            RdbError::NotFound(s) => write!(f, "not found: {s}"),
            RdbError::InvalidState(s) => write!(f, "invalid state: {s}"),
            RdbError::Runtime(s) => write!(f, "runtime error: {s}"),
        }
    }
}

impl std::error::Error for RdbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = RdbError::Config("bad n".into());
        assert_eq!(e.to_string(), "configuration error: bad n");
        let e = RdbError::LedgerCorruption("block 3".into());
        assert!(e.to_string().contains("ledger corruption"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&RdbError::NotFound("x".into()));
    }
}
