//! Virtual time for the discrete-event simulator and timer bookkeeping.
//!
//! All simulated quantities (link latency, bandwidth-induced serialization
//! delay, crypto compute costs, protocol timeouts) are expressed in whole
//! nanoseconds. `u64` nanoseconds cover ~584 years of virtual time, far
//! beyond any experiment.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in virtual time, measured in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimTime(pub u64);

/// A span of virtual time in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the epoch.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounding to nanoseconds).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating doubling, used for exponential back-off of the remote
    /// view-change timers (§2.3 of the paper).
    #[inline]
    pub fn doubled(self) -> SimDuration {
        SimDuration(self.0.saturating_mul(2))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(t.as_nanos(), 10_000_000);
        assert_eq!((t - SimTime::ZERO).as_millis_f64(), 10.0);
        assert_eq!(t.since(SimTime(20_000_000)), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis(4) / 2, SimDuration::from_millis(2));
        assert_eq!(
            SimDuration::from_millis(4) * 3,
            SimDuration::from_millis(12)
        );
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.doubled(), SimDuration::from_millis(200));
        assert_eq!(SimDuration(u64::MAX).doubled(), SimDuration(u64::MAX));
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimDuration::from_nanos(15).to_string(), "15ns");
        assert_eq!(SimDuration::from_micros(15).to_string(), "15.000us");
        assert_eq!(SimDuration::from_millis(15).to_string(), "15.000ms");
        assert_eq!(SimDuration::from_secs(15).to_string(), "15.000s");
    }
}
