//! The six Google Cloud regions used in the paper's evaluation (Table 1).
//!
//! The latency/bandwidth *values* live in `rdb-simnet::topology`; this
//! module only names the regions and fixes the deployment order used in
//! §4.1 of the paper ("we select regions in the order Oregon, Iowa,
//! Montreal, Belgium, Taiwan, and Sydney").

use serde::{Deserialize, Serialize};
use std::fmt;

/// A deployment region. `Custom` supports synthetic topologies beyond the
/// paper's six regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Google Cloud `us-west1` (Oregon) — abbreviated `O` in Table 1.
    Oregon,
    /// Google Cloud `us-central1` (Iowa) — `I`.
    Iowa,
    /// Google Cloud `northamerica-northeast1` (Montreal) — `M`.
    Montreal,
    /// Google Cloud `europe-west1` (Belgium) — `B`.
    Belgium,
    /// Google Cloud `asia-east1` (Taiwan) — `T`.
    Taiwan,
    /// Google Cloud `australia-southeast1` (Sydney) — `S`.
    Sydney,
    /// A synthetic region for custom topologies.
    Custom(u16),
}

impl Region {
    /// The paper's deployment order (§4.1): experiments with `z` regions use
    /// the first `z` entries of this list.
    pub const PAPER_ORDER: [Region; 6] = [
        Region::Oregon,
        Region::Iowa,
        Region::Montreal,
        Region::Belgium,
        Region::Taiwan,
        Region::Sydney,
    ];

    /// One-letter abbreviation as used in Table 1.
    pub fn abbrev(self) -> &'static str {
        match self {
            Region::Oregon => "O",
            Region::Iowa => "I",
            Region::Montreal => "M",
            Region::Belgium => "B",
            Region::Taiwan => "T",
            Region::Sydney => "S",
            Region::Custom(_) => "X",
        }
    }

    /// Index into the Table 1 matrices for the six paper regions.
    pub fn table1_index(self) -> Option<usize> {
        match self {
            Region::Oregon => Some(0),
            Region::Iowa => Some(1),
            Region::Montreal => Some(2),
            Region::Belgium => Some(3),
            Region::Taiwan => Some(4),
            Region::Sydney => Some(5),
            Region::Custom(_) => None,
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::Oregon => write!(f, "Oregon"),
            Region::Iowa => write!(f, "Iowa"),
            Region::Montreal => write!(f, "Montreal"),
            Region::Belgium => write!(f, "Belgium"),
            Region::Taiwan => write!(f, "Taiwan"),
            Region::Sydney => write!(f, "Sydney"),
            Region::Custom(i) => write!(f, "Custom{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_order_matches_section_4_1() {
        let names: Vec<String> = Region::PAPER_ORDER.iter().map(|r| r.to_string()).collect();
        assert_eq!(
            names,
            ["Oregon", "Iowa", "Montreal", "Belgium", "Taiwan", "Sydney"]
        );
    }

    #[test]
    fn table1_indices_are_dense() {
        for (i, r) in Region::PAPER_ORDER.iter().enumerate() {
            assert_eq!(r.table1_index(), Some(i));
        }
        assert_eq!(Region::Custom(3).table1_index(), None);
    }

    #[test]
    fn abbreviations_match_table1_header() {
        let abbrevs: Vec<&str> = Region::PAPER_ORDER.iter().map(|r| r.abbrev()).collect();
        assert_eq!(abbrevs, ["O", "I", "M", "B", "T", "S"]);
    }
}
