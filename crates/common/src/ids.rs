//! Identifiers for the participants of a geo-scale deployment.
//!
//! The paper models a system `S = {C_1, ..., C_z}` of `z` clusters, each
//! holding `n` replicas, plus clients that are each assigned to a single
//! (local) cluster. We mirror that structure: a [`ReplicaId`] is a
//! `(cluster, index)` pair and a [`ClientId`] is a `(cluster, index)` pair,
//! with [`NodeId`] as the tagged union used for message addressing.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a cluster (one geographic region's replica group).
///
/// Clusters are numbered `0..z`. The paper writes `C_1..C_z`; we use
/// zero-based indices internally and render them one-based in `Display` to
/// match the paper's notation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClusterId(pub u16);

impl ClusterId {
    /// Zero-based position of this cluster, usable as a vector index.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0 + 1)
    }
}

/// Identifier of a replica: its cluster plus its index within the cluster.
///
/// Replica indices run `0..n` within each cluster. The paper assigns each
/// replica a unique identifier `1 <= id(R) <= n` within its cluster; the
/// remote view-change protocol relies on *same-index* pairing between
/// clusters ("send to the replica Q in C1 with id(R) = id(Q)"), which maps
/// to equal `index` here.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ReplicaId {
    /// The cluster this replica belongs to.
    pub cluster: ClusterId,
    /// Zero-based index within the cluster (`0..n`).
    pub index: u16,
}

impl ReplicaId {
    /// Construct a replica id from raw parts.
    #[inline]
    pub fn new(cluster: u16, index: u16) -> Self {
        Self {
            cluster: ClusterId(cluster),
            index,
        }
    }

    /// Flatten to a global index given `n` replicas per cluster; useful for
    /// dense per-replica tables.
    #[inline]
    pub fn global_index(self, replicas_per_cluster: usize) -> usize {
        self.cluster.as_usize() * replicas_per_cluster + self.index as usize
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}.{}", self.cluster.0 + 1, self.index + 1)
    }
}

/// Identifier of a client. Every client is assigned to exactly one local
/// cluster (`clients(C)` in the paper); replicas only answer their local
/// clients.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClientId {
    /// The cluster this client is local to.
    pub cluster: ClusterId,
    /// Zero-based index among the clients of that cluster.
    pub index: u32,
}

impl ClientId {
    /// Construct a client id from raw parts.
    #[inline]
    pub fn new(cluster: u16, index: u32) -> Self {
        Self {
            cluster: ClusterId(cluster),
            index,
        }
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}.{}", self.cluster.0 + 1, self.index)
    }
}

/// Any addressable participant: a replica or a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// A consensus replica.
    Replica(ReplicaId),
    /// A client of the system.
    Client(ClientId),
}

impl NodeId {
    /// The cluster (region) the node lives in; used for network routing.
    #[inline]
    pub fn cluster(self) -> ClusterId {
        match self {
            NodeId::Replica(r) => r.cluster,
            NodeId::Client(c) => c.cluster,
        }
    }

    /// Returns the replica id if this node is a replica.
    #[inline]
    pub fn as_replica(self) -> Option<ReplicaId> {
        match self {
            NodeId::Replica(r) => Some(r),
            NodeId::Client(_) => None,
        }
    }

    /// Returns the client id if this node is a client.
    #[inline]
    pub fn as_client(self) -> Option<ClientId> {
        match self {
            NodeId::Client(c) => Some(c),
            NodeId::Replica(_) => None,
        }
    }

    /// True when the node is a replica.
    #[inline]
    pub fn is_replica(self) -> bool {
        matches!(self, NodeId::Replica(_))
    }
}

impl From<ReplicaId> for NodeId {
    fn from(r: ReplicaId) -> Self {
        NodeId::Replica(r)
    }
}

impl From<ClientId> for NodeId {
    fn from(c: ClientId) -> Self {
        NodeId::Client(c)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Replica(r) => write!(f, "{r}"),
            NodeId::Client(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_based_like_the_paper() {
        assert_eq!(ClusterId(0).to_string(), "C1");
        assert_eq!(ReplicaId::new(1, 2).to_string(), "R2.3");
        assert_eq!(ClientId::new(0, 7).to_string(), "c1.7");
    }

    #[test]
    fn global_index_is_dense_and_unique() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for c in 0..4u16 {
            for i in 0..n as u16 {
                assert!(seen.insert(ReplicaId::new(c, i).global_index(n)));
            }
        }
        assert_eq!(seen.len(), 4 * n);
        assert_eq!(seen.iter().copied().max(), Some(4 * n - 1));
    }

    #[test]
    fn node_id_accessors() {
        let r: NodeId = ReplicaId::new(0, 1).into();
        let c: NodeId = ClientId::new(2, 3).into();
        assert!(r.is_replica());
        assert!(!c.is_replica());
        assert_eq!(r.cluster(), ClusterId(0));
        assert_eq!(c.cluster(), ClusterId(2));
        assert_eq!(r.as_replica(), Some(ReplicaId::new(0, 1)));
        assert_eq!(r.as_client(), None);
        assert_eq!(c.as_client(), Some(ClientId::new(2, 3)));
    }

    #[test]
    fn ordering_groups_by_cluster_first() {
        let a = ReplicaId::new(0, 9);
        let b = ReplicaId::new(1, 0);
        assert!(a < b);
    }
}
