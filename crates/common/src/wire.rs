//! Wire-size model.
//!
//! The simulator charges network bandwidth by message size. Rather than
//! serializing every message on the hot path, each message type computes a
//! modeled size from these constants. The constants are calibrated so that
//! the sizes reported in §4 of the paper hold with the default workload
//! (batch size 100):
//!
//! * `PrePrepare` with a 100-transaction batch ≈ 5.4 kB,
//! * a commit certificate (pre-prepare + `n-f = 7` commit messages for
//!   `n = 10`... in the paper's setup 7 commits) ≈ 6.4 kB,
//! * a client response ≈ 1.5 kB,
//! * all other messages ≈ 250 B.
//!
//! See `rdb-consensus::messages` for the per-message formulas and the unit
//! tests pinning the four numbers above.

/// Bytes of a SHA-256 digest.
pub const DIGEST_BYTES: usize = 32;

/// Bytes of an ED25519-style signature (the scheme the paper uses).
pub const SIG_BYTES: usize = 64;

/// Bytes of a public key / signer identifier accompanying a signature.
pub const PUBKEY_BYTES: usize = 32;

/// Bytes of an AES-CMAC style message authentication code.
pub const MAC_BYTES: usize = 16;

/// Fixed per-message envelope: type tag, sender, destination, view/round
/// numbers, lengths, and the session MAC. Chosen so that small protocol
/// messages (prepare/commit/drvc/rvc) come out at the paper's ~250 B.
pub const HEADER_BYTES: usize = 58;

/// Modeled bytes of one YCSB write transaction inside a batch: an 8-byte
/// key, a 24-byte field update, an 8-byte client sequence number and a
/// 12-byte client id/router tag. 100 of these plus a client signature, the
/// request digest and the envelope give the paper's 5.4 kB pre-prepare.
pub const TXN_BYTES: usize = 52;

/// Modeled bytes of one per-transaction execution result in a client
/// response (success flag + returned value digest fragment).
pub const RESULT_BYTES: usize = 14;

/// Size of a client request batch carrying `batch` transactions: the
/// transactions themselves plus the client's signature and public key.
#[inline]
pub fn batch_bytes(batch: usize) -> usize {
    batch * TXN_BYTES + SIG_BYTES + PUBKEY_BYTES
}

/// Size of a `PrePrepare` proposing a batch of `batch` transactions.
#[inline]
pub fn preprepare_bytes(batch: usize) -> usize {
    HEADER_BYTES + batch_bytes(batch) + DIGEST_BYTES + SIG_BYTES
}

/// Size of a small fixed-format protocol message (prepare, commit, drvc,
/// rvc, checkpoint, ...): envelope + digest + signature or MAC padding.
#[inline]
pub fn control_bytes() -> usize {
    // 58 + 32 + 64 + 32 + 64 = 250, matching the paper's "250 B (other
    // messages)".
    HEADER_BYTES + DIGEST_BYTES + SIG_BYTES + PUBKEY_BYTES + SIG_BYTES
}

/// Size of a commit certificate: the pre-prepare (which embeds the client
/// batch) plus `commits` signed commit messages (paper: n - f of them).
#[inline]
pub fn certificate_bytes(batch: usize, commits: usize) -> usize {
    preprepare_bytes(batch) + commits * (PUBKEY_BYTES + SIG_BYTES + DIGEST_BYTES)
}

/// Size of a client response for a batch of `batch` transactions.
#[inline]
pub fn response_bytes(batch: usize) -> usize {
    HEADER_BYTES + batch * RESULT_BYTES + SIG_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §4 of the paper: "With a batch size of 100, the messages have sizes
    /// of 5.4 kB (preprepare), 6.4 kB (commit certificates containing seven
    /// commit messages and a preprepare message), 1.5 kB (client
    /// responses), and 250 B (other messages)."
    #[test]
    fn sizes_match_paper_section_4() {
        let pp = preprepare_bytes(100);
        assert!((5300..=5500).contains(&pp), "preprepare = {pp}");

        let cert = certificate_bytes(100, 7);
        assert!((6200..=6500).contains(&cert), "certificate = {cert}");

        let resp = response_bytes(100);
        assert!((1400..=1600).contains(&resp), "response = {resp}");

        assert_eq!(control_bytes(), 250);
    }

    #[test]
    fn certificate_grows_with_commit_count() {
        // Figure 11 discussion: certificate size is a function of f.
        let small = certificate_bytes(100, 3);
        let large = certificate_bytes(100, 11);
        assert!(large > small);
        assert_eq!(large - small, 8 * (PUBKEY_BYTES + SIG_BYTES + DIGEST_BYTES));
    }

    #[test]
    fn batch_size_dominates_preprepare() {
        let b10 = preprepare_bytes(10);
        let b300 = preprepare_bytes(300);
        assert!(b300 > 28 * b10 / 10 * 9 / 10); // roughly linear in batch
        assert_eq!(b300 - b10, 290 * TXN_BYTES);
    }
}
