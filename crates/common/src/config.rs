//! System configuration: `z` clusters of `n` replicas with at most `f`
//! Byzantine replicas per cluster, `n > 3f` (§2.1, Remark 2.1).

use crate::error::{RdbError, RdbResult};
use crate::ids::{ClusterId, ReplicaId};
use crate::region::Region;
use serde::{Deserialize, Serialize};

/// Static description of a deployment: how many clusters, how many replicas
/// per cluster, and which region each cluster lives in.
///
/// The failure model follows the paper exactly: every cluster has the same
/// size `n`, at most `f = floor((n-1)/3)` replicas per cluster may be
/// Byzantine, and the system tolerates `f·z` failures in total (at most `f`
/// per cluster) — see Remark 2.1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of clusters `z` (one per region).
    pub clusters: usize,
    /// Replicas per cluster `n`; must satisfy `n > 3f`, i.e. `n >= 4`.
    pub replicas_per_cluster: usize,
    /// Region of each cluster; length must equal `clusters`.
    pub regions: Vec<Region>,
}

impl SystemConfig {
    /// Build a configuration placing clusters in the paper's region order
    /// (Oregon, Iowa, Montreal, Belgium, Taiwan, Sydney, then synthetic
    /// regions past six).
    pub fn geo(clusters: usize, replicas_per_cluster: usize) -> RdbResult<Self> {
        let regions = (0..clusters)
            .map(|i| {
                Region::PAPER_ORDER
                    .get(i)
                    .copied()
                    .unwrap_or(Region::Custom(i as u16))
            })
            .collect();
        let cfg = Self {
            clusters,
            replicas_per_cluster,
            regions,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Build a single-cluster configuration (the `z = 1` baseline of
    /// Figure 10) in Oregon.
    pub fn single_cluster(replicas: usize) -> RdbResult<Self> {
        Self::geo(1, replicas)
    }

    /// Validate the `n > 3f` requirement and the region list.
    pub fn validate(&self) -> RdbResult<()> {
        if self.clusters == 0 {
            return Err(RdbError::Config("need at least one cluster".into()));
        }
        if self.replicas_per_cluster < 4 {
            return Err(RdbError::Config(format!(
                "n > 3f requires n >= 4 replicas per cluster, got {}",
                self.replicas_per_cluster
            )));
        }
        if self.regions.len() != self.clusters {
            return Err(RdbError::Config(format!(
                "{} regions given for {} clusters",
                self.regions.len(),
                self.clusters
            )));
        }
        Ok(())
    }

    /// `z`, the number of clusters.
    #[inline]
    pub fn z(&self) -> usize {
        self.clusters
    }

    /// `n`, the number of replicas in each cluster.
    #[inline]
    pub fn n(&self) -> usize {
        self.replicas_per_cluster
    }

    /// `f`, the maximum number of Byzantine replicas tolerated per cluster:
    /// the largest `f` with `n > 3f`.
    #[inline]
    pub fn f(&self) -> usize {
        (self.replicas_per_cluster - 1) / 3
    }

    /// The PBFT-style strong quorum `n - f` used for prepare/commit
    /// certificates and DRVC agreement.
    #[inline]
    pub fn quorum(&self) -> usize {
        self.replicas_per_cluster - self.f()
    }

    /// The weak quorum `f + 1`: guarantees at least one non-faulty member.
    /// Used for the optimistic global sharing fanout and client reply
    /// acceptance.
    #[inline]
    pub fn weak_quorum(&self) -> usize {
        self.f() + 1
    }

    /// Total number of replicas `z * n`.
    #[inline]
    pub fn total_replicas(&self) -> usize {
        self.clusters * self.replicas_per_cluster
    }

    /// `F`, the failures tolerated when all `z * n` replicas form one
    /// group: the largest `F` with `z·n > 3F` (Remark 2.1 — the
    /// single-log protocols, and the pipeline checkpoint quorum).
    #[inline]
    pub fn global_f(&self) -> usize {
        (self.total_replicas() - 1) / 3
    }

    /// The strong quorum `z·n - F` over the whole deployment.
    #[inline]
    pub fn global_quorum(&self) -> usize {
        self.total_replicas() - self.global_f()
    }

    /// Region of a cluster.
    #[inline]
    pub fn region_of(&self, cluster: ClusterId) -> Region {
        self.regions[cluster.as_usize()]
    }

    /// Iterate over all cluster ids.
    pub fn cluster_ids(&self) -> impl Iterator<Item = ClusterId> + '_ {
        (0..self.clusters as u16).map(ClusterId)
    }

    /// Iterate over all replica ids of one cluster.
    pub fn replicas_of(&self, cluster: ClusterId) -> impl Iterator<Item = ReplicaId> + '_ {
        let n = self.replicas_per_cluster as u16;
        (0..n).map(move |i| ReplicaId { cluster, index: i })
    }

    /// Iterate over every replica id in the system, cluster-major.
    pub fn all_replicas(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        self.cluster_ids()
            .flat_map(move |c| self.replicas_of(c).collect::<Vec<_>>())
    }

    /// The primary of a cluster for local PBFT view `v`: round-robin over
    /// the replica indices, as in PBFT's `p = v mod n`.
    #[inline]
    pub fn primary_of(&self, cluster: ClusterId, view: u64) -> ReplicaId {
        ReplicaId {
            cluster,
            index: (view % self.replicas_per_cluster as u64) as u16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_arithmetic_matches_paper() {
        // Example from Remark 2.1: n = 13 => f = 4.
        let cfg = SystemConfig::geo(7, 13).unwrap();
        assert_eq!(cfg.f(), 4);
        assert_eq!(cfg.quorum(), 9);
        assert_eq!(cfg.weak_quorum(), 5);
        assert_eq!(cfg.total_replicas(), 91);
        // GeoBFT tolerates f*z = 28 failures in total per the remark.
        assert_eq!(cfg.f() * cfg.z(), 28);
    }

    #[test]
    fn f_is_largest_with_n_gt_3f() {
        for n in 4..=40 {
            let cfg = SystemConfig::geo(2, n).unwrap();
            let f = cfg.f();
            assert!(n > 3 * f, "n={n} f={f}");
            assert!(n <= 3 * (f + 1), "f not maximal for n={n}");
        }
    }

    #[test]
    fn rejects_too_small_clusters() {
        assert!(SystemConfig::geo(2, 3).is_err());
        assert!(SystemConfig::geo(0, 4).is_err());
    }

    #[test]
    fn regions_follow_paper_order_then_custom() {
        let cfg = SystemConfig::geo(8, 4).unwrap();
        assert_eq!(cfg.region_of(ClusterId(0)), Region::Oregon);
        assert_eq!(cfg.region_of(ClusterId(5)), Region::Sydney);
        assert_eq!(cfg.region_of(ClusterId(6)), Region::Custom(6));
    }

    #[test]
    fn primary_rotates_round_robin() {
        let cfg = SystemConfig::geo(2, 4).unwrap();
        let c = ClusterId(1);
        assert_eq!(cfg.primary_of(c, 0).index, 0);
        assert_eq!(cfg.primary_of(c, 5).index, 1);
        assert_eq!(cfg.primary_of(c, 5).cluster, c);
    }

    #[test]
    fn replica_iteration_is_cluster_major() {
        let cfg = SystemConfig::geo(2, 4).unwrap();
        let all: Vec<ReplicaId> = cfg.all_replicas().collect();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], ReplicaId::new(0, 0));
        assert_eq!(all[4], ReplicaId::new(1, 0));
    }
}
