//! # rdb-common
//!
//! Foundation types shared by every crate in the ResilientDB/GeoBFT
//! reproduction: node identifiers, the virtual-time representation used by
//! the discrete-event simulator, the system configuration (`z` clusters of
//! `n` replicas, at most `f` Byzantine per cluster, `n > 3f`), the paper's
//! six-region geography, and the wire-size model used to account for
//! network bandwidth.
//!
//! This crate has no dependencies on the rest of the workspace so that the
//! dependency graph stays a clean DAG:
//!
//! ```text
//! common <- crypto <- store <- consensus <- {workload, ledger} <- simnet <- core
//! ```

pub mod config;
pub mod error;
pub mod ids;
pub mod region;
pub mod time;
pub mod wire;

pub use config::SystemConfig;
pub use error::{RdbError, RdbResult};
pub use ids::{ClientId, ClusterId, NodeId, ReplicaId};
pub use region::Region;
pub use time::{SimDuration, SimTime};
