//! Socket-backed transport: TCP or Unix-domain links carrying the
//! length-prefixed frames of `rdb_consensus::codec`.
//!
//! Where [`crate::transport::InProcTransport`] moves [`Envelope`]s over
//! crossbeam channels, this transport serializes them: every registered
//! node gets a loopback listener, and each `from -> to` link lazily
//! opens one outbound connection on first send. A deployment can
//! therefore span OS processes — peers in another process are wired in
//! with [`SocketTransport::advertise`] and a shared handshake epoch —
//! while the default single-process loopback keeps the whole fabric
//! testable in one test binary.
//!
//! # Handshake
//!
//! On connect both sides exchange `MAGIC ‖ VERSION ‖ node-id ‖ epoch`
//! (20 bytes, node id per [`rdb_consensus::codec::NODE_ID_BYTES`]). The
//! connector verifies the listener is the node it dialed; both verify
//! the epoch — a nonce shared by every transport of one deployment
//! incarnation — so a socket held open by a *previous* incarnation (or
//! a stale reconnecting peer) is refused instead of injecting old
//! traffic into a new run.
//!
//! # Reconnect
//!
//! A failed connect or write tears the link down and backs off
//! exponentially ([`INITIAL_BACKOFF`] doubling to [`MAX_BACKOFF`]);
//! messages sent while a link is down are dropped. That is the same
//! lossy-network contract BFT already assumes — client retry and
//! protocol timers recover, exactly as they do for shed traffic — so no
//! send-side queue can grow without bound. Successful re-establishment
//! after a drop increments the per-link reconnect counter in
//! [`Metrics`].
//!
//! # Backpressure
//!
//! A reader thread delivers decoded frames into the same bounded
//! input-stage inboxes the in-process transport uses: droppable
//! traffic is shed at the bound, and a non-droppable `Request` *blocks
//! the reader*. Frames behind it then queue in the kernel socket
//! buffer until the sender's `write` blocks — admission control
//! propagates to the submitting client through TCP flow control rather
//! than a parked thread, coarser than in-process blocking but the same
//! end state (see the decision table in `docs/ARCHITECTURE.md`).

use crate::metrics::Metrics;
use crate::queue::{send_with_policy, QueuePolicy, SendOutcome};
use crate::transport::{Envelope, Transport, TransportHandle};
use crossbeam::channel::{bounded, unbounded, Sender};
use parking_lot::Mutex;
use rdb_common::ids::NodeId;
use rdb_consensus::codec::{self, WireCodec, MAX_FRAME, NODE_ID_BYTES};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Handshake magic.
const MAGIC: [u8; 4] = *b"RDBW";
/// Wire protocol version (bumped on any frame-layout change).
const VERSION: u8 = 1;
/// Handshake length: magic + version + node id + epoch.
const HANDSHAKE_BYTES: usize = 4 + 1 + NODE_ID_BYTES + 8;

/// First retry delay after a link goes down.
pub const INITIAL_BACKOFF: Duration = Duration::from_millis(10);
/// Backoff ceiling.
pub const MAX_BACKOFF: Duration = Duration::from_millis(500);

/// Poll interval of the non-blocking accept loops and the read-timeout
/// of reader threads: the worst-case latency for noticing shutdown.
const POLL: Duration = Duration::from_millis(5);

static EPOCH_COUNTER: AtomicU64 = AtomicU64::new(1);

/// A process-unique deployment epoch: listeners refuse peers from a
/// different one. Multi-process deployments pass one shared value to
/// [`SocketTransport::with_epoch`] instead.
pub fn fresh_epoch() -> u64 {
    ((std::process::id() as u64) << 32) | EPOCH_COUNTER.fetch_add(1, Ordering::Relaxed)
}

/// Which socket family carries the frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketKind {
    /// TCP over 127.0.0.1 (ephemeral ports).
    Tcp,
    /// Unix-domain sockets in the system temp directory (unix only).
    Uds,
}

/// Where a peer listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireAddr {
    /// A TCP address.
    Tcp(SocketAddr),
    /// A Unix-domain socket path.
    Uds(PathBuf),
}

enum SockStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl SockStream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            SockStream::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            SockStream::Uds(s) => s.set_read_timeout(dur),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            SockStream::Tcp(s) => s.set_nonblocking(nb),
            #[cfg(unix)]
            SockStream::Uds(s) => s.set_nonblocking(nb),
        }
    }
}

impl Read for SockStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            SockStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            SockStream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for SockStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            SockStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            SockStream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            SockStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            SockStream::Uds(s) => s.flush(),
        }
    }
}

enum SockListener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(UnixListener),
}

impl SockListener {
    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            SockListener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            SockListener::Uds(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> std::io::Result<SockStream> {
        match self {
            SockListener::Tcp(l) => {
                let (s, _) = l.accept()?;
                let _ = s.set_nodelay(true);
                Ok(SockStream::Tcp(s))
            }
            #[cfg(unix)]
            SockListener::Uds(l) => {
                let (s, _) = l.accept()?;
                Ok(SockStream::Uds(s))
            }
        }
    }
}

/// One registered node's local inbox.
struct SockInbox {
    tx: Sender<Envelope>,
    policy: Option<QueuePolicy>,
}

/// Outbound state of one `from -> to` link. Per-link mutex: a write
/// parked on a full kernel buffer stalls only this link, never the
/// whole transport.
struct LinkState {
    stream: Option<SockStream>,
    codec: WireCodec,
    backoff: Duration,
    down_until: Option<Instant>,
    /// Successful connections so far (≥ 1 ⇒ the next success is a
    /// *re*connect).
    generation: u64,
}

impl LinkState {
    fn new() -> LinkState {
        LinkState {
            stream: None,
            codec: WireCodec::new(),
            backoff: INITIAL_BACKOFF,
            down_until: None,
            generation: 0,
        }
    }

    fn mark_down(&mut self, now: Instant) {
        self.stream = None;
        self.down_until = Some(now + self.backoff);
        self.backoff = (self.backoff * 2).min(MAX_BACKOFF);
    }
}

/// Link table: each directed link is individually locked (see
/// [`LinkState`]), so the outer map lock is only held to look one up.
type LinkTable = Mutex<HashMap<(NodeId, NodeId), Arc<Mutex<LinkState>>>>;

struct SockShared {
    kind: SocketKind,
    epoch: u64,
    inboxes: Mutex<HashMap<NodeId, SockInbox>>,
    addrs: Mutex<HashMap<NodeId, WireAddr>>,
    links: LinkTable,
    partitions: crate::transport::PartitionSet,
    running: AtomicBool,
    threads: Mutex<Vec<JoinHandle<()>>>,
    uds_paths: Mutex<Vec<PathBuf>>,
    uds_seq: AtomicU64,
    metrics: Metrics,
}

/// The socket transport. Cloneable handle, like
/// [`crate::transport::InProcTransport`].
#[derive(Clone)]
pub struct SocketTransport {
    shared: Arc<SockShared>,
}

impl SocketTransport {
    /// A transport with a fresh [`fresh_epoch`] (single-process
    /// deployments; every transport clone shares it).
    pub fn new(kind: SocketKind, metrics: Option<Metrics>) -> SocketTransport {
        SocketTransport::with_epoch(kind, fresh_epoch(), metrics)
    }

    /// A transport with an explicit handshake epoch — every process of
    /// one multi-process deployment must pass the same value.
    pub fn with_epoch(kind: SocketKind, epoch: u64, metrics: Option<Metrics>) -> SocketTransport {
        #[cfg(not(unix))]
        assert!(
            kind != SocketKind::Uds,
            "unix-domain sockets are unavailable on this platform"
        );
        SocketTransport {
            shared: Arc::new(SockShared {
                kind,
                epoch,
                inboxes: Mutex::new(HashMap::new()),
                addrs: Mutex::new(HashMap::new()),
                links: Mutex::new(HashMap::new()),
                partitions: crate::transport::PartitionSet::new(),
                running: AtomicBool::new(true),
                threads: Mutex::new(Vec::new()),
                uds_paths: Mutex::new(Vec::new()),
                uds_seq: AtomicU64::new(0),
                metrics: metrics.unwrap_or_default(),
            }),
        }
    }

    /// The deployment epoch this transport handshakes with.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch
    }

    /// Register a node with an unbounded inbox (clients, tests). Binds
    /// a listener and starts accepting.
    pub fn register(&self, node: NodeId) -> TransportHandle {
        self.register_inner(node, None)
    }

    /// Register a node whose inbox is the bounded input-stage queue of
    /// its pipeline (same policy semantics as
    /// [`crate::transport::InProcTransport::register_bounded`]).
    pub fn register_bounded(&self, node: NodeId, policy: QueuePolicy) -> TransportHandle {
        self.register_inner(node, Some(policy))
    }

    fn register_inner(&self, node: NodeId, policy: Option<QueuePolicy>) -> TransportHandle {
        let (tx, rx) = match policy {
            Some(p) => bounded(p.capacity.max(1)),
            None => unbounded(),
        };
        self.shared
            .inboxes
            .lock()
            .insert(node, SockInbox { tx, policy });
        let needs_listener = !self.shared.addrs.lock().contains_key(&node);
        if needs_listener {
            self.spawn_listener(node);
        }
        TransportHandle::from_parts(node, rx, Transport::Socket(self.clone()))
    }

    /// Record where a *remote* peer (typically in another process)
    /// listens, so local sends can reach it. Local registrations
    /// advertise themselves automatically.
    pub fn advertise(&self, node: NodeId, addr: WireAddr) {
        self.shared.addrs.lock().insert(node, addr);
    }

    /// Where `node` listens (to hand to another process's
    /// [`SocketTransport::advertise`]).
    pub fn listen_addr(&self, node: NodeId) -> Option<WireAddr> {
        self.shared.addrs.lock().get(&node).cloned()
    }

    /// Schedule a partition (same contract as the in-process
    /// transport: crossing messages are dropped at send time).
    pub fn partition(
        &self,
        side_a: Vec<NodeId>,
        side_b: Vec<NodeId>,
        from: Duration,
        until: Duration,
    ) {
        self.shared.partitions.add(side_a, side_b, from, until);
    }

    /// Send an envelope over the link's connection, opening or
    /// re-opening it as needed. Down links drop (lossy network).
    pub fn send(&self, env: Envelope) {
        if self.shared.partitions.is_cut(env.from, env.to) {
            return; // dropped at the cut, like a crashed link
        }
        self.send_frame(env);
    }

    /// Non-blocking contract of
    /// [`crate::transport::InProcTransport::try_send`]: on sockets the
    /// kernel buffer plays the delay wheel's role — a sent frame is "in
    /// the network" — so the message is always accounted for.
    pub fn try_send(&self, env: Envelope) -> bool {
        self.send(env);
        true
    }

    /// Remove a node's inbox (crash tests): frames for it still arrive
    /// at its listener but are dropped at delivery.
    pub fn disconnect(&self, node: NodeId) {
        self.shared.inboxes.lock().remove(&node);
    }

    /// Stop accept/reader threads, close outbound connections and
    /// remove any Unix socket files. Blocked reader deliveries release
    /// when the replica pipelines drop their inbox receivers, so
    /// deployments stop replicas before the transport (see
    /// `Fabric::stop_all`).
    pub fn shutdown(&self) {
        self.shared.running.store(false, Ordering::SeqCst);
        // Drop outbound streams so peer readers see EOF promptly.
        for (_, link) in self.shared.links.lock().iter() {
            link.lock().stream = None;
        }
        let threads: Vec<_> = self.shared.threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
        for path in self.shared.uds_paths.lock().drain(..) {
            let _ = std::fs::remove_file(path);
        }
    }

    // ------------------------------------------------------------------
    // Outbound path
    // ------------------------------------------------------------------

    fn link(&self, from: NodeId, to: NodeId) -> Arc<Mutex<LinkState>> {
        self.shared
            .links
            .lock()
            .entry((from, to))
            .or_insert_with(|| Arc::new(Mutex::new(LinkState::new())))
            .clone()
    }

    fn send_frame(&self, env: Envelope) {
        let link = self.link(env.from, env.to);
        let mut l = link.lock();
        let now = Instant::now();
        if let Some(until) = l.down_until {
            if now < until {
                return; // link down: drop, reconnect after backoff
            }
        }
        if l.stream.is_none() {
            match self.connect(env.from, env.to) {
                Ok(stream) => {
                    if l.generation > 0 {
                        self.shared.metrics.net_reconnect(env.from, env.to);
                    }
                    l.generation += 1;
                    l.stream = Some(stream);
                    l.backoff = INITIAL_BACKOFF;
                    l.down_until = None;
                }
                Err(_) => {
                    l.mark_down(now);
                    return;
                }
            }
        }
        let LinkState { stream, codec, .. } = &mut *l;
        let frame = codec.encode_frame(env.from, env.to, &env.msg);
        let sent = frame.len() as u64;
        match stream.as_mut().expect("connected above").write_all(frame) {
            Ok(()) => self.shared.metrics.net_sent(env.from, env.to, sent),
            Err(_) => l.mark_down(now),
        }
    }

    /// Dial `to` and run the connector side of the handshake.
    fn connect(&self, from: NodeId, to: NodeId) -> std::io::Result<SockStream> {
        let addr = self
            .shared
            .addrs
            .lock()
            .get(&to)
            .cloned()
            .ok_or_else(|| std::io::Error::new(ErrorKind::NotFound, "peer not registered"))?;
        let stream = match addr {
            WireAddr::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                s.set_nodelay(true)?;
                SockStream::Tcp(s)
            }
            #[cfg(unix)]
            WireAddr::Uds(p) => SockStream::Uds(UnixStream::connect(p)?),
            #[cfg(not(unix))]
            WireAddr::Uds(_) => {
                return Err(std::io::Error::new(
                    ErrorKind::Unsupported,
                    "unix-domain sockets unavailable",
                ))
            }
        };
        let mut stream = stream;
        stream.set_read_timeout(Some(Duration::from_secs(2)))?;
        let mut hello = Vec::with_capacity(HANDSHAKE_BYTES);
        hello.extend_from_slice(&MAGIC);
        hello.push(VERSION);
        codec::encode_node_id(&mut hello, from);
        hello.extend_from_slice(&self.shared.epoch.to_le_bytes());
        stream.write_all(&hello)?;
        let peer = read_handshake(&mut stream, self.shared.epoch)?;
        if peer != to {
            return Err(std::io::Error::new(
                ErrorKind::InvalidData,
                "handshake peer is not the node dialed",
            ));
        }
        Ok(stream)
    }

    // ------------------------------------------------------------------
    // Inbound path
    // ------------------------------------------------------------------

    fn spawn_listener(&self, node: NodeId) {
        let (listener, addr) = match self.shared.kind {
            SocketKind::Tcp => {
                let l = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
                let addr = WireAddr::Tcp(l.local_addr().expect("listener addr"));
                (SockListener::Tcp(l), addr)
            }
            #[cfg(unix)]
            SocketKind::Uds => {
                let path = std::env::temp_dir().join(format!(
                    "rdb-{}-{:x}-{}.sock",
                    std::process::id(),
                    self.shared.epoch,
                    self.shared.uds_seq.fetch_add(1, Ordering::Relaxed),
                ));
                let _ = std::fs::remove_file(&path);
                let l = UnixListener::bind(&path).expect("bind unix listener");
                self.shared.uds_paths.lock().push(path.clone());
                (SockListener::Uds(l), WireAddr::Uds(path))
            }
            #[cfg(not(unix))]
            SocketKind::Uds => unreachable!("rejected in the constructor"),
        };
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        self.shared.addrs.lock().insert(node, addr);
        let me = self.clone();
        let handle = std::thread::Builder::new()
            .name(format!("rdb-accept-{node:?}"))
            .spawn(move || me.accept_loop(listener, node))
            .expect("spawn accept loop");
        self.shared.threads.lock().push(handle);
    }

    fn accept_loop(&self, listener: SockListener, node: NodeId) {
        while self.shared.running.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok(stream) => {
                    let me = self.clone();
                    let handle = std::thread::Builder::new()
                        .name(format!("rdb-read-{node:?}"))
                        .spawn(move || me.serve_conn(stream, node))
                        .expect("spawn reader");
                    self.shared.threads.lock().push(handle);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    std::thread::sleep(POLL);
                }
                Err(_) => std::thread::sleep(POLL),
            }
        }
    }

    /// One inbound connection: handshake, then decode frames until EOF,
    /// error, or shutdown. A corrupt frame closes the connection — the
    /// peer reconnects with fresh framing, so one bad frame can never
    /// desync a long-lived stream.
    fn serve_conn(&self, mut stream: SockStream, node: NodeId) {
        if stream.set_nonblocking(false).is_err() || stream.set_read_timeout(Some(POLL)).is_err() {
            return;
        }
        let Ok(_peer) = read_handshake(&mut stream, self.shared.epoch) else {
            return; // wrong magic/version/epoch: refuse stale peers
        };
        let mut reply = Vec::with_capacity(HANDSHAKE_BYTES);
        reply.extend_from_slice(&MAGIC);
        reply.push(VERSION);
        codec::encode_node_id(&mut reply, node);
        reply.extend_from_slice(&self.shared.epoch.to_le_bytes());
        if stream.write_all(&reply).is_err() {
            return;
        }
        let mut len_buf = [0u8; 4];
        let mut body = Vec::new();
        loop {
            match self.read_full(&mut stream, &mut len_buf) {
                Ok(true) => {}
                _ => return,
            }
            let len = u32::from_le_bytes(len_buf) as usize;
            if !(codec::FRAME_OVERHEAD - 4..=MAX_FRAME).contains(&len) {
                return; // desynced or hostile length: drop connection
            }
            body.resize(len, 0);
            match self.read_full(&mut stream, &mut body) {
                Ok(true) => {}
                _ => return,
            }
            match codec::decode_frame_body(&body) {
                Ok((from, to, msg)) => {
                    self.shared.metrics.net_received(from, to, (4 + len) as u64);
                    self.deliver(Envelope { from, to, msg });
                }
                Err(_) => return,
            }
        }
    }

    /// Fill `buf` completely, retrying across read timeouts while the
    /// transport runs. `Ok(false)` = clean stop (EOF or shutdown).
    fn read_full(&self, stream: &mut SockStream, buf: &mut [u8]) -> std::io::Result<bool> {
        let mut pos = 0;
        while pos < buf.len() {
            if !self.shared.running.load(Ordering::SeqCst) {
                return Ok(false);
            }
            match stream.read(&mut buf[pos..]) {
                Ok(0) => return Ok(false),
                Ok(n) => pos += n,
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut
                        || e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Deliver into the local inbox with the same input-stage policy
    /// semantics as the in-process transport.
    fn deliver(&self, env: Envelope) {
        let (tx, policy) = {
            let inboxes = self.shared.inboxes.lock();
            match inboxes.get(&env.to) {
                Some(e) => (e.tx.clone(), e.policy),
                None => return, // disconnected (crash tests): drop
            }
        };
        let to_replica = matches!(env.to, NodeId::Replica(_));
        let metrics = &self.shared.metrics;
        let stage = rdb_consensus::stage::Stage::Input;
        match policy {
            None => {
                if to_replica {
                    metrics.stage_enqueued(stage);
                }
                let _ = tx.send(env);
            }
            Some(p) => {
                let droppable = env.msg.droppable();
                if send_with_policy(&tx, env, p, droppable, metrics, stage) == SendOutcome::Sent
                    && to_replica
                {
                    metrics.stage_enqueued(stage);
                }
            }
        }
    }
}

/// Read and validate one handshake, returning the peer's node id.
fn read_handshake(stream: &mut SockStream, epoch: u64) -> std::io::Result<NodeId> {
    let mut buf = [0u8; HANDSHAKE_BYTES];
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut pos = 0;
    while pos < buf.len() {
        match stream.read(&mut buf[pos..]) {
            Ok(0) => return Err(ErrorKind::UnexpectedEof.into()),
            Ok(n) => pos += n,
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted =>
            {
                if Instant::now() >= deadline {
                    return Err(ErrorKind::TimedOut.into());
                }
            }
            Err(e) => return Err(e),
        }
    }
    if buf[..4] != MAGIC || buf[4] != VERSION {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            "bad handshake magic/version",
        ));
    }
    let mut node = [0u8; NODE_ID_BYTES];
    node.copy_from_slice(&buf[5..5 + NODE_ID_BYTES]);
    let node = codec::decode_node_id(&node)
        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
    let peer_epoch = u64::from_le_bytes(buf[5 + NODE_ID_BYTES..].try_into().expect("8 bytes"));
    if peer_epoch != epoch {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            "handshake epoch mismatch (stale peer)",
        ));
    }
    Ok(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::ids::ReplicaId;
    use rdb_consensus::messages::Message;

    fn kinds() -> Vec<SocketKind> {
        let mut k = vec![SocketKind::Tcp];
        if cfg!(unix) {
            k.push(SocketKind::Uds);
        }
        k
    }

    #[test]
    fn loopback_delivery_over_both_kinds() {
        for kind in kinds() {
            let t = SocketTransport::new(kind, None);
            let a: NodeId = ReplicaId::new(0, 0).into();
            let b: NodeId = ReplicaId::new(0, 1).into();
            let ha = t.register(a);
            let hb = t.register(b);
            ha.send(b, Message::Noop);
            let env = hb.inbox.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(env.from, a);
            assert!(matches!(env.msg, Message::Noop));
            hb.send(a, Message::Noop);
            assert!(ha.inbox.recv_timeout(Duration::from_secs(5)).is_ok());
            t.shutdown();
        }
    }

    #[test]
    fn frames_on_the_socket_match_the_wire_model() {
        let t = SocketTransport::new(SocketKind::Tcp, None);
        let a: NodeId = ReplicaId::new(0, 0).into();
        let b: NodeId = ReplicaId::new(0, 1).into();
        let ha = t.register(a);
        let hb = t.register(b);
        let msg = Message::Prepare {
            scope: rdb_consensus::Scope::Global,
            view: 1,
            seq: 2,
            digest: rdb_crypto::digest::Digest::ZERO,
        };
        let expected = rdb_consensus::codec::frame_size(&msg);
        assert_eq!(
            expected,
            rdb_common::wire::control_bytes() + rdb_consensus::codec::FRAME_OVERHEAD
        );
        ha.send(b, msg);
        let env = hb.inbox.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(env.msg, Message::Prepare { .. }));
        let snap = t.shared.metrics.net_snapshot();
        let link = snap
            .links
            .iter()
            .find(|l| l.from == a && l.to == b)
            .expect("link counters");
        assert_eq!(link.bytes_out, expected as u64);
        assert_eq!(link.bytes_in, expected as u64);
        assert_eq!(link.frames_out, 1);
        assert_eq!(link.frames_in, 1);
        t.shutdown();
    }

    #[test]
    fn stale_epoch_peers_are_refused() {
        let t1 = SocketTransport::with_epoch(SocketKind::Tcp, 7, None);
        let t2 = SocketTransport::with_epoch(SocketKind::Tcp, 8, None);
        let a: NodeId = ReplicaId::new(0, 0).into();
        let b: NodeId = ReplicaId::new(0, 1).into();
        let _ha = t1.register(a);
        let hb = t2.register(b);
        // t1 learns where b listens, but the epochs differ.
        t1.advertise(b, t2.listen_addr(b).unwrap());
        t1.send(Envelope {
            from: a,
            to: b,
            msg: Message::Noop,
        });
        assert!(
            hb.inbox.recv_timeout(Duration::from_millis(300)).is_err(),
            "stale-epoch traffic must be refused"
        );
        t1.shutdown();
        t2.shutdown();
    }

    #[test]
    fn reconnect_after_peer_restart_counts() {
        let metrics = Metrics::default();
        let t = SocketTransport::new(SocketKind::Tcp, Some(metrics.clone()));
        let a: NodeId = ReplicaId::new(0, 0).into();
        let b: NodeId = ReplicaId::new(0, 1).into();
        let ha = t.register(a);
        let hb = t.register(b);
        ha.send(b, Message::Noop);
        assert!(hb.inbox.recv_timeout(Duration::from_secs(5)).is_ok());
        // Kill the outbound connection under the sender's feet.
        t.shared.links.lock().get(&(a, b)).unwrap().lock().stream = None;
        // First send re-dials; the message must arrive and the
        // reconnect counter must tick.
        ha.send(b, Message::Noop);
        assert!(hb.inbox.recv_timeout(Duration::from_secs(5)).is_ok());
        let snap = metrics.net_snapshot();
        let link = snap
            .links
            .iter()
            .find(|l| l.from == a && l.to == b)
            .unwrap();
        assert_eq!(link.reconnects, 1);
        t.shutdown();
    }

    #[test]
    fn down_links_drop_and_back_off() {
        let t = SocketTransport::new(SocketKind::Tcp, None);
        let a: NodeId = ReplicaId::new(0, 0).into();
        let b: NodeId = ReplicaId::new(0, 1).into();
        let _ha = t.register(a);
        // b never registers: connects fail, the link backs off, sends
        // drop without blocking or panicking.
        for _ in 0..5 {
            t.send(Envelope {
                from: a,
                to: b,
                msg: Message::Noop,
            });
        }
        let link = t.shared.links.lock().get(&(a, b)).unwrap().clone();
        let l = link.lock();
        assert!(l.down_until.is_some());
        assert!(l.backoff > INITIAL_BACKOFF);
        drop(l);
        t.shutdown();
    }

    #[test]
    fn partitions_cut_socket_links_too() {
        let t = SocketTransport::new(SocketKind::Tcp, None);
        let a: NodeId = ReplicaId::new(0, 0).into();
        let b: NodeId = ReplicaId::new(0, 1).into();
        let ha = t.register(a);
        let hb = t.register(b);
        t.partition(vec![a], vec![b], Duration::ZERO, Duration::from_millis(100));
        ha.send(b, Message::Noop);
        assert!(hb.inbox.recv_timeout(Duration::from_millis(50)).is_err());
        std::thread::sleep(Duration::from_millis(80));
        ha.send(b, Message::Noop);
        assert!(hb.inbox.recv_timeout(Duration::from_secs(5)).is_ok());
        t.shutdown();
    }
}
