//! Full in-process deployments: build, run, measure, audit.

use crate::metrics::{Metrics, NetSnapshot, StageSnapshot, StorageSnapshot};
use crate::node::ReplicaRuntime;
use crate::pipeline::{CheckpointConfig, CheckpointReport, PipelineConfig, VerifyCtx};
use crate::queue::{QueuePolicy, StageQueues};
use crate::service::Fabric;
use crate::socket::{SocketKind, SocketTransport};
use crate::storage::{self, Manifest, SharedBackend, StorageMode};
use crate::transport::{DelayFn, InProcTransport, Transport};
use rdb_common::config::SystemConfig;
use rdb_common::ids::{NodeId, ReplicaId};
use rdb_common::time::SimDuration;
use rdb_consensus::adversary::AdversarySpec;
use rdb_consensus::config::{ExecMode, ProtocolConfig, ProtocolKind};
use rdb_consensus::crypto_ctx::CryptoCtx;
use rdb_consensus::registry;
use rdb_crypto::sign::KeyStore;
use rdb_ledger::Ledger;
use rdb_store::KvStore;
use rdb_workload::ycsb::YcsbConfig;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Which transport carries the deployment's messages.
///
/// `InProcess` (the default) moves [`crate::transport::Envelope`]s over
/// crossbeam channels — zero serialization, and what every figure
/// reproduction uses, so repro output stays byte-identical. The socket
/// modes serialize every message through
/// [`rdb_consensus::codec::WireCodec`] and carry it over real loopback
/// connections (see `crate::socket`): same protocols, same ledgers, real
/// bytes on a real wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportMode {
    /// In-process channel mesh (default; supports injected link delays).
    #[default]
    InProcess,
    /// TCP over 127.0.0.1.
    Tcp,
    /// Unix-domain sockets (unix only).
    Uds,
}

/// Builder for an in-process ResilientDB deployment.
pub struct DeploymentBuilder {
    kind: ProtocolKind,
    transport_mode: TransportMode,
    z: usize,
    n: usize,
    batch_size: usize,
    clients: usize,
    duration: Duration,
    check_sigs: bool,
    records: u64,
    seed: u64,
    delay: Option<DelayFn>,
    crash_after: Vec<(ReplicaId, Duration)>,
    partitions: Vec<(Vec<ReplicaId>, Vec<ReplicaId>, Duration, Duration)>,
    adversaries: Vec<(ReplicaId, AdversarySpec)>,
    progress_timeout: SimDuration,
    client_retry: SimDuration,
    remote_timeout: SimDuration,
    pipeline: PipelineConfig,
    exec_lanes: usize,
    input_queue: Option<QueuePolicy>,
    work_queue: Option<QueuePolicy>,
    exec_queue: Option<QueuePolicy>,
    checkpoint_queue: Option<QueuePolicy>,
    output_queue: Option<QueuePolicy>,
    checkpoint: CheckpointConfig,
    storage: StorageMode,
}

impl DeploymentBuilder {
    /// A deployment of `z` clusters x `n` replicas running `kind`.
    pub fn new(kind: ProtocolKind, z: usize, n: usize) -> DeploymentBuilder {
        DeploymentBuilder {
            kind,
            transport_mode: TransportMode::InProcess,
            z,
            n,
            batch_size: 10,
            clients: z, // one client per cluster by default
            duration: Duration::from_millis(500),
            check_sigs: true,
            records: 10_000,
            seed: 42,
            delay: None,
            crash_after: Vec::new(),
            partitions: Vec::new(),
            adversaries: Vec::new(),
            progress_timeout: SimDuration::from_millis(2_000),
            client_retry: SimDuration::from_millis(4_000),
            remote_timeout: SimDuration::from_millis(1_500),
            pipeline: PipelineConfig::default(),
            exec_lanes: 1,
            input_queue: None,
            work_queue: None,
            exec_queue: None,
            checkpoint_queue: None,
            output_queue: None,
            checkpoint: CheckpointConfig::default(),
            storage: StorageMode::Memory,
        }
    }

    /// Where replica state lives ([`StorageMode::Memory`] by default —
    /// the pre-durability behavior, and what every figure reproduction
    /// uses). [`StorageMode::Durable`] roots one log-structured engine
    /// per replica under the given directory: the execution stage
    /// WAL-logs every applied decision, the checkpoint stage persists
    /// certified checkpoints, and a directory holding a previous run's
    /// state is *recovered from* (table, ledger) instead of re-preloaded.
    /// See [`crate::Fabric::restart_from`] for the full restart path.
    ///
    /// Durable mode requires the sequential executor —
    /// [`DeploymentBuilder::start`] panics if combined with
    /// [`DeploymentBuilder::exec_lanes`] `> 1`.
    pub fn storage(mut self, mode: StorageMode) -> Self {
        self.storage = mode;
        self
    }

    /// Enable the checkpoint stage: certify the execution stage's table
    /// digest against peers and compact the ledger prefix every `k`
    /// decisions (`0`, the default, disables the stage — ledgers stay
    /// full, matching pre-checkpoint reproductions byte for byte).
    pub fn checkpoint_interval(mut self, k: u64) -> Self {
        self.checkpoint.interval = k;
        self
    }

    /// Retain a full store snapshot of the last stable checkpoint on
    /// every replica (the state a restarting replica recovers from; see
    /// `rdb_ledger::recover_from_checkpoint`). Costs one table clone per
    /// checkpoint.
    pub fn checkpoint_snapshots(mut self, retain: bool) -> Self {
        self.checkpoint.retain_snapshot = retain;
        self
    }

    /// Fault injection: slow every checkpoint snapshot by `d` inside the
    /// checkpoint thread. With the Block-policy checkpoint queue this
    /// throttles execution — the designed overload behavior the
    /// backpressure tests assert.
    pub fn checkpoint_fault_delay(mut self, d: Duration) -> Self {
        self.checkpoint.fault_delay = d;
        self
    }

    /// Override the execute → checkpoint queue (Block by default —
    /// checkpoints are not retransmittable and must never shed; the
    /// bound is what throttles execution when checkpointing lags).
    pub fn checkpoint_queue(mut self, p: QueuePolicy) -> Self {
        self.checkpoint_queue = Some(p);
        self
    }

    /// Verifier-stage fan-out per replica (paper Figure 9). Unset, the
    /// pool is sized to the host: `(cores / 4).clamp(1, 4)` — see
    /// [`PipelineConfig::default`].
    pub fn verifier_threads(mut self, n: usize) -> Self {
        self.pipeline = PipelineConfig::with_verifiers(n);
        self
    }

    /// Key-sharded execution lanes per replica (default 1: the original
    /// sequential execute stage, and what every figure reproduction
    /// uses). With `n > 1` the execute stage becomes a lane pool — key
    /// `k` executes on lane `k % n`, decisions touching disjoint lanes
    /// run in parallel, and a commit-order retirement step (bounded by
    /// the exec queue's reorder window) keeps the ledger and audit
    /// byte-identical to sequential execution. Clamped to
    /// `1..=`[`rdb_store::MAX_LANES`].
    pub fn exec_lanes(mut self, n: usize) -> Self {
        self.exec_lanes = n.clamp(1, rdb_store::MAX_LANES);
        self
    }

    /// Override the input-stage queue (the replica inbox the transport
    /// delivers into). Unset, it is derived from batch size and verifier
    /// fan-out with policy [`crate::queue::Overload::Shed`] — see
    /// [`StageQueues::derive`]. Droppable consensus traffic is shed at
    /// the bound; client `Request`s always block their submitter.
    pub fn input_queue(mut self, p: QueuePolicy) -> Self {
        self.input_queue = Some(p);
        self
    }

    /// Override the verify → order work queue (derived, blocking by
    /// default; a full work queue parks the verifier pool).
    pub fn order_queue(mut self, p: QueuePolicy) -> Self {
        self.work_queue = Some(p);
        self
    }

    /// Override the order → execute decision queue (blocking by default;
    /// decisions are agreed state and are never shed).
    pub fn exec_queue(mut self, p: QueuePolicy) -> Self {
        self.exec_queue = Some(p);
        self
    }

    /// Override the order → output queue (blocking by default).
    pub fn output_queue(mut self, p: QueuePolicy) -> Self {
        self.output_queue = Some(p);
        self
    }

    /// Transactions per client batch.
    pub fn batch_size(mut self, b: usize) -> Self {
        self.batch_size = b;
        self
    }

    /// Number of closed-loop clients (spread round-robin over clusters).
    pub fn clients(mut self, c: usize) -> Self {
        self.clients = c;
        self
    }

    /// How long to run the workload.
    pub fn duration(mut self, d: Duration) -> Self {
        self.duration = d;
        self
    }

    /// Verify signatures for real (default) or skip (micro-benchmarks).
    pub fn check_sigs(mut self, check: bool) -> Self {
        self.check_sigs = check;
        self
    }

    /// Records preloaded into every replica's store.
    pub fn records(mut self, r: u64) -> Self {
        self.records = r;
        self
    }

    /// Deployment seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Inject per-link one-way delays (e.g. Table 1 emulation).
    /// In-process transport only — combining this with a socket
    /// [`TransportMode`] panics at [`DeploymentBuilder::start`].
    pub fn delay(mut self, f: DelayFn) -> Self {
        self.delay = Some(f);
        self
    }

    /// Select the transport ([`TransportMode::InProcess`] by default).
    /// Socket modes carry every message as length-prefixed frames over
    /// real loopback connections; the workload, protocols and committed
    /// ledgers are unchanged (see `tests/pipeline_equivalence.rs`).
    pub fn transport_mode(mut self, mode: TransportMode) -> Self {
        self.transport_mode = mode;
        self
    }

    /// Crash a replica after running for `after`.
    pub fn crash(mut self, replica: ReplicaId, after: Duration) -> Self {
        self.crash_after.push((replica, after));
        self
    }

    /// Cut the network between two replica groups from `from` until
    /// `until` (relative to deployment start), after which the partition
    /// heals. Client traffic is unaffected — only replica-to-replica
    /// links crossing the cut drop. Mirrors the simulator's
    /// `FaultSpec::partition`.
    pub fn partition(
        mut self,
        side_a: Vec<ReplicaId>,
        side_b: Vec<ReplicaId>,
        from: Duration,
        until: Duration,
    ) -> Self {
        self.partitions.push((side_a, side_b, from, until));
        self
    }

    /// Install Byzantine behaviour on `replica` (a protocol wrapper from
    /// [`rdb_consensus::adversary`], applied at build time — the same
    /// wrapper the simulator installs, so attacks replay identically in
    /// both runtimes).
    pub fn adversary(mut self, replica: ReplicaId, spec: AdversarySpec) -> Self {
        self.adversaries.push((replica, spec));
        self
    }

    /// Shorten protocol timeouts (failure tests).
    pub fn fast_timeouts(mut self) -> Self {
        self.progress_timeout = SimDuration::from_millis(300);
        self.client_retry = SimDuration::from_millis(500);
        self.remote_timeout = SimDuration::from_millis(250);
        self
    }

    /// Boot the deployment and return a live [`Fabric`] handle: replicas
    /// are up and serving, but no clients exist yet. Mint open-loop
    /// sessions with [`Fabric::session`], add closed-loop YCSB load with
    /// [`Fabric::spawn_ycsb_clients`], and collect the report with
    /// [`Fabric::shutdown`]. The builder's `clients` / `duration`
    /// settings only drive the [`DeploymentBuilder::run`] convenience
    /// wrapper — `start` ignores them.
    pub fn start(mut self) -> Fabric {
        // Queue defaults are derived from the *actual* batch size and
        // verifier fan-out of this deployment (not the builder defaults),
        // then per-stage overrides apply.
        let mut queues = StageQueues::derive(self.batch_size, self.pipeline.verifier_threads);
        if let Some(p) = self.input_queue {
            queues.input = p;
        }
        if let Some(p) = self.work_queue {
            queues.work = p;
        }
        if let Some(p) = self.exec_queue {
            queues.exec = p;
        }
        if let Some(p) = self.checkpoint_queue {
            queues.checkpoint = p;
        }
        if let Some(p) = self.output_queue {
            queues.output = p;
        }
        self.pipeline.queues = queues;
        self.pipeline.checkpoint = self.checkpoint;
        self.pipeline.exec_lanes = self.exec_lanes;

        let system = SystemConfig::geo(self.z, self.n).expect("valid system");
        let mut cfg = ProtocolConfig::new(system.clone());
        cfg.batch_size = self.batch_size;
        cfg.exec_mode = ExecMode::Real;
        cfg.progress_timeout = self.progress_timeout;
        cfg.client_retry = self.client_retry;
        cfg.remote_timeout = self.remote_timeout;

        let ycsb = YcsbConfig {
            record_count: self.records,
            batch_size: self.batch_size,
            ..YcsbConfig::default()
        };

        let metrics = Metrics::new();
        let transport = match self.transport_mode {
            TransportMode::InProcess => Transport::InProc(InProcTransport::with_metrics(
                self.delay.clone(),
                Some(metrics.clone()),
            )),
            mode => {
                assert!(
                    self.delay.is_none(),
                    "injected link delays require TransportMode::InProcess — \
                     socket links have real (loopback) latency instead"
                );
                let kind = match mode {
                    TransportMode::Tcp => SocketKind::Tcp,
                    TransportMode::Uds => SocketKind::Uds,
                    TransportMode::InProcess => unreachable!(),
                };
                Transport::Socket(SocketTransport::new(kind, Some(metrics.clone())))
            }
        };
        let ks = KeyStore::new(self.seed);

        // Durable mode: assert the sequential-executor invariant and pin
        // the deployment parameters to the data directory before any
        // engine opens (a restart reads them back via the manifest).
        let durable_root = match &self.storage {
            StorageMode::Memory => None,
            StorageMode::Durable(root) => Some(root.clone()),
        };
        if let Some(root) = &durable_root {
            assert_eq!(
                self.exec_lanes, 1,
                "durable storage requires the sequential executor (exec_lanes == 1): \
                 the execute thread is the WAL writer"
            );
            let manifest = Manifest {
                kind: self.kind,
                z: self.z,
                n: self.n,
                batch_size: self.batch_size,
                records: self.records,
                seed: self.seed,
                check_sigs: self.check_sigs,
                checkpoint_interval: self.checkpoint.interval,
            };
            storage::write_manifest_if_absent(root, &manifest)
                .unwrap_or_else(|e| panic!("write manifest under {}: {e}", root.display()));
        }

        // Build every replica's state (keys, preloaded stores, protocol)
        // before starting the clock: store preloading is setup, not run.
        let mut prepared = Vec::new();
        let mut backends: Vec<(ReplicaId, SharedBackend)> = Vec::new();
        for rid in system.all_replicas().collect::<Vec<_>>() {
            let signer = ks.register(rid.into());
            let crypto = CryptoCtx::new(signer, ks.verifier(), self.check_sigs);
            // The verifier stage checks inbound signatures with the full
            // context; the worker's state machine runs pre-verified. The
            // execution stage gets its own identically-preloaded table.
            let verify = VerifyCtx {
                crypto: crypto.clone(),
                system: system.clone(),
            };
            // Memory mode preloads two identical tables (protocol +
            // execution). Durable mode opens the replica's engine first:
            // an initialized directory recovers table and ledger from
            // disk; a fresh one bulk-dumps the preload before serving.
            let (store, exec_store, ledger, backend) = match &durable_root {
                None => (
                    KvStore::with_ycsb_records(self.records),
                    KvStore::with_ycsb_records(self.records),
                    Ledger::new(),
                    None,
                ),
                Some(root) => {
                    let dir = storage::replica_dir(root, rid);
                    let mut engine =
                        rdb_storage::LogBackend::open(&dir, rdb_storage::LogConfig::default())
                            .unwrap_or_else(|e| {
                                panic!("open durable engine {}: {e}", dir.display())
                            });
                    let (store, exec_store, ledger) = if storage::is_initialized(&engine) {
                        let (recovered, ledger) = storage::recover_replica(&engine)
                            .unwrap_or_else(|e| panic!("recover replica {rid}: {e}"));
                        (recovered.clone(), recovered, ledger)
                    } else {
                        let preload = KvStore::with_ycsb_records(self.records);
                        storage::init_replica(&mut engine, &preload)
                            .unwrap_or_else(|e| panic!("initialize replica {rid}: {e}"));
                        (preload.clone(), preload, Ledger::new())
                    };
                    let backend = std::sync::Arc::new(parking_lot::Mutex::new(engine));
                    backends.push((rid, std::sync::Arc::clone(&backend)));
                    (store, exec_store, ledger, Some(backend))
                }
            };
            let spec = self
                .adversaries
                .iter()
                .find(|(r, _)| *r == rid)
                .map(|(_, s)| s);
            let protocol = registry::build_replica_with_adversary(
                self.kind,
                cfg.clone(),
                rid,
                crypto.preverified(),
                store,
                spec,
            );
            // The replica's inbox is the bounded input-stage queue.
            let handle = transport.register_bounded(rid.into(), self.pipeline.queues.input);
            prepared.push((protocol, handle, verify, exec_store, ledger, backend));
        }

        let epoch = Instant::now();
        // Partition windows are relative to the epoch just taken.
        for (side_a, side_b, from, until) in self.partitions.drain(..) {
            transport.partition(
                side_a.into_iter().map(NodeId::Replica).collect(),
                side_b.into_iter().map(NodeId::Replica).collect(),
                from,
                until,
            );
        }
        let mut replicas = Vec::new();
        for (protocol, handle, verify, exec_store, ledger, backend) in prepared {
            replicas.push(ReplicaRuntime::spawn(
                protocol,
                handle,
                metrics.clone(),
                epoch,
                verify,
                exec_store,
                ledger,
                backend,
                self.pipeline,
            ));
        }

        // Schedule crashes.
        let mut crash_threads = Vec::new();
        for (replica, after) in self.crash_after.clone() {
            let t = transport.clone();
            crash_threads.push(std::thread::spawn(move || {
                std::thread::sleep(after);
                t.disconnect(NodeId::Replica(replica));
            }));
        }

        Fabric {
            kind: self.kind,
            system,
            cfg,
            ycsb,
            seed: self.seed,
            check_sigs: self.check_sigs,
            pipeline: self.pipeline,
            metrics,
            transport,
            keystore: ks,
            epoch,
            replicas,
            clients: parking_lot::Mutex::new(Vec::new()),
            sessions: parking_lot::Mutex::new(Vec::new()),
            next_ycsb_client: std::sync::atomic::AtomicUsize::new(0),
            next_session: std::sync::atomic::AtomicU32::new(0),
            crash_threads,
            crashed: self.crash_after.iter().map(|(r, _)| *r).collect(),
            backends,
        }
    }

    /// The classic closed-loop harness, now a thin driver over the
    /// service API: [`DeploymentBuilder::start`], the configured number
    /// of [`Fabric::spawn_ycsb_clients`], run for the configured
    /// duration, [`Fabric::shutdown`], report.
    pub fn run(self) -> DeploymentReport {
        let clients = self.clients;
        let duration = self.duration;
        let fabric = self.start();
        fabric.spawn_ycsb_clients(clients);
        std::thread::sleep(duration);
        fabric.shutdown()
    }
}

/// What a deployment run produced.
pub struct DeploymentReport {
    /// Protocol.
    pub kind: ProtocolKind,
    /// The deployment shape.
    pub system: SystemConfig,
    /// Reserved for crypto sampling extensions.
    pub crypto_sample: Option<()>,
    /// Thread layout the replicas ran with.
    pub pipeline: PipelineConfig,
    /// Per-stage pipeline counters, summed over all replicas (processed
    /// counts, verification drops, queue depths, busy time).
    pub stages: StageSnapshot,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Client-observed throughput.
    pub throughput_txn_s: f64,
    /// Completed client batches.
    pub completed_batches: u64,
    /// Completed transactions.
    pub completed_txns: u64,
    /// Replica decisions (sum over replicas).
    pub decided: u64,
    /// Messages through the transport.
    pub messages_sent: u64,
    /// Mean client latency.
    pub avg_latency: Duration,
    /// Tail latency.
    pub p99_latency: Duration,
    /// Final ledger of every replica.
    pub ledgers: HashMap<ReplicaId, Ledger>,
    /// State digest of each replica's execution-stage table after the run
    /// — equals the last appended block's `state_digest` (the ordering
    /// state machine executed the same decisions against an identically
    /// preloaded store); see [`DeploymentReport::audit_execution_stage`].
    pub exec_state_digests: HashMap<ReplicaId, rdb_crypto::digest::Digest>,
    /// Per-replica checkpoint stage state (empty unless
    /// [`DeploymentBuilder::checkpoint_interval`] enabled the stage):
    /// stable height, certified checkpoint history and, when retained,
    /// the recovery snapshot.
    pub checkpoints: HashMap<ReplicaId, CheckpointReport>,
    /// Per-link wire counters (bytes/frames in and out, reconnects).
    /// Empty for [`TransportMode::InProcess`], which moves no bytes.
    pub net: NetSnapshot,
    /// Durable-engine counters summed over all replicas (WAL records and
    /// bytes, memtable flushes, run bytes, compactions). Zero engines in
    /// the default [`StorageMode::Memory`].
    pub storage: StorageSnapshot,
    /// Replicas crashed during the run.
    pub crashed: Vec<ReplicaId>,
}

impl DeploymentReport {
    /// Check that every non-crashed replica's execution-stage table ended
    /// at exactly the state its ledger head claims: the off-critical-path
    /// materialization replayed the same decisions to the same result.
    /// Replicas that committed nothing are skipped (their table is still
    /// the preload).
    pub fn audit_execution_stage(&self) -> Result<(), String> {
        for (rid, ledger) in &self.ledgers {
            if self.crashed.contains(rid) || ledger.head_height() == 0 {
                continue;
            }
            let expected = ledger
                .block(ledger.head_height())
                .expect("head present")
                .state_digest;
            match self.exec_state_digests.get(rid) {
                Some(got) if *got == expected => {}
                Some(got) => {
                    return Err(format!(
                        "replica {rid}: execution-stage state {got:?} != ledger head state {expected:?}"
                    ));
                }
                None => return Err(format!("replica {rid}: no execution-stage digest")),
            }
        }
        Ok(())
    }

    /// Mean ordering-worker occupancy: the fraction of the run each
    /// replica's worker thread spent inside the state machine. The
    /// `pipeline` bench plots this against verifier fan-out.
    pub fn worker_occupancy(&self) -> f64 {
        let replicas = self.system.z() * self.system.n();
        self.stages
            .row(rdb_consensus::stage::Stage::Order)
            .occupancy(self.elapsed, replicas)
    }

    /// Per-lane execution occupancy over the run: `(lane, busy fraction)`
    /// rows from the lane pool (the sequential executor reports as a
    /// single lane 0). Busy time is summed across replicas (all run the
    /// same lane config), so it is normalized by the replica count like
    /// [`DeploymentReport::worker_occupancy`].
    pub fn exec_lane_occupancy(&self) -> Vec<(usize, f64)> {
        let replicas = self.system.z() * self.system.n();
        self.stages
            .lanes
            .iter()
            .map(|l| (l.lane, l.occupancy(self.elapsed) / replicas as f64))
            .collect()
    }

    /// The common committed prefix length across non-crashed replicas
    /// (number of blocks, excluding genesis).
    pub fn common_prefix_blocks(&self) -> u64 {
        self.ledgers
            .iter()
            .filter(|(rid, _)| !self.crashed.contains(rid))
            .map(|(_, l)| l.head_height())
            .min()
            .unwrap_or(0)
    }

    /// Check that all (non-crashed) replica ledgers agree and are
    /// internally consistent. Returns the common prefix height. With the
    /// checkpoint stage active, ledgers are compacted behind their
    /// recovery anchors; agreement is then checked *pairwise* over every
    /// height both replicas of a pair still retain — the maximal
    /// comparable evidence (a global lower bound would silently compare
    /// nothing whenever one laggard's head sits below another's anchor).
    /// A pair with no retained overlap at all has no comparable blocks
    /// left; its agreement rests on the quorum certification that gated
    /// the compaction.
    pub fn audit_ledgers(&self) -> Result<u64, String> {
        let live: Vec<(&ReplicaId, &Ledger)> = self
            .ledgers
            .iter()
            .filter(|(rid, _)| !self.crashed.contains(rid))
            .collect();
        for (rid, ledger) in &live {
            ledger
                .verify(None)
                .map_err(|e| format!("replica {rid} ledger invalid: {e}"))?;
        }
        let uncompacted = live.iter().all(|(_, l)| l.base_height() == 0);
        if uncompacted {
            // Fast path (the default, checkpointing off): everyone
            // shares height 1 up, so first-vs-rest agreement is
            // transitive and costs O(replicas · height).
            if let Some((first_id, first)) = live.first() {
                for (rid, ledger) in &live[1..] {
                    let to = first.head_height().min(ledger.head_height());
                    for h in 1..=to {
                        let a = first.block(h).expect("within prefix");
                        let b = ledger.block(h).expect("within prefix");
                        if a.hash() != b.hash() {
                            return Err(format!(
                                "divergence at height {h} between {first_id} and {rid}"
                            ));
                        }
                    }
                }
            }
        } else {
            // Compacted ledgers retain different windows; compare every
            // pair over its own overlap (transitivity through one
            // reference would skip pairs whose overlap the reference
            // pruned). Quadratic in replicas, but only on the
            // checkpointed audit path.
            for (i, (a_id, a)) in live.iter().enumerate() {
                for (b_id, b) in &live[i + 1..] {
                    let from = a.base_height().max(b.base_height()).max(1);
                    let to = a.head_height().min(b.head_height());
                    for h in from..=to {
                        let ab = a.block(h).expect("within retained overlap");
                        let bb = b.block(h).expect("within retained overlap");
                        if ab.hash() != bb.hash() {
                            return Err(format!(
                                "divergence at height {h} between {a_id} and {b_id}"
                            ));
                        }
                    }
                }
            }
        }
        Ok(self.common_prefix_blocks())
    }

    /// One-line summary. Durable runs append the storage counters.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{} z={} n={}: {:.0} txn/s, {} batches, avg latency {:?}, {} decisions, common prefix {} blocks",
            self.kind,
            self.system.z(),
            self.system.n(),
            self.throughput_txn_s,
            self.completed_batches,
            self.avg_latency,
            self.decided,
            self.common_prefix_blocks(),
        );
        let storage = self.storage.summary();
        if !storage.is_empty() {
            line.push_str("; ");
            line.push_str(&storage);
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pbft_in_process_deployment_commits_and_agrees() {
        let report = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
            .batch_size(5)
            .clients(2)
            .records(500)
            .duration(Duration::from_millis(600))
            .run();
        assert!(
            report.completed_batches > 0,
            "no progress: {}",
            report.summary()
        );
        let common = report.audit_ledgers().expect("ledgers consistent");
        assert!(common > 0);
    }

    #[test]
    fn geobft_two_cluster_deployment_round_executes() {
        let report = DeploymentBuilder::new(ProtocolKind::GeoBft, 2, 4)
            .batch_size(5)
            .clients(2)
            .records(500)
            .duration(Duration::from_millis(800))
            .run();
        assert!(
            report.completed_batches > 0,
            "no progress: {}",
            report.summary()
        );
        let common = report.audit_ledgers().expect("ledgers consistent");
        // Every GeoBFT round appends z = 2 blocks.
        assert!(common >= 2);
    }

    #[test]
    fn crash_of_backup_preserves_progress_and_agreement() {
        let report = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
            .batch_size(5)
            .clients(2)
            .records(500)
            .duration(Duration::from_millis(900))
            .crash(ReplicaId::new(0, 3), Duration::from_millis(200))
            .run();
        assert!(report.completed_batches > 0);
        report.audit_ledgers().expect("live ledgers consistent");
    }
}
