//! Bounded stage queues and the end-to-end backpressure policy.
//!
//! The paper's Figure-9 pipeline only sustains load because no stage can
//! be overrun: every inter-stage queue is *bounded*, and what happens at
//! the bound is an explicit, per-queue policy instead of unbounded memory
//! growth (the queue-collapse failure mode the "Looking Glass" companion
//! study documents in permissioned fabrics). This module is the shared
//! vocabulary for that policy:
//!
//! * [`QueuePolicy`] — one queue's capacity plus its [`Overload`]
//!   behavior;
//! * [`StageQueues`] — the full per-replica layout (input → work → exec →
//!   checkpoint → output), with defaults derived from batch size and
//!   verifier fan-out via [`StageQueues::derive`];
//! * [`send_with_policy`] — the one enqueue primitive every producer in
//!   the fabric uses, which implements Block (measured in the stage's
//!   `blocked_ns` counter) and Shed (counted in the stage's `shed`
//!   counter).
//!
//! ## What each policy means
//!
//! **Block** parks the producer until the consumer makes room. Inside one
//! replica this chains backwards — a full work queue blocks the
//! verifiers, which stops them draining the inbox, which fills the input
//! queue, which blocks the transport — until the pressure reaches the
//! *client thread* submitting new requests. That is admission control:
//! an overloaded deployment slows its clients instead of growing queues.
//!
//! **Shed** drops the item at the full queue and counts it, but only for
//! messages that are [`droppable`](rdb_consensus::messages::Message::droppable)
//! — replica-to-replica consensus traffic that some retransmission path
//! (client retry timers, progress/view-change timers) will re-drive. A
//! non-droppable item (a client's original `Request`) blocks even on a
//! queue whose policy is Shed. Shedding replica-to-replica traffic is
//! also what makes the deployment deadlock-free: no replica's output
//! thread can ever park forever on another replica's full inbox, so the
//! only threads that block across nodes are client submission threads —
//! leaves of the flow graph.
//!
//! `rdb-simnet` mirrors the same policy on its modeled input queue
//! (`PipelineModel::input_queue`), so saturation behaves identically —
//! shed for droppable traffic, delayed admission for requests — in
//! virtual time.

use crate::metrics::Metrics;
use crossbeam::channel::{Sender, TrySendError};
use rdb_consensus::stage::Stage;
use std::time::Instant;

/// What a producer does when a bounded stage queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overload {
    /// Park the producer until the consumer makes room; the wait is
    /// accumulated in the stage's `blocked_ns` counter. This is the
    /// backpressure edge: applied to the input stage it propagates all
    /// the way back to the submitting client.
    ///
    /// Caveat for the *input* queue: Block parks whoever delivers —
    /// including peer replicas' output threads. Under flood, an
    /// all-Block geometry whose queues are small relative to the
    /// in-flight message volume can park output threads on each other's
    /// inboxes in a cycle; the derived default for the input stage is
    /// therefore [`Overload::Shed`], which keeps replica-to-replica
    /// deliveries non-blocking and the flow graph cycle-free.
    Block,
    /// Drop droppable items at the full queue (counted in the stage's
    /// `shed` counter); non-droppable items still block. Safe only for
    /// traffic some retransmission path re-drives — see
    /// [`rdb_consensus::messages::Message::droppable`].
    Shed,
}

/// Capacity and overload behavior of one inter-stage queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuePolicy {
    /// Maximum queued items (≥ 1) before the overload policy applies.
    pub capacity: usize,
    /// What producers do at the bound.
    pub overload: Overload,
}

impl QueuePolicy {
    /// A blocking queue of `capacity` items.
    pub fn block(capacity: usize) -> QueuePolicy {
        QueuePolicy {
            capacity: capacity.max(1),
            overload: Overload::Block,
        }
    }

    /// A shedding queue of `capacity` items (droppable traffic is dropped
    /// at the bound; non-droppable traffic still blocks).
    pub fn shed(capacity: usize) -> QueuePolicy {
        QueuePolicy {
            capacity: capacity.max(1),
            overload: Overload::Shed,
        }
    }
}

/// The bounded-queue layout of one replica's pipeline, in flow order.
///
/// Five queues connect the six pipeline stages (the transport's delivery
/// *is* the input stage, so the inbox doubles as the verify stage's feed;
/// the checkpoint queue hangs off the execute stage):
///
/// ```text
/// transport ─▶ [input] ─▶ verify ×N ─▶ [work] ─▶ order ─▶ [exec] ─▶ execute
///                  │                               │                   │
///                  │ (pipeline ckpt votes)         └─▶ [output] ─▶ output thread
///                  └────────▶ verify ─▶ [checkpoint] ◀─────────────────┘
///                                            └─▶ checkpoint thread
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageQueues {
    /// Transport → verifier pool (the replica's inbox). Default policy is
    /// [`Overload::Shed`]: droppable consensus traffic is shed at the
    /// bound, client `Request`s block their submitter.
    pub input: QueuePolicy,
    /// Verifier pool → ordering worker (verified messages). Blocking: a
    /// full work queue parks the verifiers, which lets the inbox fill and
    /// pushes the pressure to the transport edge.
    pub work: QueuePolicy,
    /// Ordering worker → execution thread (finalized decisions). Blocking:
    /// decisions are agreed state and must never be shed.
    pub exec: QueuePolicy,
    /// Execute stage → checkpoint thread (snapshot jobs), and verifier
    /// pool → checkpoint thread (peer checkpoint votes). **Must block**:
    /// checkpoints are not retransmittable state — no timer re-drives a
    /// lost snapshot or vote, so shedding here could stall stability (and
    /// the garbage collection it gates) forever. The bound doubles as the
    /// overload signal the ROADMAP called for: a backlogged checkpoint
    /// queue parks the *executor*, which fills the exec queue, parks the
    /// worker, and throttles the whole replica — bounding exec-to-stable
    /// lag instead of letting stable-state lag grow without bound. The
    /// chain is deadlock-free because the checkpoint thread itself never
    /// parks: it delivers its votes to peers with a non-blocking
    /// hold-and-retry send (`TransportSender::try_send`), so it always
    /// returns to drain its queue.
    pub checkpoint: QueuePolicy,
    /// Ordering worker → output thread (outbound messages). Blocking
    /// locally; the output thread itself sheds droppable traffic at *peer*
    /// inboxes, so this never deadlocks across replicas.
    pub output: QueuePolicy,
}

impl StageQueues {
    /// Derive the default layout from the workload shape, the way the
    /// paper's fabric sizes its queues to the deployment:
    ///
    /// * the *input* queue absorbs one burst of consensus chatter per
    ///   in-flight batch across the verifier fan-out — `32 · fan-out`
    ///   envelopes plus `4 ·` batch size for request bursts, floor 64;
    /// * the *work* queue holds what the fan-out can verify ahead of the
    ///   worker — half the input bound, floor 32;
    /// * the *exec* queue holds a handful of in-flight decisions (each is
    ///   a whole batch; a deep queue here just hides execution lag);
    /// * the *checkpoint* queue is deliberately shallow (Block policy,
    ///   see the field docs): one interval's snapshot job plus a burst of
    ///   peer votes fit, and anything deeper would only delay the
    ///   execution throttle that bounds exec-to-stable lag;
    /// * the *output* queue covers the fan-out burst a single decision
    ///   emits (one message per peer replica and client), floor 64.
    pub fn derive(batch_size: usize, verifier_threads: usize) -> StageQueues {
        let b = batch_size.max(1);
        let v = verifier_threads.max(1);
        let input = (32 * v + 4 * b).max(64);
        StageQueues {
            input: QueuePolicy::shed(input),
            work: QueuePolicy::block((input / 2).max(32)),
            exec: QueuePolicy::block(16),
            checkpoint: QueuePolicy::block(8),
            output: QueuePolicy::block((input / 2).max(64)),
        }
    }
}

impl Default for StageQueues {
    /// The derivation at the default batch size (10) and one verifier.
    fn default() -> StageQueues {
        StageQueues::derive(10, 1)
    }
}

/// What [`send_with_policy`] did with the item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Enqueued (possibly after blocking).
    Sent,
    /// Dropped at a full queue under [`Overload::Shed`].
    Shed,
    /// The consumer is gone (shutdown); the item was discarded.
    Disconnected,
}

/// Enqueue `item` according to `policy`, recording overload behavior in
/// `metrics` against `stage` (the stage *fed by* this queue): a shed
/// increments the stage's `shed` counter, a blocking wait accumulates in
/// its `blocked_ns`. `droppable` is the item's own classification — only
/// droppable items are ever shed.
///
/// The fast path is one `try_send`; the clock is read only when the queue
/// is actually full.
pub fn send_with_policy<T>(
    tx: &Sender<T>,
    item: T,
    policy: QueuePolicy,
    droppable: bool,
    metrics: &Metrics,
    stage: Stage,
) -> SendOutcome {
    match tx.try_send(item) {
        Ok(()) => SendOutcome::Sent,
        Err(TrySendError::Disconnected(_)) => SendOutcome::Disconnected,
        Err(TrySendError::Full(item)) => {
            if droppable && policy.overload == Overload::Shed {
                metrics.stage_shed(stage);
                return SendOutcome::Shed;
            }
            let t0 = Instant::now();
            let sent = tx.send(item).is_ok();
            metrics.stage_blocked(stage, t0.elapsed());
            if sent {
                SendOutcome::Sent
            } else {
                SendOutcome::Disconnected
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;
    use std::time::Duration;

    #[test]
    fn derive_scales_with_batch_and_fanout() {
        let small = StageQueues::derive(1, 1);
        assert_eq!(small.input.capacity, 64, "floor applies");
        assert_eq!(small.input.overload, Overload::Shed);
        let large = StageQueues::derive(100, 4);
        assert!(large.input.capacity > small.input.capacity);
        assert!(large.work.capacity > small.work.capacity);
        // Interior queues always block: admitted traffic is never lost —
        // and the checkpoint queue in particular (non-retransmittable).
        for q in [large.work, large.exec, large.checkpoint, large.output] {
            assert_eq!(q.overload, Overload::Block);
        }
        assert_eq!(StageQueues::default(), StageQueues::derive(10, 1));
    }

    #[test]
    fn policy_constructors_clamp_capacity() {
        assert_eq!(QueuePolicy::block(0).capacity, 1);
        assert_eq!(QueuePolicy::shed(0).capacity, 1);
    }

    #[test]
    fn shed_policy_drops_droppable_and_counts() {
        let (tx, rx) = bounded::<u32>(1);
        let m = Metrics::new();
        let p = QueuePolicy::shed(1);
        assert_eq!(
            send_with_policy(&tx, 1, p, true, &m, Stage::Input),
            SendOutcome::Sent
        );
        assert_eq!(
            send_with_policy(&tx, 2, p, true, &m, Stage::Input),
            SendOutcome::Shed
        );
        assert_eq!(m.stage_snapshot().row(Stage::Input).shed, 1);
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(rx.try_recv().is_err(), "shed item must not arrive");
    }

    #[test]
    fn non_droppable_blocks_even_under_shed_policy() {
        let (tx, rx) = bounded::<u32>(1);
        let m = Metrics::new();
        let p = QueuePolicy::shed(1);
        send_with_policy(&tx, 1, p, true, &m, Stage::Input);
        let m2 = m.clone();
        let t = std::thread::spawn(move || send_with_policy(&tx, 2, p, false, &m2, Stage::Input));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1); // make room
        assert_eq!(t.join().unwrap(), SendOutcome::Sent);
        assert_eq!(rx.recv().unwrap(), 2);
        let row = m.stage_snapshot().row(Stage::Input).clone();
        assert_eq!(row.shed, 0);
        assert!(row.blocked > Duration::ZERO, "wait must be accounted");
    }

    #[test]
    fn block_policy_waits_and_accounts_time() {
        let (tx, rx) = bounded::<u32>(1);
        let m = Metrics::new();
        let p = QueuePolicy::block(1);
        send_with_policy(&tx, 1, p, true, &m, Stage::Order);
        let m2 = m.clone();
        let t = std::thread::spawn(move || send_with_policy(&tx, 2, p, true, &m2, Stage::Order));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(t.join().unwrap(), SendOutcome::Sent);
        assert!(m.stage_snapshot().row(Stage::Order).blocked >= Duration::from_millis(10));
    }

    #[test]
    fn disconnected_consumer_reports_shutdown() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        let m = Metrics::new();
        assert_eq!(
            send_with_policy(&tx, 1, QueuePolicy::block(1), false, &m, Stage::Order),
            SendOutcome::Disconnected
        );
    }
}
