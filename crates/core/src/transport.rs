//! In-process transport: crossbeam channels between nodes, with optional
//! injected per-link delays to emulate a geo-distributed deployment on one
//! machine.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use rdb_common::ids::NodeId;
use rdb_common::time::SimDuration;
use rdb_consensus::messages::Message;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload.
    pub msg: Message,
}

/// Computes the injected one-way delay between two nodes (None or zero for
/// direct delivery).
pub type DelayFn = Arc<dyn Fn(NodeId, NodeId) -> SimDuration + Send + Sync>;

struct DelayedEntry {
    due: Instant,
    seq: u64,
    env: Envelope,
}

impl PartialEq for DelayedEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for DelayedEntry {}
impl PartialOrd for DelayedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

struct Shared {
    inboxes: Mutex<HashMap<NodeId, Sender<Envelope>>>,
    delay: Option<DelayFn>,
    wheel: Mutex<BinaryHeap<Reverse<DelayedEntry>>>,
    wheel_cv: Condvar,
    running: AtomicBool,
    seq: std::sync::atomic::AtomicU64,
    /// When attached, replica-bound deliveries count as input-stage
    /// enqueues, so `queue_depth(Stage::Input)` is the live inbox backlog.
    metrics: Option<crate::metrics::Metrics>,
}

/// The in-process transport. Cloneable handle.
#[derive(Clone)]
pub struct InProcTransport {
    shared: Arc<Shared>,
}

/// A node's endpoint: its receiver plus a sending handle.
pub struct TransportHandle {
    /// This node.
    pub node: NodeId,
    /// Incoming envelopes.
    pub inbox: Receiver<Envelope>,
    transport: InProcTransport,
}

impl InProcTransport {
    /// Create a transport. `delay` injects per-link one-way delays (e.g.
    /// from `rdb-simnet`'s Table 1 topology); `None` delivers directly.
    pub fn new(delay: Option<DelayFn>) -> InProcTransport {
        InProcTransport::with_metrics(delay, None)
    }

    /// Like [`InProcTransport::new`], additionally recording every
    /// replica-bound delivery as an input-stage enqueue in `metrics`.
    pub fn with_metrics(
        delay: Option<DelayFn>,
        metrics: Option<crate::metrics::Metrics>,
    ) -> InProcTransport {
        let t = InProcTransport {
            shared: Arc::new(Shared {
                inboxes: Mutex::new(HashMap::new()),
                delay,
                wheel: Mutex::new(BinaryHeap::new()),
                wheel_cv: Condvar::new(),
                running: AtomicBool::new(true),
                seq: std::sync::atomic::AtomicU64::new(0),
                metrics,
            }),
        };
        if t.shared.delay.is_some() {
            t.spawn_pump();
        }
        t
    }

    /// Register a node, returning its endpoint.
    pub fn register(&self, node: NodeId) -> TransportHandle {
        let (tx, rx) = unbounded();
        self.shared.inboxes.lock().insert(node, tx);
        TransportHandle {
            node,
            inbox: rx,
            transport: self.clone(),
        }
    }

    /// Send an envelope (applying the delay policy).
    pub fn send(&self, env: Envelope) {
        let delay = self
            .shared
            .delay
            .as_ref()
            .map(|f| f(env.from, env.to))
            .unwrap_or(SimDuration::ZERO);
        if delay == SimDuration::ZERO {
            self.deliver(env);
        } else {
            let due = Instant::now() + Duration::from_nanos(delay.as_nanos());
            let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
            self.shared
                .wheel
                .lock()
                .push(Reverse(DelayedEntry { due, seq, env }));
            self.shared.wheel_cv.notify_one();
        }
    }

    fn deliver(&self, env: Envelope) {
        let inboxes = self.shared.inboxes.lock();
        if let Some(tx) = inboxes.get(&env.to) {
            if let (Some(m), NodeId::Replica(_)) = (&self.shared.metrics, env.to) {
                m.stage_enqueued(rdb_consensus::stage::Stage::Input);
            }
            let _ = tx.send(env); // receiver may have shut down: drop
        }
    }

    /// Remove a node (its messages are dropped from now on). Used to
    /// crash replicas in failure tests.
    pub fn disconnect(&self, node: NodeId) {
        self.shared.inboxes.lock().remove(&node);
    }

    /// Stop the delay pump.
    pub fn shutdown(&self) {
        self.shared.running.store(false, Ordering::SeqCst);
        self.shared.wheel_cv.notify_all();
    }

    fn spawn_pump(&self) {
        let shared = Arc::clone(&self.shared);
        let me = self.clone();
        std::thread::Builder::new()
            .name("rdb-delay-pump".into())
            .spawn(move || {
                let mut wheel = shared.wheel.lock();
                while shared.running.load(Ordering::SeqCst) {
                    let now = Instant::now();
                    // Deliver everything due.
                    loop {
                        match wheel.peek() {
                            Some(Reverse(e)) if e.due <= now => {
                                let Reverse(e) = wheel.pop().expect("peeked");
                                drop(wheel);
                                me.deliver(e.env);
                                wheel = shared.wheel.lock();
                            }
                            _ => break,
                        }
                    }
                    match wheel.peek() {
                        Some(Reverse(e)) => {
                            let due = e.due;
                            let wait = due.saturating_duration_since(Instant::now());
                            shared
                                .wheel_cv
                                .wait_for(&mut wheel, wait.max(Duration::from_micros(50)));
                        }
                        None => {
                            shared
                                .wheel_cv
                                .wait_for(&mut wheel, Duration::from_millis(5));
                        }
                    }
                }
            })
            .expect("spawn delay pump");
    }
}

impl TransportHandle {
    /// Send a message from this node.
    pub fn send(&self, to: NodeId, msg: Message) {
        self.transport.send(Envelope {
            from: self.node,
            to,
            msg,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::ids::ReplicaId;

    #[test]
    fn direct_delivery() {
        let t = InProcTransport::new(None);
        let a: NodeId = ReplicaId::new(0, 0).into();
        let b: NodeId = ReplicaId::new(0, 1).into();
        let ha = t.register(a);
        let hb = t.register(b);
        ha.send(b, Message::Noop);
        let env = hb.inbox.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.from, a);
        assert!(matches!(env.msg, Message::Noop));
    }

    #[test]
    fn delayed_delivery_takes_at_least_the_delay() {
        let delay: DelayFn = Arc::new(|_, _| SimDuration::from_millis(30));
        let t = InProcTransport::new(Some(delay));
        let a: NodeId = ReplicaId::new(0, 0).into();
        let b: NodeId = ReplicaId::new(1, 0).into();
        let _ha = t.register(a);
        let hb = t.register(b);
        let start = Instant::now();
        t.send(Envelope {
            from: a,
            to: b,
            msg: Message::Noop,
        });
        let _ = hb.inbox.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(28));
        t.shutdown();
    }

    #[test]
    fn delayed_ordering_respects_due_times() {
        // A message with a short delay overtakes one with a long delay.
        let delay: DelayFn = Arc::new(|from, _| match from {
            NodeId::Replica(r) if r.index == 0 => SimDuration::from_millis(80),
            _ => SimDuration::from_millis(10),
        });
        let t = InProcTransport::new(Some(delay));
        let slow: NodeId = ReplicaId::new(0, 0).into();
        let fast: NodeId = ReplicaId::new(0, 1).into();
        let dst: NodeId = ReplicaId::new(1, 0).into();
        let _h1 = t.register(slow);
        let _h2 = t.register(fast);
        let hd = t.register(dst);
        t.send(Envelope {
            from: slow,
            to: dst,
            msg: Message::Noop,
        });
        t.send(Envelope {
            from: fast,
            to: dst,
            msg: Message::Noop,
        });
        let first = hd.inbox.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(first.from, fast, "shorter delay must arrive first");
        t.shutdown();
    }

    #[test]
    fn disconnect_drops_messages() {
        let t = InProcTransport::new(None);
        let a: NodeId = ReplicaId::new(0, 0).into();
        let b: NodeId = ReplicaId::new(0, 1).into();
        let ha = t.register(a);
        let hb = t.register(b);
        t.disconnect(b);
        ha.send(b, Message::Noop);
        assert!(hb.inbox.recv_timeout(Duration::from_millis(100)).is_err());
    }
}
