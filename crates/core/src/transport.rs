//! In-process transport: crossbeam channels between nodes, with optional
//! injected per-link delays to emulate a geo-distributed deployment on one
//! machine.
//!
//! Replica inboxes registered via [`InProcTransport::register_bounded`]
//! are the pipeline's *input stage queue*: delivery applies the queue's
//! [`QueuePolicy`] — droppable consensus traffic is shed at the bound
//! (counted per stage), while client `Request`s block the delivering
//! thread, which is exactly how admission control propagates from an
//! overloaded replica back to the submitting client. Client inboxes stay
//! unbounded ([`InProcTransport::register`]): clients are closed-loop and
//! drain their own replies, so they are leaves of the blocking graph.
//!
//! Delayed links (a [`DelayFn`] topology) relax admission: a delayed
//! send parks in the delay wheel — modeling traffic in flight on the
//! WAN — and returns immediately, so the *sender* does not block. The
//! single pump thread then delivers without ever parking: droppable
//! traffic is shed per the inbox policy, and a non-droppable message
//! that finds the inbox full is requeued briefly and retried (the
//! pump's `deliver_or_requeue`), i.e. it stays "in the network" until
//! the replica has room. In-flight wheel memory is
//! bounded by the closed-loop clients' outstanding requests plus
//! consensus traffic, not by wall-clock.

use crate::queue::{send_with_policy, QueuePolicy, SendOutcome};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use rdb_common::ids::NodeId;
use rdb_common::time::SimDuration;
use rdb_consensus::messages::Message;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload.
    pub msg: Message,
}

/// Computes the injected one-way delay between two nodes (None or zero for
/// direct delivery).
pub type DelayFn = Arc<dyn Fn(NodeId, NodeId) -> SimDuration + Send + Sync>;

struct DelayedEntry {
    due: Instant,
    seq: u64,
    env: Envelope,
}

impl PartialEq for DelayedEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for DelayedEntry {}
impl PartialOrd for DelayedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// One registered node's inbox: its sender plus the input-stage queue
/// policy (None for unbounded client/test inboxes).
struct InboxEntry {
    tx: Sender<Envelope>,
    policy: Option<QueuePolicy>,
}

/// A scheduled bidirectional cut between two node groups: messages
/// crossing the cut are dropped while `from <= now < until`, after which
/// the partition heals. The check happens at *send* time — matching the
/// simulator's `FaultSpec::partition`, which drops at route time — so
/// traffic already in the delay wheel when the cut starts still arrives.
struct Partition {
    side_a: Vec<NodeId>,
    side_b: Vec<NodeId>,
    from: Instant,
    until: Instant,
}

impl Partition {
    fn cuts(&self, now: Instant, from: NodeId, to: NodeId) -> bool {
        if now < self.from || now >= self.until {
            return false;
        }
        (self.side_a.contains(&from) && self.side_b.contains(&to))
            || (self.side_b.contains(&from) && self.side_a.contains(&to))
    }
}

/// Scheduled partitions plus the lock-free fast path. Shared by both
/// the in-process and the socket transport (both drop at send time).
///
/// `active` short-circuits the per-send check so the common (no faults)
/// path never takes the lock — and, since expired windows are pruned
/// inside [`PartitionSet::is_cut`] and the flag is cleared when the
/// list empties, a *healed* deployment returns to that lock-free path
/// instead of scanning a stale partition list forever.
///
/// Memory ordering: the store in [`PartitionSet::add`] is `Release` and
/// the load in [`PartitionSet::is_cut`] is `Acquire`, pairing them. The
/// partition-vec mutex already makes the race benign for cut *contents*
/// — any sender that decides to scan acquires the lock and sees a fully
/// written `Partition` — but the mutex cannot help a sender that never
/// reaches it: with a `Relaxed` load, a sender could observe
/// `active == false` arbitrarily long after `add` returned and skip a
/// window that has already started. Acquire/Release bounds that
/// visibility gap to the synchronization the caller already performs
/// after scheduling the partition (in practice: the builder schedules
/// partitions before spawning replica threads, and thread spawn is a
/// release edge).
pub(crate) struct PartitionSet {
    partitions: Mutex<Vec<Partition>>,
    active: AtomicBool,
}

impl PartitionSet {
    pub(crate) fn new() -> PartitionSet {
        PartitionSet {
            partitions: Mutex::new(Vec::new()),
            active: AtomicBool::new(false),
        }
    }

    /// Schedule a bidirectional cut between `side_a` and `side_b` over
    /// `[from, until)` (both relative to now).
    pub(crate) fn add(
        &self,
        side_a: Vec<NodeId>,
        side_b: Vec<NodeId>,
        from: Duration,
        until: Duration,
    ) {
        let now = Instant::now();
        self.partitions.lock().push(Partition {
            side_a,
            side_b,
            from: now + from,
            until: now + until,
        });
        self.active.store(true, Ordering::Release);
    }

    /// True when a currently-active partition cuts the `from -> to`
    /// link. Prunes windows whose `until` has passed; once the last one
    /// heals, the flag clears and subsequent sends take the lock-free
    /// fast path again.
    pub(crate) fn is_cut(&self, from: NodeId, to: NodeId) -> bool {
        if !self.active.load(Ordering::Acquire) {
            return false;
        }
        let now = Instant::now();
        let mut partitions = self.partitions.lock();
        partitions.retain(|p| now < p.until);
        if partitions.is_empty() {
            self.active.store(false, Ordering::Release);
            return false;
        }
        partitions.iter().any(|p| p.cuts(now, from, to))
    }

    /// Test probe: whether the next `is_cut` would short-circuit
    /// without touching the partition mutex.
    #[cfg(test)]
    pub(crate) fn fast_path_is_lock_free(&self) -> bool {
        !self.active.load(Ordering::Acquire)
    }
}

struct Shared {
    inboxes: Mutex<HashMap<NodeId, InboxEntry>>,
    delay: Option<DelayFn>,
    wheel: Mutex<BinaryHeap<Reverse<DelayedEntry>>>,
    wheel_cv: Condvar,
    /// Scheduled network partitions (see [`PartitionSet`] for the
    /// fast-path flag and pruning semantics).
    partitions: PartitionSet,
    running: AtomicBool,
    seq: std::sync::atomic::AtomicU64,
    /// When attached, replica-bound deliveries count as input-stage
    /// enqueues (so `queue_depth(Stage::Input)` is the live inbox
    /// backlog) and overload behavior lands in the input stage's
    /// `shed`/`blocked_ns`. When not, a private sink absorbs the counts.
    metrics: crate::metrics::Metrics,
}

/// The in-process transport. Cloneable handle.
#[derive(Clone)]
pub struct InProcTransport {
    shared: Arc<Shared>,
}

/// A node's endpoint: its receiver plus a sending handle.
pub struct TransportHandle {
    /// This node.
    pub node: NodeId,
    /// Incoming envelopes.
    pub inbox: Receiver<Envelope>,
    transport: Transport,
}

/// Either transport behind one dispatching surface, so the replica and
/// client runtimes are transport-agnostic: [`TransportHandle`] /
/// [`TransportSender`] wrap this enum and every call site stays the
/// same whether messages travel over crossbeam channels or sockets.
///
/// In-process is the default everywhere — it keeps the repro figures
/// byte-identical and supports delay emulation and partitions. The
/// socket transport exists to span OS processes with real framing; see
/// `crate::socket` and the "Wire transport" chapter of
/// `docs/ARCHITECTURE.md` for the decision table.
#[derive(Clone)]
pub enum Transport {
    /// Channel mesh within one process.
    InProc(InProcTransport),
    /// TCP or Unix-domain sockets with length-prefixed frames.
    Socket(crate::socket::SocketTransport),
}

impl Transport {
    /// Register a node with an unbounded inbox (clients, tests).
    pub fn register(&self, node: NodeId) -> TransportHandle {
        match self {
            Transport::InProc(t) => t.register(node),
            Transport::Socket(t) => t.register(node),
        }
    }

    /// Register a node whose inbox is the bounded input-stage queue of
    /// its pipeline (see [`InProcTransport::register_bounded`]).
    pub fn register_bounded(&self, node: NodeId, policy: QueuePolicy) -> TransportHandle {
        match self {
            Transport::InProc(t) => t.register_bounded(node, policy),
            Transport::Socket(t) => t.register_bounded(node, policy),
        }
    }

    /// Schedule a bidirectional partition (see
    /// [`InProcTransport::partition`]). Supported on both transports:
    /// the socket transport drops at send time exactly like the
    /// in-process one (the cut models a WAN failure, not a closed
    /// socket).
    pub fn partition(
        &self,
        side_a: Vec<NodeId>,
        side_b: Vec<NodeId>,
        from: Duration,
        until: Duration,
    ) {
        match self {
            Transport::InProc(t) => t.partition(side_a, side_b, from, until),
            Transport::Socket(t) => t.partition(side_a, side_b, from, until),
        }
    }

    /// Send an envelope.
    pub fn send(&self, env: Envelope) {
        match self {
            Transport::InProc(t) => t.send(env),
            Transport::Socket(t) => t.send(env),
        }
    }

    /// Non-blocking send; `false` hands a non-droppable message back to
    /// the caller to hold and retry (see [`InProcTransport::try_send`]).
    pub fn try_send(&self, env: Envelope) -> bool {
        match self {
            Transport::InProc(t) => t.try_send(env),
            Transport::Socket(t) => t.try_send(env),
        }
    }

    /// Remove a node (crash tests).
    pub fn disconnect(&self, node: NodeId) {
        match self {
            Transport::InProc(t) => t.disconnect(node),
            Transport::Socket(t) => t.disconnect(node),
        }
    }

    /// Stop background threads (the delay pump / socket readers).
    pub fn shutdown(&self) {
        match self {
            Transport::InProc(t) => t.shutdown(),
            Transport::Socket(t) => t.shutdown(),
        }
    }
}

impl InProcTransport {
    /// Create a transport. `delay` injects per-link one-way delays (e.g.
    /// from `rdb-simnet`'s Table 1 topology); `None` delivers directly.
    pub fn new(delay: Option<DelayFn>) -> InProcTransport {
        InProcTransport::with_metrics(delay, None)
    }

    /// Like [`InProcTransport::new`], additionally recording every
    /// replica-bound delivery as an input-stage enqueue in `metrics`
    /// (and input-stage shed/blocked accounting for bounded inboxes).
    pub fn with_metrics(
        delay: Option<DelayFn>,
        metrics: Option<crate::metrics::Metrics>,
    ) -> InProcTransport {
        let t = InProcTransport {
            shared: Arc::new(Shared {
                inboxes: Mutex::new(HashMap::new()),
                delay,
                wheel: Mutex::new(BinaryHeap::new()),
                wheel_cv: Condvar::new(),
                partitions: PartitionSet::new(),
                running: AtomicBool::new(true),
                seq: std::sync::atomic::AtomicU64::new(0),
                metrics: metrics.unwrap_or_default(),
            }),
        };
        if t.shared.delay.is_some() {
            t.spawn_pump();
        }
        t
    }

    /// Register a node with an unbounded inbox (clients, tests).
    pub fn register(&self, node: NodeId) -> TransportHandle {
        let (tx, rx) = unbounded();
        self.shared
            .inboxes
            .lock()
            .insert(node, InboxEntry { tx, policy: None });
        TransportHandle {
            node,
            inbox: rx,
            transport: Transport::InProc(self.clone()),
        }
    }

    /// Register a node whose inbox is the bounded input-stage queue of
    /// its pipeline: deliveries at the bound shed droppable traffic or
    /// block the sender per `policy` (see [`crate::queue`]). A
    /// hand-built policy with `capacity: 0` is clamped to 1 (the
    /// [`QueuePolicy`] constructors already guarantee ≥ 1).
    pub fn register_bounded(&self, node: NodeId, policy: QueuePolicy) -> TransportHandle {
        let (tx, rx) = bounded(policy.capacity.max(1));
        self.shared.inboxes.lock().insert(
            node,
            InboxEntry {
                tx,
                policy: Some(policy),
            },
        );
        TransportHandle {
            node,
            inbox: rx,
            transport: Transport::InProc(self.clone()),
        }
    }

    /// Schedule a bidirectional partition between `side_a` and `side_b`:
    /// messages crossing the cut are dropped from `from` until `until`
    /// (both relative to now, i.e. to deployment start when called from
    /// the builder), after which the link heals. Mirrors the simulator's
    /// `FaultSpec::partition` so one scenario script can inject the same
    /// fault in both runtimes.
    pub fn partition(
        &self,
        side_a: Vec<NodeId>,
        side_b: Vec<NodeId>,
        from: Duration,
        until: Duration,
    ) {
        self.shared.partitions.add(side_a, side_b, from, until);
    }

    /// True when a currently-active partition cuts the `from -> to` link.
    fn is_cut(&self, from: NodeId, to: NodeId) -> bool {
        self.shared.partitions.is_cut(from, to)
    }

    /// Send an envelope (applying the delay policy).
    pub fn send(&self, env: Envelope) {
        if self.is_cut(env.from, env.to) {
            return; // dropped at the cut, like a crashed link
        }
        let delay = self
            .shared
            .delay
            .as_ref()
            .map(|f| f(env.from, env.to))
            .unwrap_or(SimDuration::ZERO);
        if delay == SimDuration::ZERO {
            self.deliver(env);
        } else {
            let due = Instant::now() + Duration::from_nanos(delay.as_nanos());
            let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
            self.shared
                .wheel
                .lock()
                .push(Reverse(DelayedEntry { due, seq, env }));
            self.shared.wheel_cv.notify_one();
        }
    }

    fn deliver(&self, env: Envelope) {
        // Clone the sender out of the registry so a blocking (bounded)
        // send never holds the inbox lock: other deliveries keep flowing
        // while one producer is parked on a full input queue.
        let (tx, policy) = {
            let inboxes = self.shared.inboxes.lock();
            match inboxes.get(&env.to) {
                Some(e) => (e.tx.clone(), e.policy),
                None => return, // disconnected (crash tests): drop
            }
        };
        let to_replica = matches!(env.to, NodeId::Replica(_));
        let metrics = &self.shared.metrics;
        let stage = rdb_consensus::stage::Stage::Input;
        match policy {
            None => {
                if to_replica {
                    metrics.stage_enqueued(stage);
                }
                let _ = tx.send(env); // receiver may have shut down: drop
            }
            Some(p) => {
                // Shed applies only to droppable traffic; a client's
                // Request blocks here — the end of the backpressure
                // chain, parking the submitting client thread itself.
                let droppable = env.msg.droppable();
                if send_with_policy(&tx, env, p, droppable, metrics, stage) == SendOutcome::Sent
                    && to_replica
                {
                    metrics.stage_enqueued(stage);
                }
            }
        }
    }

    /// Non-blocking send for producer stages that must never park on a
    /// peer's full inbox (the checkpoint thread delivering its
    /// non-droppable votes). Delayed links accept unconditionally (the
    /// message parks in the wheel, "in the network"). On a direct link a
    /// full inbox sheds droppable traffic per the inbox policy (returns
    /// `true`: the message is accounted for) but hands a non-droppable
    /// message **back to the caller** (`false`) to hold and retry —
    /// blocking here is exactly the cross-replica cycle the queue design
    /// forbids (see [`crate::queue`]).
    pub fn try_send(&self, env: Envelope) -> bool {
        if self.is_cut(env.from, env.to) {
            return true; // dropped at the cut: accounted for
        }
        let delay = self
            .shared
            .delay
            .as_ref()
            .map(|f| f(env.from, env.to))
            .unwrap_or(SimDuration::ZERO);
        if delay != SimDuration::ZERO {
            self.send(env);
            return true;
        }
        let (tx, policy) = {
            let inboxes = self.shared.inboxes.lock();
            match inboxes.get(&env.to) {
                Some(e) => (e.tx.clone(), e.policy),
                None => return true, // disconnected (crash tests): drop
            }
        };
        let to_replica = matches!(env.to, NodeId::Replica(_));
        match tx.try_send(env) {
            Ok(()) => {
                if to_replica {
                    self.shared
                        .metrics
                        .stage_enqueued(rdb_consensus::stage::Stage::Input);
                }
                true
            }
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => true,
            Err(crossbeam::channel::TrySendError::Full(env)) => {
                let shed = match policy {
                    Some(p) => p.overload == crate::queue::Overload::Shed && env.msg.droppable(),
                    None => false, // unbounded inboxes are never Full
                };
                if shed {
                    if to_replica {
                        self.shared
                            .metrics
                            .stage_shed(rdb_consensus::stage::Stage::Input);
                    }
                    return true;
                }
                false
            }
        }
    }

    /// Remove a node (its messages are dropped from now on). Used to
    /// crash replicas in failure tests.
    pub fn disconnect(&self, node: NodeId) {
        self.shared.inboxes.lock().remove(&node);
    }

    /// Stop the delay pump.
    pub fn shutdown(&self) {
        self.shared.running.store(false, Ordering::SeqCst);
        self.shared.wheel_cv.notify_all();
    }

    /// Non-blocking delivery for the delay pump: the pump is a single
    /// thread serving every delayed link, so it must never park on one
    /// replica's full inbox (that would stall delayed traffic
    /// cluster-wide). Droppable traffic is shed per the inbox policy as
    /// usual; a non-droppable message that finds the queue full is
    /// pushed back into the wheel and retried shortly — the message
    /// stays "in the network" until the inbox has room, which is the
    /// delayed-link analogue of the blocking admission on direct links.
    fn deliver_or_requeue(&self, env: Envelope) {
        let (tx, policy) = {
            let inboxes = self.shared.inboxes.lock();
            match inboxes.get(&env.to) {
                Some(e) => (e.tx.clone(), e.policy),
                None => return, // disconnected (crash tests): drop
            }
        };
        let to_replica = matches!(env.to, NodeId::Replica(_));
        match tx.try_send(env) {
            Ok(()) => {
                if to_replica {
                    self.shared
                        .metrics
                        .stage_enqueued(rdb_consensus::stage::Stage::Input);
                }
            }
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => {}
            Err(crossbeam::channel::TrySendError::Full(env)) => {
                let shed = match policy {
                    Some(p) => p.overload == crate::queue::Overload::Shed && env.msg.droppable(),
                    // Unbounded inboxes are never Full; unreachable.
                    None => false,
                };
                if shed {
                    if to_replica {
                        self.shared
                            .metrics
                            .stage_shed(rdb_consensus::stage::Stage::Input);
                    }
                    return;
                }
                let due = Instant::now() + Duration::from_micros(200);
                let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
                self.shared
                    .wheel
                    .lock()
                    .push(Reverse(DelayedEntry { due, seq, env }));
                // No notify needed: the pump rechecks within its own
                // wait timeout, and we are on the pump thread anyway.
            }
        }
    }

    fn spawn_pump(&self) {
        let shared = Arc::clone(&self.shared);
        let me = self.clone();
        std::thread::Builder::new()
            .name("rdb-delay-pump".into())
            .spawn(move || {
                let mut wheel = shared.wheel.lock();
                while shared.running.load(Ordering::SeqCst) {
                    let now = Instant::now();
                    // Deliver everything due.
                    loop {
                        match wheel.peek() {
                            Some(Reverse(e)) if e.due <= now => {
                                let Reverse(e) = wheel.pop().expect("peeked");
                                drop(wheel);
                                me.deliver_or_requeue(e.env);
                                wheel = shared.wheel.lock();
                            }
                            _ => break,
                        }
                    }
                    match wheel.peek() {
                        Some(Reverse(e)) => {
                            let due = e.due;
                            let wait = due.saturating_duration_since(Instant::now());
                            shared
                                .wheel_cv
                                .wait_for(&mut wheel, wait.max(Duration::from_micros(50)));
                        }
                        None => {
                            shared
                                .wheel_cv
                                .wait_for(&mut wheel, Duration::from_millis(5));
                        }
                    }
                }
            })
            .expect("spawn delay pump");
    }
}

impl TransportHandle {
    /// Assemble a handle (used by the socket transport, whose inbox
    /// channels live in `crate::socket`).
    pub(crate) fn from_parts(
        node: NodeId,
        inbox: Receiver<Envelope>,
        transport: Transport,
    ) -> TransportHandle {
        TransportHandle {
            node,
            inbox,
            transport,
        }
    }

    /// Send a message from this node.
    pub fn send(&self, to: NodeId, msg: Message) {
        self.transport.send(Envelope {
            from: self.node,
            to,
            msg,
        });
    }

    /// Split into the inbox receiver and a send-only handle.
    ///
    /// With bounded inboxes, receiver ownership is load-bearing for
    /// shutdown: a peer parked in a blocking delivery is released only
    /// when *every* receiver of the target inbox is dropped. The replica
    /// pipeline therefore hands the receiver exclusively to its consumer
    /// threads (the verifier pool) and gives producer-only stages this
    /// sender — so a stopping replica's exiting consumers immediately
    /// disconnect its inbox and unblock any parked senders, instead of
    /// deadlocking the join on a receiver kept alive by a producer.
    pub fn split(self) -> (Receiver<Envelope>, TransportSender) {
        (
            self.inbox,
            TransportSender {
                node: self.node,
                transport: self.transport,
            },
        )
    }
}

/// The sending half of a [`TransportHandle`] (no inbox receiver).
/// Cloneable so that multiple producer-only stages of one replica (the
/// output thread and the checkpoint thread) can send concurrently.
#[derive(Clone)]
pub struct TransportSender {
    node: NodeId,
    transport: Transport,
}

impl TransportSender {
    /// Send a message from this node.
    pub fn send(&self, to: NodeId, msg: Message) {
        self.transport.send(Envelope {
            from: self.node,
            to,
            msg,
        });
    }

    /// Non-blocking send: `false` means the target inbox is full and the
    /// (non-droppable) message was handed back — hold it and retry. See
    /// [`InProcTransport::try_send`].
    pub fn try_send(&self, to: NodeId, msg: Message) -> bool {
        self.transport.try_send(Envelope {
            from: self.node,
            to,
            msg,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::ids::ReplicaId;

    #[test]
    fn direct_delivery() {
        let t = InProcTransport::new(None);
        let a: NodeId = ReplicaId::new(0, 0).into();
        let b: NodeId = ReplicaId::new(0, 1).into();
        let ha = t.register(a);
        let hb = t.register(b);
        ha.send(b, Message::Noop);
        let env = hb.inbox.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.from, a);
        assert!(matches!(env.msg, Message::Noop));
    }

    #[test]
    fn delayed_delivery_takes_at_least_the_delay() {
        let delay: DelayFn = Arc::new(|_, _| SimDuration::from_millis(30));
        let t = InProcTransport::new(Some(delay));
        let a: NodeId = ReplicaId::new(0, 0).into();
        let b: NodeId = ReplicaId::new(1, 0).into();
        let _ha = t.register(a);
        let hb = t.register(b);
        let start = Instant::now();
        t.send(Envelope {
            from: a,
            to: b,
            msg: Message::Noop,
        });
        let _ = hb.inbox.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(28));
        t.shutdown();
    }

    #[test]
    fn delayed_ordering_respects_due_times() {
        // A message with a short delay overtakes one with a long delay.
        let delay: DelayFn = Arc::new(|from, _| match from {
            NodeId::Replica(r) if r.index == 0 => SimDuration::from_millis(80),
            _ => SimDuration::from_millis(10),
        });
        let t = InProcTransport::new(Some(delay));
        let slow: NodeId = ReplicaId::new(0, 0).into();
        let fast: NodeId = ReplicaId::new(0, 1).into();
        let dst: NodeId = ReplicaId::new(1, 0).into();
        let _h1 = t.register(slow);
        let _h2 = t.register(fast);
        let hd = t.register(dst);
        t.send(Envelope {
            from: slow,
            to: dst,
            msg: Message::Noop,
        });
        t.send(Envelope {
            from: fast,
            to: dst,
            msg: Message::Noop,
        });
        let first = hd.inbox.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(first.from, fast, "shorter delay must arrive first");
        t.shutdown();
    }

    #[test]
    fn delay_pump_sheds_or_requeues_instead_of_parking() {
        use crate::queue::QueuePolicy;
        use rdb_common::ids::ClientId;
        use rdb_consensus::types::SignedBatch;

        let delay: DelayFn = Arc::new(|_, _| SimDuration::from_millis(5));
        let t = InProcTransport::new(Some(delay));
        let client: NodeId = ClientId::new(0, 0).into();
        let b: NodeId = ReplicaId::new(0, 1).into();
        let c: NodeId = ReplicaId::new(0, 2).into();
        let _hc_sender = t.register(client);
        let hb = t.register_bounded(b, QueuePolicy::shed(1));
        let hc = t.register(c);

        let request = || Message::Request(SignedBatch::noop(rdb_common::ids::ClusterId(0), 1));
        // Fill b's 1-slot inbox, then overflow it with one droppable
        // (shed) and one non-droppable (requeued) message, and follow
        // with traffic for c that must not be stalled behind them.
        t.send(Envelope {
            from: client,
            to: b,
            msg: Message::Noop,
        });
        t.send(Envelope {
            from: client,
            to: b,
            msg: Message::Noop,
        });
        t.send(Envelope {
            from: client,
            to: b,
            msg: request(),
        });
        t.send(Envelope {
            from: client,
            to: c,
            msg: Message::Noop,
        });

        // c's delivery proves the pump never parked on b's full inbox.
        hc.inbox
            .recv_timeout(Duration::from_secs(2))
            .expect("pump must keep serving other links");
        // Drain b: first the queued Noop, then the retried Request; the
        // second (droppable) Noop was shed and never arrives.
        let first = hb.inbox.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(matches!(first.msg, Message::Noop));
        let second = hb.inbox.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(
            matches!(second.msg, Message::Request(_)),
            "non-droppable overflow must be retried, not lost"
        );
        assert!(hb.inbox.recv_timeout(Duration::from_millis(100)).is_err());
        t.shutdown();
    }

    #[test]
    fn partition_drops_then_heals() {
        let t = InProcTransport::new(None);
        let a: NodeId = ReplicaId::new(0, 0).into();
        let b: NodeId = ReplicaId::new(0, 1).into();
        let ha = t.register(a);
        let hb = t.register(b);
        t.partition(vec![a], vec![b], Duration::ZERO, Duration::from_millis(150));
        // During the cut both directions drop.
        ha.send(b, Message::Noop);
        hb.send(a, Message::Noop);
        assert!(hb.inbox.recv_timeout(Duration::from_millis(50)).is_err());
        assert!(ha.inbox.recv_timeout(Duration::from_millis(50)).is_err());
        // After `until` the partition heals.
        std::thread::sleep(Duration::from_millis(120));
        ha.send(b, Message::Noop);
        assert!(hb.inbox.recv_timeout(Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn healed_partition_restores_the_lock_free_send_path() {
        // Regression: expired partitions used to linger in the list and
        // the `active` flag was never cleared, so every send after a
        // heal still took the partition mutex and scanned stale
        // windows.
        let t = InProcTransport::new(None);
        let a: NodeId = ReplicaId::new(0, 0).into();
        let b: NodeId = ReplicaId::new(0, 1).into();
        let ha = t.register(a);
        let hb = t.register(b);
        assert!(t.shared.partitions.fast_path_is_lock_free());
        t.partition(vec![a], vec![b], Duration::ZERO, Duration::from_millis(40));
        ha.send(b, Message::Noop);
        assert!(hb.inbox.recv_timeout(Duration::from_millis(30)).is_err());
        assert!(
            !t.shared.partitions.fast_path_is_lock_free(),
            "flag must be set while the cut is scheduled"
        );
        std::thread::sleep(Duration::from_millis(50));
        // The first send after the heal prunes the expired window...
        ha.send(b, Message::Noop);
        assert!(hb.inbox.recv_timeout(Duration::from_secs(1)).is_ok());
        // ...and every later send short-circuits without the lock.
        assert!(
            t.shared.partitions.fast_path_is_lock_free(),
            "post-heal sends must be lock-free again"
        );
    }

    #[test]
    fn overlapping_partitions_prune_independently() {
        let set = PartitionSet::new();
        let a: NodeId = ReplicaId::new(0, 0).into();
        let b: NodeId = ReplicaId::new(0, 1).into();
        set.add(vec![a], vec![b], Duration::ZERO, Duration::from_millis(30));
        set.add(vec![a], vec![b], Duration::ZERO, Duration::from_millis(300));
        assert!(set.is_cut(a, b));
        std::thread::sleep(Duration::from_millis(50));
        // The short window expired but the long one still cuts: the
        // flag must survive the partial prune.
        assert!(set.is_cut(a, b));
        assert!(!set.fast_path_is_lock_free());
    }

    #[test]
    fn disconnect_drops_messages() {
        let t = InProcTransport::new(None);
        let a: NodeId = ReplicaId::new(0, 0).into();
        let b: NodeId = ReplicaId::new(0, 1).into();
        let ha = t.register(a);
        let hb = t.register(b);
        t.disconnect(b);
        ha.send(b, Message::Noop);
        assert!(hb.inbox.recv_timeout(Duration::from_millis(100)).is_err());
    }
}
