//! # resilientdb
//!
//! The ResilientDB fabric (§3 of the paper): a multi-threaded, staged
//! runtime that executes the consensus state machines of `rdb-consensus`
//! on real OS threads over a pluggable transport, maintains the
//! blockchain ledger, and serves closed-loop clients.
//!
//! ## The Figure-9 pipeline
//!
//! The paper's architecture diagram (Figure 9) associates input threads,
//! parallel batching/verification threads, worker threads, execution
//! threads and output threads with every replica, and credits this staged
//! design — not protocol cleverness — for most of the system's
//! throughput. Each [`node::ReplicaRuntime`] realizes that pipeline:
//!
//! ```text
//! transport ─▶ input ─▶ [verify ×N] ─▶ worker ─▶ execute ─▶ ledger
//!                                        │
//!                                        └─────▶ output ─▶ transport
//! ```
//!
//! * the **input thread** receives envelopes from the transport and feeds
//!   the verification queue (Figure 9 "input");
//! * a pool of **verifier threads** ([`pipeline::PipelineConfig`]
//!   `verifier_threads`, default sized to the host's cores) drains that
//!   queue in batches and runs
//!   the pure signature/MAC checks that `rdb-consensus` factors out as
//!   [`rdb_consensus::stage::VerifiedMessage`]. Malformed traffic dies
//!   here (§2.1); the worker never sees it (Figure 9 "batching");
//! * the **worker thread** owns the protocol state machine and timers —
//!   ordering only. It runs on a
//!   [`rdb_consensus::crypto_ctx::CryptoCtx::preverified`] context, so it
//!   spends no cycles re-checking signatures (Figure 9 "worker/certify");
//! * the **execution thread** applies finalized decisions to the
//!   replica's `rdb-store` table and appends them to the `rdb-ledger`
//!   chain, off the consensus critical path (Figure 9 "execute");
//! * the **checkpoint thread** (when enabled via
//!   [`pipeline::CheckpointConfig`] /
//!   [`deployment::DeploymentBuilder::checkpoint_interval`]) certifies
//!   the execution stage's table digest against peers every interval of
//!   decisions and compacts the stable ledger prefix behind a recovery
//!   anchor (§2.2 checkpoints as their own pipeline stage). Its queue is
//!   Block-policy by design: a backlogged checkpoint stage throttles
//!   execution, bounding exec-to-stable lag — see [`queue`];
//! * the **output thread** drains outgoing messages to the transport, so
//!   network pressure never stalls consensus processing (Figure 9
//!   "output").
//!
//! Every stage hand-off is counted in [`metrics::Metrics`]: per-stage
//! `enqueued` / `processed` / `dropped` counters (their difference is the
//! live queue depth) and accumulated busy time, exposed as
//! [`metrics::StageSnapshot`] on every [`deployment::DeploymentReport`].
//! `rdb-simnet` models the *same* stage layout in virtual time
//! (`ComputeModel::pipeline`), so simulated and real runs share one
//! pipeline abstraction end to end.
//!
//! ## Bounded queues and backpressure
//!
//! Every inter-stage channel is **bounded** ([`queue::StageQueues`],
//! derived from batch size and verifier fan-out, overridable per stage on
//! the [`deployment::DeploymentBuilder`]): at the bound, droppable
//! consensus traffic is *shed* (counted per stage) while client
//! `Request`s *block* their submitter, propagating admission control from
//! an overloaded replica all the way back to the client thread. Per-stage
//! `shed` counts and `blocked_ns` in [`metrics::StageSnapshot`] make the
//! overload behavior observable; see [`queue`] for the full policy
//! rationale (including why this is deadlock-free).
//!
//! ## The client service API
//!
//! The fabric is a *service* (§2.1), not just a benchmark: clients
//! submit transactions and receive the result of execution once `f + 1`
//! replicas attest to the same outcome. [`service`] is that surface:
//!
//! ```text
//! DeploymentBuilder::start() ─▶ Fabric ──▶ session(cluster) ─▶ ClientSession
//!                                 │                               │ submit(ops)
//!                                 │                               ▼
//!                                 │            Ticket ── wait() ─▶ CommitProof
//!                                 └─ shutdown() ─▶ DeploymentReport
//! ```
//!
//! [`service::ClientSession::submit`] signs a batch and sends it through
//! the replica's bounded input queue (a client `Request` is
//! non-droppable, so an overloaded fabric *blocks the submitting
//! thread* — admission control for free); the returned
//! [`service::Ticket`] resolves to a [`service::CommitProof`] carrying
//! the agreed log position, ledger height, result digest, the attesting
//! replicas, and the per-transaction results — so a `Read` returns the
//! committed value end-to-end.
//!
//! The classic closed-loop YCSB harness is a thin driver over the same
//! API: [`deployment::DeploymentBuilder::run`] ≡ `start()` +
//! [`service::Fabric::spawn_ycsb_clients`] + sleep +
//! [`service::Fabric::shutdown`], reporting client-observed
//! throughput/latency, per-stage pipeline counters and per-replica
//! ledgers exactly as before.

pub mod deployment;
pub mod metrics;
pub mod node;
pub mod pipeline;
pub mod queue;
pub mod service;
pub mod socket;
pub mod storage;
pub mod transport;

pub use deployment::{DeploymentBuilder, DeploymentReport, TransportMode};
pub use metrics::{
    LaneRow, LinkRow, Metrics, NetSnapshot, StageRow, StageSnapshot, StorageSnapshot,
};
pub use node::{ClientRuntime, ReplicaRuntime, ReplicaStopReport};
pub use pipeline::{CheckpointConfig, CheckpointReport, PipelineConfig, VerifyCtx};
pub use queue::{Overload, QueuePolicy, StageQueues};
pub use service::{ClientSession, CommitProof, Fabric, Ticket};
pub use socket::{SocketKind, SocketTransport, WireAddr};
pub use storage::{Manifest, SharedBackend, StorageMode};
pub use transport::{Envelope, InProcTransport, Transport, TransportHandle, TransportSender};
