//! # resilientdb
//!
//! The ResilientDB fabric (§3 of the paper): a multi-threaded, pipelined
//! runtime that executes the consensus state machines of `rdb-consensus`
//! on real OS threads over a pluggable transport, maintains the
//! blockchain ledger, and serves closed-loop clients.
//!
//! The paper's Figure 9 architecture associates input threads, a batching
//! thread, worker/certify/execute threads and output threads with every
//! replica. This implementation keeps that pipeline shape per node:
//!
//! * an **input thread** receives envelopes from the transport and feeds
//!   the work queue,
//! * a **worker thread** owns the protocol state machine (worker, certify
//!   and execute stages of Figure 9 — the sans-io state machines already
//!   integrate certification and execution), fires timers, and appends
//!   finalized decisions to the node's ledger,
//! * an **output thread** drains outgoing messages to the transport, so
//!   network pressure never stalls consensus processing.
//!
//! Clients run the same way on their own threads. The
//! [`deployment::DeploymentBuilder`] assembles a full system in-process —
//! with real signatures, real execution against the YCSB store, and
//! optionally injected WAN delays — and reports client-observed
//! throughput/latency plus per-replica ledgers.

pub mod deployment;
pub mod metrics;
pub mod node;
pub mod transport;

pub use deployment::{DeploymentBuilder, DeploymentReport};
pub use metrics::Metrics;
pub use node::{ClientRuntime, ReplicaRuntime};
pub use transport::{Envelope, InProcTransport, TransportHandle};
