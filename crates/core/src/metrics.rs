//! Shared runtime metrics collected across node and client threads.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Deployment-wide counters. Cheap to clone (all state shared).
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Arc<Inner>,
}

#[derive(Default)]
struct Inner {
    completed_batches: AtomicU64,
    completed_txns: AtomicU64,
    decided: AtomicU64,
    messages_sent: AtomicU64,
    latencies_ns: Mutex<Vec<u64>>,
}

impl Metrics {
    /// Fresh metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record a completed client batch.
    pub fn record_completion(&self, txns: usize, latency: Duration) {
        self.inner.completed_batches.fetch_add(1, Ordering::Relaxed);
        self.inner
            .completed_txns
            .fetch_add(txns as u64, Ordering::Relaxed);
        self.inner
            .latencies_ns
            .lock()
            .push(latency.as_nanos() as u64);
    }

    /// Record a replica decision.
    pub fn record_decision(&self) {
        self.inner.decided.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an outgoing message.
    pub fn record_message(&self) {
        self.inner.messages_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Completed client batches.
    pub fn completed_batches(&self) -> u64 {
        self.inner.completed_batches.load(Ordering::Relaxed)
    }

    /// Completed transactions.
    pub fn completed_txns(&self) -> u64 {
        self.inner.completed_txns.load(Ordering::Relaxed)
    }

    /// Replica decisions (across all replicas).
    pub fn decided(&self) -> u64 {
        self.inner.decided.load(Ordering::Relaxed)
    }

    /// Messages sent through the transport.
    pub fn messages_sent(&self) -> u64 {
        self.inner.messages_sent.load(Ordering::Relaxed)
    }

    /// Mean completion latency.
    pub fn avg_latency(&self) -> Duration {
        let v = self.inner.latencies_ns.lock();
        if v.is_empty() {
            Duration::ZERO
        } else {
            Duration::from_nanos(v.iter().sum::<u64>() / v.len() as u64)
        }
    }

    /// Latency percentile in [0, 1].
    pub fn latency_percentile(&self, p: f64) -> Duration {
        let mut v = self.inner.latencies_ns.lock().clone();
        if v.is_empty() {
            return Duration::ZERO;
        }
        v.sort_unstable();
        let idx = ((v.len() as f64 - 1.0) * p).round() as usize;
        Duration::from_nanos(v[idx.min(v.len() - 1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.record_completion(100, Duration::from_millis(10));
        m.record_completion(100, Duration::from_millis(30));
        m.record_decision();
        m.record_message();
        assert_eq!(m.completed_batches(), 2);
        assert_eq!(m.completed_txns(), 200);
        assert_eq!(m.decided(), 1);
        assert_eq!(m.messages_sent(), 1);
        assert_eq!(m.avg_latency(), Duration::from_millis(20));
        assert_eq!(m.latency_percentile(1.0), Duration::from_millis(30));
    }

    #[test]
    fn empty_latency_is_zero() {
        let m = Metrics::new();
        assert_eq!(m.avg_latency(), Duration::ZERO);
        assert_eq!(m.latency_percentile(0.5), Duration::ZERO);
    }

    #[test]
    fn clones_share_state() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.record_decision();
        assert_eq!(m.decided(), 1);
    }
}
