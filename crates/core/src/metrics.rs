//! Shared runtime metrics collected across node and client threads,
//! including per-stage pipeline counters (paper Figure 9).
//!
//! Each pipeline stage ([`Stage`]) gets three queue counters — `enqueued`,
//! `processed`, `dropped` — whose difference is the instantaneous queue
//! depth, plus an accumulated busy time. Occupancy (busy time divided by
//! wall-clock and thread count) is what the `pipeline` bench plots against
//! verifier fan-out.
//!
//! Since the stage queues became bounded ([`crate::queue`]), each stage
//! additionally counts its *overload* behavior, attributed to the stage
//! **fed by** the full queue: `shed` is the number of droppable messages
//! dropped at that stage's full queue, and `blocked` (`blocked_ns`) is the
//! accumulated time producers spent parked on it waiting for room — the
//! backpressure actually applied upstream. Shed items are never counted
//! as `enqueued`, so `queue_depth` stays the live backlog.

use parking_lot::Mutex;
use rdb_common::ids::NodeId;
use rdb_consensus::stage::Stage;
use rdb_storage::StorageStats;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Deployment-wide counters. Cheap to clone (all state shared).
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Arc<Inner>,
}

#[derive(Default)]
struct StageCell {
    enqueued: AtomicU64,
    processed: AtomicU64,
    dropped: AtomicU64,
    shed: AtomicU64,
    busy_ns: AtomicU64,
    blocked_ns: AtomicU64,
}

struct StageTable([StageCell; Stage::COUNT]);

impl Default for StageTable {
    fn default() -> Self {
        StageTable(std::array::from_fn(|_| StageCell::default()))
    }
}

/// Per-execution-lane counters (see `resilientdb::pipeline`'s lane pool).
/// Lane footprints travel as `u64` bitmasks, so the table is fixed at
/// [`rdb_store::MAX_LANES`] cells; only the first
/// [`Metrics::exec_lanes`] are live.
#[derive(Default)]
struct LaneCell {
    batches: AtomicU64,
    ops: AtomicU64,
    busy_ns: AtomicU64,
    stall_ns: AtomicU64,
}

struct LaneTable([LaneCell; rdb_store::MAX_LANES]);

impl Default for LaneTable {
    fn default() -> Self {
        LaneTable(std::array::from_fn(|_| LaneCell::default()))
    }
}

/// Wire-level counters of one directed `from -> to` link (socket
/// transport only; the in-process transport moves no bytes).
#[derive(Default)]
struct NetCell {
    bytes_out: u64,
    frames_out: u64,
    bytes_in: u64,
    frames_in: u64,
    reconnects: u64,
}

/// Accumulated durable-engine counters (empty for memory deployments).
#[derive(Default)]
struct StorageCell {
    engines: u64,
    stats: StorageStats,
}

#[derive(Default)]
struct Inner {
    completed_batches: AtomicU64,
    completed_txns: AtomicU64,
    decided: AtomicU64,
    messages_sent: AtomicU64,
    latencies_ns: Mutex<Vec<u64>>,
    stages: StageTable,
    lanes: LaneTable,
    exec_lanes: AtomicU64,
    net: Mutex<BTreeMap<(NodeId, NodeId), NetCell>>,
    storage: Mutex<StorageCell>,
}

impl Inner {
    fn cell(&self, stage: Stage) -> &StageCell {
        &self.stages.0[stage.index()]
    }
}

impl Metrics {
    /// Fresh metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record a completed client batch.
    pub fn record_completion(&self, txns: usize, latency: Duration) {
        self.inner.completed_batches.fetch_add(1, Ordering::Relaxed);
        self.inner
            .completed_txns
            .fetch_add(txns as u64, Ordering::Relaxed);
        self.inner
            .latencies_ns
            .lock()
            .push(latency.as_nanos() as u64);
    }

    /// Record a replica decision.
    pub fn record_decision(&self) {
        self.inner.decided.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an outgoing message.
    pub fn record_message(&self) {
        self.inner.messages_sent.fetch_add(1, Ordering::Relaxed);
    }

    // ------------------------------------------------- pipeline stages --

    /// An item entered `stage`'s queue.
    pub fn stage_enqueued(&self, stage: Stage) {
        self.stage_enqueued_many(stage, 1);
    }

    /// `n` items entered `stage`'s queue (batched hot-path accounting).
    pub fn stage_enqueued_many(&self, stage: Stage, n: u64) {
        if n > 0 {
            self.inner
                .cell(stage)
                .enqueued
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// `stage` finished one item after `busy` of work.
    pub fn stage_processed(&self, stage: Stage, busy: Duration) {
        self.stage_batch(stage, 1, 0, busy);
    }

    /// `stage` dropped one item (e.g. a failed signature check).
    pub fn stage_dropped(&self, stage: Stage) {
        self.stage_batch(stage, 0, 1, Duration::ZERO);
    }

    /// One droppable message was shed at `stage`'s full input queue
    /// (never counted as enqueued — the queue rejected it).
    pub fn stage_shed(&self, stage: Stage) {
        self.stage_shed_many(stage, 1);
    }

    /// `n` messages were shed at `stage`'s full input queue.
    pub fn stage_shed_many(&self, stage: Stage, n: u64) {
        if n > 0 {
            self.inner.cell(stage).shed.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// A producer spent `wait` parked on `stage`'s full input queue — the
    /// backpressure the stage applied upstream.
    pub fn stage_blocked(&self, stage: Stage, wait: Duration) {
        let ns = wait.as_nanos() as u64;
        if ns > 0 {
            self.inner
                .cell(stage)
                .blocked_ns
                .fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// `stage` finished a batch: `processed` items passed on, `dropped`
    /// items discarded, `busy` spent on the whole batch.
    pub fn stage_batch(&self, stage: Stage, processed: u64, dropped: u64, busy: Duration) {
        let cell = self.inner.cell(stage);
        if processed > 0 {
            cell.processed.fetch_add(processed, Ordering::Relaxed);
        }
        if dropped > 0 {
            cell.dropped.fetch_add(dropped, Ordering::Relaxed);
        }
        let ns = busy.as_nanos() as u64;
        if ns > 0 {
            cell.busy_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    // ------------------------------------------------ execution lanes --

    /// Declare the execution-lane fan-out (the lane pool calls this once
    /// per replica at spawn; a shared deployment-wide `Metrics` keeps the
    /// maximum, since every replica runs the same lane config).
    pub fn set_exec_lanes(&self, lanes: usize) {
        let lanes = lanes.min(rdb_store::MAX_LANES) as u64;
        self.inner.exec_lanes.fetch_max(lanes, Ordering::Relaxed);
    }

    /// Configured execution-lane fan-out (0 before any lane pool spawned;
    /// sequential executors report 1).
    pub fn exec_lanes(&self) -> usize {
        self.inner.exec_lanes.load(Ordering::Relaxed) as usize
    }

    /// Lane `lane` applied one lane-job of `ops` operations in `busy`.
    pub fn lane_batch(&self, lane: usize, ops: u64, busy: Duration) {
        let cell = &self.inner.lanes.0[lane % rdb_store::MAX_LANES];
        cell.batches.fetch_add(1, Ordering::Relaxed);
        cell.ops.fetch_add(ops, Ordering::Relaxed);
        cell.busy_ns
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    }

    /// The retirement head waited `wait` on every lane in `mask` — the
    /// conflict-stall cost of batches serialized on the same shard(s).
    pub fn lane_stalled(&self, mask: u64, wait: Duration) {
        let ns = wait.as_nanos() as u64;
        if ns == 0 {
            return;
        }
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            self.inner.lanes.0[lane]
                .stall_ns
                .fetch_add(ns, Ordering::Relaxed);
            m &= m - 1;
        }
    }

    // --------------------------------------------------- wire links --

    /// A frame of `bytes` left on the `from -> to` socket link.
    pub fn net_sent(&self, from: NodeId, to: NodeId, bytes: u64) {
        let mut net = self.inner.net.lock();
        let cell = net.entry((from, to)).or_default();
        cell.bytes_out += bytes;
        cell.frames_out += 1;
    }

    /// A frame of `bytes` arrived on the `from -> to` socket link.
    pub fn net_received(&self, from: NodeId, to: NodeId, bytes: u64) {
        let mut net = self.inner.net.lock();
        let cell = net.entry((from, to)).or_default();
        cell.bytes_in += bytes;
        cell.frames_in += 1;
    }

    /// The `from -> to` link re-established its connection after a drop.
    pub fn net_reconnect(&self, from: NodeId, to: NodeId) {
        self.inner
            .net
            .lock()
            .entry((from, to))
            .or_default()
            .reconnects += 1;
    }

    /// Point-in-time copy of every link's wire counters, in `(from, to)`
    /// order (empty for in-process deployments).
    pub fn net_snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            links: self
                .inner
                .net
                .lock()
                .iter()
                .map(|(&(from, to), cell)| LinkRow {
                    from,
                    to,
                    bytes_out: cell.bytes_out,
                    frames_out: cell.frames_out,
                    bytes_in: cell.bytes_in,
                    frames_in: cell.frames_in,
                    reconnects: cell.reconnects,
                })
                .collect(),
        }
    }

    // ------------------------------------------------ durable storage --

    /// Fold one durable engine's cumulative counters into the deployment
    /// totals (called once per engine at fabric shutdown; memory
    /// deployments never call it, so `storage_snapshot` stays empty).
    pub fn storage_merge(&self, stats: &StorageStats) {
        let mut cell = self.inner.storage.lock();
        cell.engines += 1;
        cell.stats.merge(stats);
    }

    /// Point-in-time copy of the accumulated durable-engine counters.
    pub fn storage_snapshot(&self) -> StorageSnapshot {
        let cell = self.inner.storage.lock();
        StorageSnapshot {
            engines: cell.engines,
            stats: cell.stats,
        }
    }

    /// Items currently queued before `stage` (enqueued minus finished).
    pub fn queue_depth(&self, stage: Stage) -> u64 {
        let cell = self.inner.cell(stage);
        cell.enqueued
            .load(Ordering::Relaxed)
            .saturating_sub(cell.processed.load(Ordering::Relaxed))
            .saturating_sub(cell.dropped.load(Ordering::Relaxed))
    }

    /// Accumulated busy time of `stage` across all threads serving it.
    pub fn stage_busy(&self, stage: Stage) -> Duration {
        Duration::from_nanos(self.inner.cell(stage).busy_ns.load(Ordering::Relaxed))
    }

    /// A consistent-enough copy of all per-stage counters.
    pub fn stage_snapshot(&self) -> StageSnapshot {
        StageSnapshot {
            rows: Stage::ALL
                .iter()
                .map(|&stage| {
                    let cell = self.inner.cell(stage);
                    let enqueued = cell.enqueued.load(Ordering::Relaxed);
                    let processed = cell.processed.load(Ordering::Relaxed);
                    let dropped = cell.dropped.load(Ordering::Relaxed);
                    StageRow {
                        stage,
                        enqueued,
                        processed,
                        dropped,
                        shed: cell.shed.load(Ordering::Relaxed),
                        queue_depth: enqueued.saturating_sub(processed).saturating_sub(dropped),
                        busy: Duration::from_nanos(cell.busy_ns.load(Ordering::Relaxed)),
                        blocked: Duration::from_nanos(cell.blocked_ns.load(Ordering::Relaxed)),
                    }
                })
                .collect(),
            lanes: self.inner.lanes.0[..self.exec_lanes()]
                .iter()
                .enumerate()
                .map(|(lane, cell)| LaneRow {
                    lane,
                    batches: cell.batches.load(Ordering::Relaxed),
                    ops: cell.ops.load(Ordering::Relaxed),
                    busy: Duration::from_nanos(cell.busy_ns.load(Ordering::Relaxed)),
                    stalled: Duration::from_nanos(cell.stall_ns.load(Ordering::Relaxed)),
                })
                .collect(),
        }
    }

    // ----------------------------------------------------- aggregates --

    /// Completed client batches.
    pub fn completed_batches(&self) -> u64 {
        self.inner.completed_batches.load(Ordering::Relaxed)
    }

    /// Completed transactions.
    pub fn completed_txns(&self) -> u64 {
        self.inner.completed_txns.load(Ordering::Relaxed)
    }

    /// Replica decisions (across all replicas).
    pub fn decided(&self) -> u64 {
        self.inner.decided.load(Ordering::Relaxed)
    }

    /// Messages sent through the transport.
    pub fn messages_sent(&self) -> u64 {
        self.inner.messages_sent.load(Ordering::Relaxed)
    }

    /// Mean completion latency.
    pub fn avg_latency(&self) -> Duration {
        let v = self.inner.latencies_ns.lock();
        if v.is_empty() {
            Duration::ZERO
        } else {
            Duration::from_nanos(v.iter().sum::<u64>() / v.len() as u64)
        }
    }

    /// Latency percentile in [0, 1].
    pub fn latency_percentile(&self, p: f64) -> Duration {
        let mut v = self.inner.latencies_ns.lock().clone();
        if v.is_empty() {
            return Duration::ZERO;
        }
        v.sort_unstable();
        let idx = ((v.len() as f64 - 1.0) * p).round() as usize;
        Duration::from_nanos(v[idx.min(v.len() - 1)])
    }
}

/// Point-in-time copy of every stage's counters.
#[derive(Debug, Clone)]
pub struct StageSnapshot {
    /// One row per [`Stage`], in pipeline order.
    pub rows: Vec<StageRow>,
    /// One row per execution lane (empty until a lane pool — or the
    /// sequential executor, which reports as one lane — has spawned).
    pub lanes: Vec<LaneRow>,
}

impl StageSnapshot {
    /// The row for `stage`.
    pub fn row(&self, stage: Stage) -> &StageRow {
        &self.rows[stage.index()]
    }

    /// One-line summary (stage: processed/dropped/shed/depth busy,
    /// blocked time when any producer actually waited).
    pub fn summary(&self) -> String {
        self.rows
            .iter()
            .map(|r| {
                let mut s = format!(
                    "{}: {}p/{}d/{}s q={} busy={:?}",
                    r.stage.label(),
                    r.processed,
                    r.dropped,
                    r.shed,
                    r.queue_depth,
                    r.busy
                );
                if !r.blocked.is_zero() {
                    s.push_str(&format!(" blocked={:?}", r.blocked));
                }
                s
            })
            .collect::<Vec<_>>()
            .join(" | ")
    }

    /// One-line per-lane summary (empty string when no lane pool ran).
    pub fn lane_summary(&self) -> String {
        self.lanes
            .iter()
            .map(|l| {
                let mut s = format!(
                    "lane{}: {}b/{}ops busy={:?}",
                    l.lane, l.batches, l.ops, l.busy
                );
                if !l.stalled.is_zero() {
                    s.push_str(&format!(" stalled={:?}", l.stalled));
                }
                s
            })
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

/// Accumulated durable-storage activity across every engine a deployment
/// ran (one engine per replica). `engines == 0` for memory deployments —
/// the repro paths never pay for, or report, durability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageSnapshot {
    /// Number of durable engines whose counters were folded in.
    pub engines: u64,
    /// Summed [`StorageStats`] over those engines: puts/deletes, WAL
    /// records and bytes, flushes, run bytes, compactions, and the
    /// recovery counters (keys recovered, torn WAL bytes truncated).
    pub stats: StorageStats,
}

impl StorageSnapshot {
    /// One-line summary (empty string for memory deployments).
    pub fn summary(&self) -> String {
        if self.engines == 0 {
            return String::new();
        }
        format!(
            "storage: {} engines, {} puts, {} wal records ({} B), {} flushes ({} B runs), {} compactions",
            self.engines,
            self.stats.puts,
            self.stats.wal_records,
            self.stats.wal_bytes,
            self.stats.flushes,
            self.stats.run_bytes,
            self.stats.compactions,
        )
    }
}

/// Point-in-time copy of every socket link's wire counters. Empty for
/// in-process deployments, which move envelopes over channels, not bytes.
#[derive(Debug, Clone, Default)]
pub struct NetSnapshot {
    /// One row per directed link that carried (or attempted) traffic,
    /// sorted by `(from, to)`.
    pub links: Vec<LinkRow>,
}

impl NetSnapshot {
    /// Total bytes written across all links.
    pub fn total_bytes_out(&self) -> u64 {
        self.links.iter().map(|l| l.bytes_out).sum()
    }

    /// Total frames written across all links.
    pub fn total_frames_out(&self) -> u64 {
        self.links.iter().map(|l| l.frames_out).sum()
    }

    /// Total reconnects across all links.
    pub fn total_reconnects(&self) -> u64 {
        self.links.iter().map(|l| l.reconnects).sum()
    }

    /// One-line summary (`links=N out=B/F in=B/F reconnects=R`).
    pub fn summary(&self) -> String {
        let (mut bi, mut fi) = (0u64, 0u64);
        for l in &self.links {
            bi += l.bytes_in;
            fi += l.frames_in;
        }
        format!(
            "links={} out={}B/{}f in={}B/{}f reconnects={}",
            self.links.len(),
            self.total_bytes_out(),
            self.total_frames_out(),
            bi,
            fi,
            self.total_reconnects()
        )
    }
}

/// Wire counters of one directed `from -> to` socket link.
#[derive(Debug, Clone)]
pub struct LinkRow {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Bytes written by the sender (frame bytes, including headers).
    pub bytes_out: u64,
    /// Frames written by the sender.
    pub frames_out: u64,
    /// Bytes decoded by the receiver.
    pub bytes_in: u64,
    /// Frames decoded by the receiver.
    pub frames_in: u64,
    /// Times the sender re-established the connection after a drop.
    pub reconnects: u64,
}

/// Counters of one stage.
#[derive(Debug, Clone)]
pub struct StageRow {
    /// Which stage.
    pub stage: Stage,
    /// Items that entered the stage's queue.
    pub enqueued: u64,
    /// Items the stage finished and passed downstream.
    pub processed: u64,
    /// Items the stage discarded (failed verification).
    pub dropped: u64,
    /// Droppable messages shed at this stage's full bounded queue
    /// (overload policy [`crate::queue::Overload::Shed`]); never counted
    /// in `enqueued`.
    pub shed: u64,
    /// Items still queued at snapshot time.
    pub queue_depth: u64,
    /// Accumulated busy time across the stage's threads.
    pub busy: Duration,
    /// Accumulated time producers spent blocked on this stage's full
    /// queue — the backpressure applied upstream.
    pub blocked: Duration,
}

impl StageRow {
    /// Fraction of `elapsed` this stage was busy, per serving thread.
    pub fn occupancy(&self, elapsed: Duration, threads: usize) -> f64 {
        if elapsed.is_zero() || threads == 0 {
            return 0.0;
        }
        self.busy.as_secs_f64() / (elapsed.as_secs_f64() * threads as f64)
    }
}

/// Counters of one execution lane.
#[derive(Debug, Clone)]
pub struct LaneRow {
    /// Lane index (key `k` executes on lane `k % lanes`).
    pub lane: usize,
    /// Lane-jobs (per-decision work lists) this lane applied.
    pub batches: u64,
    /// Operations this lane applied.
    pub ops: u64,
    /// Accumulated apply time on the lane thread.
    pub busy: Duration,
    /// Accumulated time the commit-order retirement head spent waiting on
    /// this lane — conflict-stall from batches serialized on its shards.
    pub stalled: Duration,
}

impl LaneRow {
    /// Fraction of `elapsed` this lane's thread spent applying.
    pub fn occupancy(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.busy.as_secs_f64() / elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.record_completion(100, Duration::from_millis(10));
        m.record_completion(100, Duration::from_millis(30));
        m.record_decision();
        m.record_message();
        assert_eq!(m.completed_batches(), 2);
        assert_eq!(m.completed_txns(), 200);
        assert_eq!(m.decided(), 1);
        assert_eq!(m.messages_sent(), 1);
        assert_eq!(m.avg_latency(), Duration::from_millis(20));
        assert_eq!(m.latency_percentile(1.0), Duration::from_millis(30));
    }

    #[test]
    fn empty_latency_is_zero() {
        let m = Metrics::new();
        assert_eq!(m.avg_latency(), Duration::ZERO);
        assert_eq!(m.latency_percentile(0.5), Duration::ZERO);
    }

    #[test]
    fn clones_share_state() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.record_decision();
        assert_eq!(m.decided(), 1);
    }

    #[test]
    fn stage_counters_track_depth_and_busy() {
        let m = Metrics::new();
        for _ in 0..5 {
            m.stage_enqueued(Stage::Verify);
        }
        m.stage_processed(Stage::Verify, Duration::from_micros(50));
        m.stage_processed(Stage::Verify, Duration::from_micros(30));
        m.stage_dropped(Stage::Verify);
        assert_eq!(m.queue_depth(Stage::Verify), 2);
        assert_eq!(m.stage_busy(Stage::Verify), Duration::from_micros(80));
        let snap = m.stage_snapshot();
        let row = snap.row(Stage::Verify);
        assert_eq!(row.enqueued, 5);
        assert_eq!(row.processed, 2);
        assert_eq!(row.dropped, 1);
        assert_eq!(row.queue_depth, 2);
        // Untouched stages stay zero.
        assert_eq!(snap.row(Stage::Execute).enqueued, 0);
        assert!(!snap.summary().is_empty());
    }

    #[test]
    fn overload_counters_track_shed_and_blocked() {
        let m = Metrics::new();
        m.stage_shed(Stage::Input);
        m.stage_shed_many(Stage::Input, 3);
        m.stage_blocked(Stage::Input, Duration::from_micros(40));
        m.stage_blocked(Stage::Input, Duration::from_micros(60));
        let snap = m.stage_snapshot();
        let row = snap.row(Stage::Input);
        assert_eq!(row.shed, 4);
        assert_eq!(row.blocked, Duration::from_micros(100));
        // Shed items never entered the queue: depth is untouched.
        assert_eq!(row.queue_depth, 0);
        assert!(snap.summary().contains("blocked"));
        // Stages that never overloaded report zero.
        assert_eq!(snap.row(Stage::Order).shed, 0);
        assert_eq!(snap.row(Stage::Order).blocked, Duration::ZERO);
    }

    #[test]
    fn net_counters_aggregate_per_link() {
        use rdb_common::ids::ReplicaId;
        let m = Metrics::new();
        let a: NodeId = ReplicaId::new(0, 0).into();
        let b: NodeId = ReplicaId::new(0, 1).into();
        assert!(m.net_snapshot().links.is_empty());
        m.net_sent(a, b, 100);
        m.net_sent(a, b, 50);
        m.net_received(a, b, 100);
        m.net_reconnect(a, b);
        m.net_sent(b, a, 10);
        let snap = m.net_snapshot();
        assert_eq!(snap.links.len(), 2);
        let ab = snap
            .links
            .iter()
            .find(|l| l.from == a && l.to == b)
            .unwrap();
        assert_eq!(ab.bytes_out, 150);
        assert_eq!(ab.frames_out, 2);
        assert_eq!(ab.bytes_in, 100);
        assert_eq!(ab.frames_in, 1);
        assert_eq!(ab.reconnects, 1);
        assert_eq!(snap.total_bytes_out(), 160);
        assert_eq!(snap.total_frames_out(), 3);
        assert_eq!(snap.total_reconnects(), 1);
        assert!(snap.summary().contains("links=2"));
    }

    #[test]
    fn storage_counters_merge_per_engine() {
        let m = Metrics::new();
        assert_eq!(m.storage_snapshot().engines, 0);
        assert!(m.storage_snapshot().summary().is_empty());
        let a = StorageStats {
            puts: 10,
            wal_records: 2,
            ..StorageStats::default()
        };
        let b = StorageStats {
            puts: 5,
            flushes: 1,
            ..StorageStats::default()
        };
        m.storage_merge(&a);
        m.storage_merge(&b);
        let snap = m.storage_snapshot();
        assert_eq!(snap.engines, 2);
        assert_eq!(snap.stats.puts, 15);
        assert_eq!(snap.stats.wal_records, 2);
        assert_eq!(snap.stats.flushes, 1);
        assert!(snap.summary().contains("2 engines"));
    }

    #[test]
    fn occupancy_normalizes_by_threads() {
        let m = Metrics::new();
        m.stage_batch(Stage::Order, 10, 0, Duration::from_millis(500));
        let row = m.stage_snapshot().row(Stage::Order).clone();
        let one = row.occupancy(Duration::from_secs(1), 1);
        let two = row.occupancy(Duration::from_secs(1), 2);
        assert!((one - 0.5).abs() < 1e-9);
        assert!((two - 0.25).abs() < 1e-9);
        assert_eq!(row.occupancy(Duration::ZERO, 1), 0.0);
    }
}
