//! The client service API: a live fabric handle plus open-loop client
//! sessions with submit → await → read-back semantics.
//!
//! The paper's fabric is a *service* (§2.1): clients hand it transactions
//! and receive the result of execution once `f + 1` replicas attest to
//! the same outcome. This module turns the in-process deployment from a
//! closed black box (`DeploymentBuilder::run()` and a report) into that
//! service:
//!
//! * [`crate::DeploymentBuilder::start`] boots the replicas and returns a
//!   live [`Fabric`];
//! * [`Fabric::session`] mints an open-loop [`ClientSession`] bound to
//!   one cluster;
//! * [`ClientSession::submit`] signs a batch of [`Operation`]s and sends
//!   it through the replica's *bounded input queue* — a client `Request`
//!   is non-droppable and blocks the submitter at the bound, so the
//!   pipeline's admission control applies to API traffic for free
//!   (see [`crate::queue`]);
//! * the returned [`Ticket`] resolves to a [`CommitProof`] once `f + 1`
//!   replicas reported byte-identical results — including the
//!   per-transaction [`rdb_store::ExecOutcome`]s, so a `Read` returns
//!   the actual committed value, not just a digest;
//! * [`Fabric::shutdown`] stops everything and returns the familiar
//!   [`crate::DeploymentReport`].
//!
//! The closed-loop YCSB harness is a thin driver over the same surface:
//! `run()` ≡ `start()` + [`Fabric::spawn_ycsb_clients`] + sleep +
//! `shutdown()`.
//!
//! ## Trust model of a ticket
//!
//! A ticket completes only when [`reply_quorum`](rdb_consensus::registry::reply_quorum)
//! distinct replicas reported the same `(seq, block height, result
//! digest)` triple — with at most `f` faulty replicas per cluster, at
//! least one attestor is honest, so the proof's contents are the real
//! committed outcome (§2.4). Two extra defenses make the carried results
//! trustworthy too:
//!
//! * a reply whose `results` payload does not hash to its claimed
//!   `result_digest` ([`rdb_consensus::exec::result_digest`] over the
//!   *locally known* batch digest) is discarded as forged before it can
//!   vote, and
//! * each replica gets exactly one vote per ticket, so `f` colluding
//!   replicas can never assemble an `f + 1` quorum by themselves.

use crate::metrics::Metrics;
use crate::node::{ClientRuntime, ReplicaRuntime};
use crate::pipeline::PipelineConfig;
use crate::transport::{Envelope, Transport, TransportSender};
use crossbeam::channel::{Receiver, RecvTimeoutError};
use parking_lot::{Condvar, Mutex};
use rdb_common::config::SystemConfig;
use rdb_common::ids::{ClientId, ClusterId, NodeId, ReplicaId};
use rdb_common::time::SimDuration;
use rdb_consensus::clients::{entry_target, retry_targets, TargetPolicy};
use rdb_consensus::config::{ProtocolConfig, ProtocolKind};
use rdb_consensus::crypto_ctx::CryptoCtx;
use rdb_consensus::exec::result_digest;
use rdb_consensus::messages::Message;
use rdb_consensus::registry;
use rdb_consensus::types::{ClientBatch, SignedBatch, Transaction};
use rdb_crypto::digest::Digest;
use rdb_crypto::sign::KeyStore;
use rdb_storage::StorageBackend;
use rdb_store::{Operation, TxnEffect};
use rdb_workload::ycsb::{batch_source, YcsbConfig};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Session client indices start here, far above any closed-loop harness
/// client (`u32::MAX` stays reserved for the primaries' no-op batches).
const SESSION_INDEX_BASE: u32 = 1 << 30;

/// Evidence that a submitted batch committed: the agreed log position and
/// execution outcome, attested by a reply quorum (`f + 1` matching
/// replies, §2.4 — at least one of which is from a non-faulty replica).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitProof {
    /// The log position (consensus sequence number / GeoBFT round) the
    /// batch committed at.
    pub seq: u64,
    /// Ledger height of the block carrying the batch.
    pub block_height: u64,
    /// Digest of the execution effect the quorum agreed on.
    pub result_digest: Digest,
    /// The replicas whose matching replies formed the quorum, in arrival
    /// order.
    pub attesting_replicas: Vec<ReplicaId>,
    /// Per-transaction execution outcomes, in submission order: reads
    /// carry the committed values ([`rdb_store::ExecOutcome::ReadValue`]),
    /// read-modify-writes their post-increment counters. Validated
    /// against `result_digest`, so the payload is as trustworthy as the
    /// digest quorum itself.
    pub results: TxnEffect,
}

impl CommitProof {
    /// Number of distinct replicas that attested to this outcome.
    pub fn quorum_size(&self) -> usize {
        self.attesting_replicas.len()
    }
}

/// (log seq, block height, result digest) — replies vote on the whole
/// triple, so a forged height or sequence number can no more complete a
/// ticket than a forged result.
type ProofKey = (u64, u64, Digest);

enum TicketState {
    Pending,
    Committed(CommitProof),
    Aborted(&'static str),
}

struct TicketCell {
    state: Mutex<TicketState>,
    cv: Condvar,
}

impl TicketCell {
    fn new() -> TicketCell {
        TicketCell {
            state: Mutex::new(TicketState::Pending),
            cv: Condvar::new(),
        }
    }

    fn resolve(&self, state: TicketState) {
        let mut s = self.state.lock();
        if matches!(*s, TicketState::Pending) {
            *s = state;
            self.cv.notify_all();
        }
    }
}

/// A submitted-but-unresolved batch: the handle [`ClientSession::submit`]
/// returns. Resolves once the session gathered the reply quorum.
pub struct Ticket {
    /// Session-local batch sequence number of the submission.
    batch_seq: u64,
    cell: Arc<TicketCell>,
}

impl Ticket {
    /// The session-local batch sequence number this ticket tracks.
    pub fn batch_seq(&self) -> u64 {
        self.batch_seq
    }

    /// Block until the batch commits and return its proof.
    ///
    /// # Panics
    ///
    /// Panics if the fabric was shut down while the ticket was still
    /// pending — resolve tickets before calling [`Fabric::shutdown`]
    /// (or use [`Ticket::wait_timeout`] to keep control).
    pub fn wait(self) -> CommitProof {
        let mut state = self.cell.state.lock();
        loop {
            match &*state {
                TicketState::Pending => self.cell.cv.wait(&mut state),
                TicketState::Committed(proof) => return proof.clone(),
                TicketState::Aborted(reason) => panic!("ticket aborted: {reason}"),
            }
        }
    }

    /// Like [`Ticket::wait`], giving up after `timeout`. Returns `None`
    /// on timeout or if the fabric shut down with the ticket pending —
    /// poll [`Ticket::aborted`] to tell the two apart.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<CommitProof> {
        let deadline = Instant::now() + timeout;
        let mut state = self.cell.state.lock();
        loop {
            match &*state {
                TicketState::Committed(proof) => return Some(proof.clone()),
                TicketState::Aborted(_) => return None,
                TicketState::Pending => {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return None;
                    }
                    self.cell.cv.wait_for(&mut state, left);
                }
            }
        }
    }

    /// Non-blocking probe: the proof if the batch already committed.
    /// `None` means pending *or* aborted — check [`Ticket::aborted`] in
    /// poll loops so they can terminate when the ticket is dead.
    pub fn try_wait(&self) -> Option<CommitProof> {
        match &*self.cell.state.lock() {
            TicketState::Committed(proof) => Some(proof.clone()),
            _ => None,
        }
    }

    /// Whether the ticket can no longer resolve (the fabric shut down
    /// with it pending, or the submission raced shutdown); `Some` carries
    /// the reason. A ticket that is merely still in flight returns
    /// `None`.
    pub fn aborted(&self) -> Option<&'static str> {
        match &*self.cell.state.lock() {
            TicketState::Aborted(reason) => Some(reason),
            _ => None,
        }
    }
}

/// Reply bookkeeping for one in-flight ticket — the quorum logic, kept
/// free of I/O so the Byzantine-reply tests can drive it directly.
struct PendingTicket {
    /// The signed batch, kept for retransmission.
    signed: SignedBatch,
    /// Digest of the batch (what honest result digests are bound to).
    batch_digest: Digest,
    /// Replicas that already voted on this ticket (one vote each).
    voted: HashSet<ReplicaId>,
    /// Votes per outcome triple, in arrival order.
    votes: HashMap<ProofKey, Vec<ReplicaId>>,
    /// The validated results payload per outcome triple.
    results: HashMap<ProofKey, TxnEffect>,
    cell: Arc<TicketCell>,
    submitted_at: Instant,
    /// Retransmission schedule (capped exponential back-off).
    next_retry: Instant,
    timeout: SimDuration,
}

impl PendingTicket {
    fn new(signed: SignedBatch, cell: Arc<TicketCell>, retry: SimDuration) -> PendingTicket {
        let now = Instant::now();
        PendingTicket {
            batch_digest: signed.digest(),
            signed,
            voted: HashSet::new(),
            votes: HashMap::new(),
            results: HashMap::new(),
            cell,
            submitted_at: now,
            next_retry: now + Duration::from_nanos(retry.as_nanos()),
            timeout: retry,
        }
    }

    /// Count one replica's reply; `Some(proof)` when the quorum is
    /// reached. A reply whose `results` payload does not hash to the
    /// claimed digest is forged and discarded *before* it can vote; a
    /// replica that already voted is ignored.
    fn record_reply(
        &mut self,
        replica: ReplicaId,
        key: ProofKey,
        results: TxnEffect,
        quorum: usize,
    ) -> Option<CommitProof> {
        if result_digest(&self.batch_digest, &results) != key.2 {
            return None; // forged results payload
        }
        if !self.voted.insert(replica) {
            return None; // one vote per replica
        }
        let voters = self.votes.entry(key).or_default();
        voters.push(replica);
        self.results.entry(key).or_insert(results);
        if voters.len() < quorum {
            return None;
        }
        Some(CommitProof {
            seq: key.0,
            block_height: key.1,
            result_digest: key.2,
            attesting_replicas: voters.clone(),
            results: self.results.remove(&key).expect("inserted with first vote"),
        })
    }
}

/// Shared state of one session: the submit side (any thread) and the
/// reply pump (one thread per session) meet here.
struct SessionCore {
    id: ClientId,
    cfg: ProtocolConfig,
    policy: TargetPolicy,
    quorum: usize,
    crypto: CryptoCtx,
    sender: TransportSender,
    metrics: Metrics,
    pending: Mutex<HashMap<u64, PendingTicket>>,
    next_batch: AtomicU64,
    next_txn: AtomicU64,
    /// Highest view seen in replies — the primary hint for fresh submits.
    view_hint: AtomicU64,
    stop: AtomicBool,
}

impl SessionCore {
    fn on_envelope(&self, env: Envelope) {
        let NodeId::Replica(replica) = env.from else {
            return;
        };
        match env.msg {
            Message::Reply { data, view } => {
                self.view_hint.fetch_max(view, Ordering::Relaxed);
                if data.client != self.id {
                    return;
                }
                self.record(
                    replica,
                    data.batch_seq,
                    (data.seq, data.block_height, data.result_digest),
                    data.results,
                );
            }
            // Zyzzyva replicas answer with speculative responses instead
            // of replies; the session treats them as attestations for the
            // speculative log position (`reply_quorum` for Zyzzyva is all
            // `n`, i.e. the protocol's fast path). The results payload is
            // validated against the signed result digest like any reply.
            Message::SpecResponse {
                seq,
                batch_seq,
                replica: responder,
                result,
                results,
                ..
            } => {
                if responder != replica {
                    return;
                }
                self.record(replica, batch_seq, (seq, seq, result), results);
            }
            _ => {}
        }
    }

    fn record(&self, replica: ReplicaId, batch_seq: u64, key: ProofKey, results: TxnEffect) {
        let completed = {
            let mut pending = self.pending.lock();
            let Some(ticket) = pending.get_mut(&batch_seq) else {
                return; // unknown or already resolved
            };
            match ticket.record_reply(replica, key, results, self.quorum) {
                Some(proof) => {
                    let ticket = pending.remove(&batch_seq).expect("present");
                    Some((ticket, proof))
                }
                None => None,
            }
        };
        if let Some((ticket, proof)) = completed {
            self.metrics
                .record_completion(ticket.signed.batch.len(), ticket.submitted_at.elapsed());
            ticket.cell.resolve(TicketState::Committed(proof));
        }
    }

    /// Retransmit every overdue in-flight batch (capped exponential
    /// back-off, broadcast like [`rdb_consensus::clients::QuorumClient`]'s
    /// retry so replicas forward to the current primary, §2.2). Runs on
    /// the pump thread, which must never park on a replica's full inbox —
    /// retransmissions go out best-effort via `try_send` and are simply
    /// re-driven at the next back-off if the replica is saturated.
    fn retransmit_due(&self) {
        let now = Instant::now();
        let due: Vec<SignedBatch> = {
            let mut pending = self.pending.lock();
            pending
                .values_mut()
                .filter(|t| now >= t.next_retry)
                .map(|t| {
                    t.timeout = t.timeout.doubled().min(self.cfg.client_retry_cap);
                    t.next_retry = now + Duration::from_nanos(t.timeout.as_nanos());
                    t.signed.clone()
                })
                .collect()
        };
        if due.is_empty() {
            return;
        }
        let targets = retry_targets(self.policy, &self.cfg.system, self.id);
        for signed in due {
            for target in &targets {
                let _ = self
                    .sender
                    .try_send((*target).into(), Message::Request(signed.clone()));
            }
        }
    }

    fn abort_pending(&self, reason: &'static str) {
        for (_, ticket) in self.pending.lock().drain() {
            ticket.cell.resolve(TicketState::Aborted(reason));
        }
    }
}

fn pump_loop(core: &SessionCore, inbox: Receiver<Envelope>) {
    // Retry deadlines have client_retry (seconds) granularity; checking
    // them on a coarse cadence instead of per envelope keeps the hot
    // reply path from scanning the pending map under its lock for every
    // message.
    const RETRY_CHECK_EVERY: Duration = Duration::from_millis(50);
    let mut last_retry_check = Instant::now();
    while !core.stop.load(Ordering::Relaxed) {
        match inbox.recv_timeout(Duration::from_millis(5)) {
            Ok(env) => core.on_envelope(env),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if last_retry_check.elapsed() >= RETRY_CHECK_EVERY {
            last_retry_check = Instant::now();
            core.retransmit_due();
        }
    }
    core.abort_pending("fabric shut down with the ticket unresolved");
}

/// An open-loop client session bound to one cluster. Cheap to clone;
/// [`ClientSession::submit`] is safe to call from many threads at once
/// (each submission gets its own ticket). Minted by [`Fabric::session`];
/// lives until the fabric shuts down.
#[derive(Clone)]
pub struct ClientSession {
    core: Arc<SessionCore>,
}

impl ClientSession {
    /// This session's client identity.
    pub fn id(&self) -> ClientId {
        self.core.id
    }

    /// Sign `ops` as one batch and submit it to the fabric. The send
    /// rides the target replica's bounded input queue: if the replica is
    /// overloaded, this call *blocks* until there is room — the same
    /// admission control the closed-loop harness clients get
    /// (see [`crate::queue`]).
    ///
    /// Returns immediately after admission with a [`Ticket`] that
    /// resolves once `f + 1` replicas attested the same outcome.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty: an empty batch has no outcome to prove.
    pub fn submit(&self, ops: Vec<Operation>) -> Ticket {
        assert!(!ops.is_empty(), "cannot submit an empty batch");
        let core = &self.core;
        let batch_seq = core.next_batch.fetch_add(1, Ordering::Relaxed);
        let base_seq = core.next_txn.fetch_add(ops.len() as u64, Ordering::Relaxed);
        let txns: Vec<Transaction> = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| Transaction {
                client: core.id,
                seq: base_seq + i as u64,
                op,
            })
            .collect();
        let batch = ClientBatch {
            client: core.id,
            batch_seq,
            txns,
        };
        let digest = batch.digest();
        let signed = SignedBatch {
            sig: core.crypto.sign(digest.as_bytes()),
            pubkey: core.crypto.public_key(),
            batch,
        };
        let cell = Arc::new(TicketCell::new());
        // A session outlives its fabric (it is a cheap clonable handle);
        // submitting after shutdown must fail fast, not hang forever on
        // a request nobody will answer.
        if core.stop.load(Ordering::SeqCst) {
            cell.resolve(TicketState::Aborted("session's fabric already shut down"));
            return Ticket { batch_seq, cell };
        }
        // Register the ticket *before* the request leaves, so a reply can
        // never race past an unregistered submission.
        core.pending.lock().insert(
            batch_seq,
            PendingTicket::new(signed.clone(), Arc::clone(&cell), core.cfg.client_retry),
        );
        // Close the race with a concurrent shutdown: `stop` is stored
        // (SeqCst) before the pump is joined and the pending map drained,
        // so either this load sees it — and the insert above is drained
        // by `abort_pending` — or the insert happened early enough for
        // the drain to catch it. Either way the ticket resolves.
        if core.stop.load(Ordering::SeqCst) {
            if let Some(t) = core.pending.lock().remove(&batch_seq) {
                t.cell
                    .resolve(TicketState::Aborted("session's fabric already shut down"));
            }
            return Ticket { batch_seq, cell };
        }
        let target = entry_target(
            core.policy,
            &core.cfg.system,
            core.id,
            core.view_hint.load(Ordering::Relaxed),
        );
        // The admission edge: a Request is non-droppable, so this parks
        // the submitting thread when the replica's input queue is full.
        core.sender.send(target.into(), Message::Request(signed));
        Ticket { batch_seq, cell }
    }

    /// Convenience: submit a single-operation batch.
    pub fn submit_one(&self, op: Operation) -> Ticket {
        self.submit(vec![op])
    }
}

/// A session's runtime half, owned by the fabric: the pump thread and the
/// shared core, joined at shutdown.
pub(crate) struct SessionRuntime {
    core: Arc<SessionCore>,
    pump: JoinHandle<()>,
}

/// A live, running deployment: replicas are up and serving. Mint
/// [`ClientSession`]s with [`Fabric::session`], drive the classic
/// closed-loop YCSB workload with [`Fabric::spawn_ycsb_clients`], and
/// finish with [`Fabric::shutdown`] to collect the
/// [`crate::DeploymentReport`].
pub struct Fabric {
    pub(crate) kind: ProtocolKind,
    pub(crate) system: SystemConfig,
    pub(crate) cfg: ProtocolConfig,
    pub(crate) ycsb: YcsbConfig,
    pub(crate) seed: u64,
    pub(crate) check_sigs: bool,
    pub(crate) pipeline: PipelineConfig,
    pub(crate) metrics: Metrics,
    pub(crate) transport: Transport,
    pub(crate) keystore: KeyStore,
    pub(crate) epoch: Instant,
    pub(crate) replicas: Vec<ReplicaRuntime>,
    pub(crate) clients: Mutex<Vec<ClientRuntime>>,
    pub(crate) sessions: Mutex<Vec<SessionRuntime>>,
    pub(crate) next_ycsb_client: AtomicUsize,
    pub(crate) next_session: AtomicU32,
    pub(crate) crash_threads: Vec<JoinHandle<()>>,
    pub(crate) crashed: Vec<ReplicaId>,
    pub(crate) backends: Vec<(ReplicaId, crate::storage::SharedBackend)>,
}

impl Fabric {
    /// The protocol this deployment runs.
    pub fn kind(&self) -> ProtocolKind {
        self.kind
    }

    /// Reboot a durable deployment from its data directory: read back the
    /// manifest pinned at first boot and [`crate::DeploymentBuilder::start`]
    /// an identically-shaped fabric in
    /// [`crate::StorageMode::Durable`] mode. Every replica whose engine
    /// directory is initialized recovers its table and ledger from disk —
    /// the restarted fabric's ledger heads and state digests equal
    /// whatever the previous incarnation durably committed (protocol
    /// state machines start fresh; recovered history is served, not
    /// resumed).
    pub fn restart_from(path: impl AsRef<std::path::Path>) -> std::io::Result<Fabric> {
        let root = path.as_ref();
        let m = crate::storage::read_manifest(root)?;
        Ok(crate::DeploymentBuilder::new(m.kind, m.z, m.n)
            .batch_size(m.batch_size)
            .records(m.records)
            .seed(m.seed)
            .check_sigs(m.check_sigs)
            .checkpoint_interval(m.checkpoint_interval)
            .storage(crate::StorageMode::Durable(root.to_path_buf()))
            .start())
    }

    /// The deployment shape (clusters, replicas, quorums).
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// Client batches completed so far (closed-loop clients and resolved
    /// session tickets combined) — a cheap liveness probe.
    pub fn completed_batches(&self) -> u64 {
        self.metrics.completed_batches()
    }

    /// Mint an open-loop client session homed in `cluster` (§2: "GeoBFT
    /// assigns each client to a single cluster"; for the global protocols
    /// the cluster only shapes the client's identity). Sessions submit
    /// through the same admission edge as the closed-loop harness and are
    /// torn down by [`Fabric::shutdown`].
    ///
    /// **Zyzzyva caveat**: sessions ride the protocol's speculative fast
    /// path only — a ticket resolves when *all* `n` replicas answer
    /// identically (the paper: "clients in Zyzzyva require identical
    /// responses from all n replicas"). The 2F+1 commit-phase fallback
    /// lives in the bespoke closed-loop `ZyzzyvaClient`, not in sessions,
    /// so under a crashed or faulty replica a Zyzzyva session ticket
    /// never resolves: use [`Ticket::wait_timeout`], or the closed-loop
    /// harness, for Zyzzyva deployments with failures.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is outside the deployment.
    pub fn session(&self, cluster: ClusterId) -> ClientSession {
        assert!(
            cluster.as_usize() < self.system.z(),
            "cluster {cluster:?} outside this {}-cluster deployment",
            self.system.z()
        );
        let index = SESSION_INDEX_BASE + self.next_session.fetch_add(1, Ordering::Relaxed);
        let id = ClientId { cluster, index };
        let signer = self.keystore.register(id.into());
        let crypto = CryptoCtx::new(signer, self.keystore.verifier(), self.check_sigs);
        let (inbox, sender) = self.transport.register(id.into()).split();
        let core = Arc::new(SessionCore {
            id,
            cfg: self.cfg.clone(),
            policy: registry::target_policy(self.kind),
            quorum: registry::reply_quorum(self.kind, &self.cfg),
            crypto,
            sender,
            metrics: self.metrics.clone(),
            pending: Mutex::new(HashMap::new()),
            next_batch: AtomicU64::new(0),
            next_txn: AtomicU64::new(0),
            view_hint: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let pump_core = Arc::clone(&core);
        let pump = std::thread::Builder::new()
            .name(format!("{id}-session"))
            .spawn(move || pump_loop(&pump_core, inbox))
            .expect("spawn session pump thread");
        self.sessions.lock().push(SessionRuntime {
            core: Arc::clone(&core),
            pump,
        });
        ClientSession { core }
    }

    /// Spawn `count` closed-loop YCSB clients, spread round-robin over
    /// the clusters — the paper's benchmark workload, now a plain driver
    /// over the running fabric. Call repeatedly to add load; every client
    /// keeps submitting until [`Fabric::shutdown`].
    pub fn spawn_ycsb_clients(&self, count: usize) {
        let ycsb = self.ycsb.clone();
        self.spawn_source_clients(count, move |cid, seed| {
            batch_source(ycsb.clone(), cid, seed)
        });
    }

    /// Spawn `count` closed-loop clients whose batches come from a custom
    /// per-client source (`factory(client, seed)`), spread round-robin
    /// over the clusters with the *same* client identities and seed the
    /// simulator's `Scenario` assigns — so a deployment driven by the
    /// same factory in both runtimes proposes byte-identical batches.
    /// The scenario harness uses this for SmallBank-style
    /// transaction-program workloads.
    pub fn spawn_source_clients(
        &self,
        count: usize,
        factory: impl Fn(ClientId, u64) -> rdb_consensus::clients::BatchSource,
    ) {
        let z = self.system.z();
        let offset = self.next_ycsb_client.fetch_add(count, Ordering::Relaxed);
        let mut clients = self.clients.lock();
        for i in offset..offset + count {
            let cid = ClientId::new((i % z) as u16, (i / z) as u32);
            let signer = self.keystore.register(cid.into());
            let crypto = CryptoCtx::new(signer, self.keystore.verifier(), self.check_sigs);
            let source = factory(cid, self.seed);
            let protocol = registry::build_client(self.kind, self.cfg.clone(), cid, crypto, source);
            let handle = self.transport.register(cid.into());
            clients.push(ClientRuntime::spawn(
                protocol,
                handle,
                self.metrics.clone(),
                self.epoch,
            ));
        }
    }

    /// Stop every thread of the deployment — sessions first (pending
    /// tickets abort), then the closed-loop clients, then the replica
    /// pipelines, then the crash schedulers — and hand back what the
    /// replicas ended with. Idempotent: both [`Fabric::shutdown`] and
    /// [`Drop`] funnel through here, and a second call finds everything
    /// already drained.
    fn stop_all(&mut self) -> Vec<(NodeId, crate::node::ReplicaStopReport)> {
        // Sessions: stop the pumps so no retransmission races the replica
        // teardown, then fail any still-unresolved ticket loudly.
        let sessions = std::mem::take(&mut *self.sessions.lock());
        for s in &sessions {
            s.core.stop.store(true, Ordering::SeqCst);
        }
        for s in sessions {
            s.pump.join().expect("session pump thread");
            s.core
                .abort_pending("fabric shut down with the ticket unresolved");
        }
        for c in std::mem::take(&mut *self.clients.lock()) {
            c.stop();
        }
        // Two-phase replica stop: signal everyone, then join. See
        // `ReplicaRuntime::signal_stop` for why joining one replica while
        // its peers keep running would skew cross-replica watermarks.
        let replicas = std::mem::take(&mut self.replicas);
        for r in &replicas {
            r.signal_stop();
        }
        let stopped = replicas
            .into_iter()
            .map(|r| {
                let node = r.node();
                (node, r.stop_full())
            })
            .collect();
        for t in std::mem::take(&mut self.crash_threads) {
            let _ = t.join();
        }
        // Durable engines: the executor threads (the WAL writers) are
        // joined, so seal each engine — flush the memtables to runs and
        // fold its counters into the metrics for the report.
        for (_, be) in std::mem::take(&mut self.backends) {
            let mut be = be.lock();
            be.flush().expect("flush durable engine at shutdown");
            self.metrics.storage_merge(&be.stats());
        }
        self.transport.shutdown();
        stopped
    }

    /// Stop everything — sessions first (pending tickets abort), then the
    /// closed-loop clients, then the replica pipelines — and assemble the
    /// run's [`crate::DeploymentReport`].
    pub fn shutdown(mut self) -> crate::DeploymentReport {
        let mut ledgers = HashMap::new();
        let mut exec_state_digests = HashMap::new();
        let mut checkpoints = HashMap::new();
        for (node, stopped) in self.stop_all() {
            if let NodeId::Replica(rid) = node {
                ledgers.insert(rid, stopped.ledger);
                exec_state_digests.insert(rid, stopped.exec_digest);
                if let Some(ckpt) = stopped.checkpoint {
                    checkpoints.insert(rid, ckpt);
                }
            }
        }

        let elapsed = self.epoch.elapsed();
        let metrics = &self.metrics;
        crate::DeploymentReport {
            kind: self.kind,
            system: self.system.clone(),
            crypto_sample: None,
            pipeline: self.pipeline,
            stages: metrics.stage_snapshot(),
            elapsed,
            throughput_txn_s: metrics.completed_txns() as f64 / elapsed.as_secs_f64(),
            completed_batches: metrics.completed_batches(),
            completed_txns: metrics.completed_txns(),
            decided: metrics.decided(),
            messages_sent: metrics.messages_sent(),
            avg_latency: metrics.avg_latency(),
            p99_latency: metrics.latency_percentile(0.99),
            net: metrics.net_snapshot(),
            storage: metrics.storage_snapshot(),
            ledgers,
            exec_state_digests,
            checkpoints,
            crashed: std::mem::take(&mut self.crashed),
        }
    }
}

impl Drop for Fabric {
    /// A fabric dropped without [`Fabric::shutdown`] still tears the
    /// deployment down — replica pipelines, session pumps and crash
    /// schedulers are joined, not leaked. (After `shutdown` this is a
    /// no-op: everything was already drained.)
    fn drop(&mut self) {
        let _ = self.stop_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_store::{ExecOutcome, Value};

    fn signed_batch() -> SignedBatch {
        let client = ClientId::new(0, SESSION_INDEX_BASE);
        SignedBatch {
            batch: ClientBatch {
                client,
                batch_seq: 0,
                txns: vec![
                    Transaction {
                        client,
                        seq: 0,
                        op: Operation::Write {
                            key: 1,
                            value: Value::from_u64(11),
                        },
                    },
                    Transaction {
                        client,
                        seq: 1,
                        op: Operation::Read { key: 1 },
                    },
                ],
            },
            pubkey: Default::default(),
            sig: Default::default(),
        }
    }

    /// The honest execution outcome of `signed_batch` against any store.
    fn honest_effect() -> TxnEffect {
        TxnEffect {
            outcomes: vec![
                ExecOutcome::Done,
                ExecOutcome::ReadValue(Some(Value::from_u64(11))),
            ],
        }
    }

    fn pending() -> PendingTicket {
        PendingTicket::new(
            signed_batch(),
            Arc::new(TicketCell::new()),
            SimDuration::from_millis(100),
        )
    }

    fn honest_key(t: &PendingTicket) -> ProofKey {
        (7, 7, result_digest(&t.batch_digest, &honest_effect()))
    }

    #[test]
    fn quorum_of_matching_replies_completes_with_proof() {
        let mut t = pending();
        let key = honest_key(&t);
        assert!(t
            .record_reply(ReplicaId::new(0, 0), key, honest_effect(), 2)
            .is_none());
        let proof = t
            .record_reply(ReplicaId::new(0, 1), key, honest_effect(), 2)
            .expect("second matching reply completes");
        assert_eq!(proof.seq, 7);
        assert_eq!(proof.block_height, 7);
        assert_eq!(
            proof.attesting_replicas,
            vec![ReplicaId::new(0, 0), ReplicaId::new(0, 1)]
        );
        assert_eq!(proof.results, honest_effect());
    }

    #[test]
    fn forged_replies_with_mismatched_digest_never_complete() {
        // f = 1 in a 4-replica cluster, quorum f + 1 = 2: one forged
        // reply (self-consistent but wrong digest) plus one honest reply
        // must not complete, no matter the interleaving.
        let mut t = pending();
        let honest = honest_key(&t);
        let mut forged_results = honest_effect();
        forged_results.outcomes[1] = ExecOutcome::ReadValue(Some(Value::from_u64(666)));
        let forged = (7, 7, result_digest(&t.batch_digest, &forged_results));
        assert_ne!(forged.2, honest.2);

        assert!(t
            .record_reply(ReplicaId::new(0, 3), forged, forged_results.clone(), 2)
            .is_none());
        assert!(t
            .record_reply(ReplicaId::new(0, 0), honest, honest_effect(), 2)
            .is_none());
        // A second forged vote for the same wrong outcome would need a
        // second colluding replica; replica 3 repeating itself is a
        // no-op.
        assert!(t
            .record_reply(ReplicaId::new(0, 3), forged, forged_results, 2)
            .is_none());
        // The honest quorum still completes with the honest outcome.
        let proof = t
            .record_reply(ReplicaId::new(0, 1), honest, honest_effect(), 2)
            .expect("honest quorum");
        assert_eq!(proof.result_digest, honest.2);
        assert_eq!(proof.results, honest_effect());
    }

    #[test]
    fn results_not_hashing_to_their_claimed_digest_are_discarded() {
        // A Byzantine replica votes the *honest* digest but attaches
        // forged read values: the payload/digest mismatch must disqualify
        // the reply entirely (it does not even consume the vote).
        let mut t = pending();
        let honest = honest_key(&t);
        let mut forged_results = honest_effect();
        forged_results.outcomes[1] = ExecOutcome::ReadValue(Some(Value::from_u64(666)));
        assert!(t
            .record_reply(ReplicaId::new(0, 2), honest, forged_results, 2)
            .is_none());
        assert!(t.voted.is_empty(), "forged payload must not vote");
        // Two honest replies complete with the true values.
        t.record_reply(ReplicaId::new(0, 0), honest, honest_effect(), 2);
        let proof = t
            .record_reply(ReplicaId::new(0, 1), honest, honest_effect(), 2)
            .expect("honest quorum unaffected");
        assert_eq!(proof.results, honest_effect());
    }

    #[test]
    fn forged_height_or_seq_cannot_join_the_honest_quorum() {
        // Matching digest but a lying block height is a *different*
        // outcome triple: it neither completes nor pollutes the honest
        // tally.
        let mut t = pending();
        let honest = honest_key(&t);
        let lying_height = (honest.0, honest.1 + 5, honest.2);
        assert!(t
            .record_reply(ReplicaId::new(0, 3), lying_height, honest_effect(), 2)
            .is_none());
        assert!(t
            .record_reply(ReplicaId::new(0, 0), honest, honest_effect(), 2)
            .is_none());
        let proof = t
            .record_reply(ReplicaId::new(0, 1), honest, honest_effect(), 2)
            .expect("two honest replies");
        assert_eq!(proof.block_height, honest.1);
        assert!(!proof.attesting_replicas.contains(&ReplicaId::new(0, 3)));
    }

    #[test]
    fn duplicate_replica_votes_count_once() {
        let mut t = pending();
        let key = honest_key(&t);
        for _ in 0..5 {
            assert!(t
                .record_reply(ReplicaId::new(0, 0), key, honest_effect(), 2)
                .is_none());
        }
        assert_eq!(t.votes[&key].len(), 1);
    }

    #[test]
    fn ticket_wait_timeout_and_try_wait_observe_resolution() {
        let cell = Arc::new(TicketCell::new());
        let ticket = Ticket {
            batch_seq: 0,
            cell: Arc::clone(&cell),
        };
        assert!(ticket.try_wait().is_none());
        assert!(ticket.aborted().is_none(), "pending is not aborted");
        assert!(ticket.wait_timeout(Duration::from_millis(10)).is_none());
        let proof = CommitProof {
            seq: 1,
            block_height: 1,
            result_digest: Digest::ZERO,
            attesting_replicas: vec![ReplicaId::new(0, 0)],
            results: TxnEffect::default(),
        };
        cell.resolve(TicketState::Committed(proof.clone()));
        assert_eq!(ticket.try_wait(), Some(proof.clone()));
        assert_eq!(ticket.wait(), proof);
    }

    #[test]
    fn aborted_tickets_are_distinguishable_from_pending() {
        let cell = Arc::new(TicketCell::new());
        let ticket = Ticket {
            batch_seq: 0,
            cell: Arc::clone(&cell),
        };
        cell.resolve(TicketState::Aborted("gone"));
        // Poll loops terminate on `aborted`, which wait_timeout/try_wait
        // alone cannot signal.
        assert_eq!(ticket.aborted(), Some("gone"));
        assert!(ticket.try_wait().is_none());
        assert!(ticket.wait_timeout(Duration::from_millis(1)).is_none());
    }
}
