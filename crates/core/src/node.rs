//! Node runtimes: the per-replica staged pipeline and the per-client
//! thread loop.
//!
//! A replica runs the full Figure-9 pipeline (see the crate docs):
//! input → verifier pool → ordering worker → execution → output, each on
//! its own OS thread(s), connected by *bounded* MPMC channels sized by
//! [`PipelineConfig::queues`] (see [`crate::queue`] for the overload
//! policies) and metered by per-stage counters in [`Metrics`].

use crate::metrics::Metrics;
use crate::pipeline::{
    spawn_checkpointer, spawn_executor, spawn_verifiers, CheckpointMsg, CheckpointReport,
    PipelineConfig, VerifyCtx,
};
use crate::queue::{send_with_policy, StageQueues};
use crate::transport::TransportHandle;
use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rdb_common::ids::NodeId;
use rdb_common::time::SimTime;
use rdb_consensus::api::{Action, ClientProtocol, Outbox, ReplicaProtocol, TimerKind};
use rdb_consensus::messages::Message;
use rdb_consensus::stage::Stage;
use rdb_consensus::types::Decision;
use rdb_ledger::Ledger;
use rdb_store::KvStore;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Below this size the wheel never bothers compacting.
const WHEEL_MIN_WATERMARK: usize = 64;

/// Timer bookkeeping shared by both runtimes.
///
/// Cancellation is generation-based: cancelling (or re-arming) a kind
/// bumps its generation, orphaning any heap entry carrying the old one.
/// Per-request kinds (`ClientRetry{seq}`, `SpecWindow{seq}`) mint a fresh
/// kind per sequence number, so on long runs the orphaned heap entries and
/// the `gens` slots would otherwise grow without bound; once the
/// structures outgrow a watermark, [`TimerWheel::compact`] rebuilds them
/// keeping only live entries.
struct TimerWheel {
    epoch: Instant,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(Instant, u64, TimerKind)>>,
    gens: HashMap<TimerKind, u64>,
    /// Compact when `heap` or `gens` outgrow this; doubled after each
    /// compaction so the amortized cost stays O(log n) per operation.
    watermark: usize,
}

impl TimerWheel {
    fn new(epoch: Instant) -> TimerWheel {
        TimerWheel {
            epoch,
            heap: std::collections::BinaryHeap::new(),
            gens: HashMap::new(),
            watermark: WHEEL_MIN_WATERMARK,
        }
    }

    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_nanos() as u64)
    }

    /// The virtual time of an already-taken [`Instant`] (hot paths reuse
    /// one clock read for virtual time and busy accounting).
    fn time_of(&self, t: Instant) -> SimTime {
        SimTime(t.saturating_duration_since(self.epoch).as_nanos() as u64)
    }

    fn set(&mut self, kind: TimerKind, after: rdb_common::time::SimDuration) {
        let gen = self.gens.entry(kind).or_insert(0);
        *gen += 1;
        let due = Instant::now() + Duration::from_nanos(after.as_nanos());
        self.heap.push(std::cmp::Reverse((due, *gen, kind)));
        self.maybe_compact();
    }

    fn cancel(&mut self, kind: TimerKind) {
        *self.gens.entry(kind).or_insert(0) += 1;
        self.maybe_compact();
    }

    fn maybe_compact(&mut self) {
        if self.heap.len().max(self.gens.len()) > self.watermark {
            self.compact();
        }
    }

    /// Drop heap entries whose generation is stale, then forget
    /// generations with no remaining heap entry. The latter is safe
    /// exactly because the former ran first: a kind re-armed later
    /// restarts at generation 1 and no orphaned entry that could match it
    /// survives compaction.
    fn compact(&mut self) {
        let gens = &self.gens;
        let live: Vec<_> = std::mem::take(&mut self.heap)
            .into_vec()
            .into_iter()
            .filter(|std::cmp::Reverse((_, gen, kind))| gens.get(kind).copied() == Some(*gen))
            .collect();
        self.heap = live.into();
        let live_kinds: HashSet<TimerKind> = self
            .heap
            .iter()
            .map(|std::cmp::Reverse((_, _, kind))| *kind)
            .collect();
        self.gens.retain(|kind, _| live_kinds.contains(kind));
        self.watermark = (self.heap.len() * 2).max(WHEEL_MIN_WATERMARK);
    }

    /// Pop all due timers whose generation is current.
    fn due(&mut self) -> Vec<TimerKind> {
        let now = Instant::now();
        let mut fired = Vec::new();
        while let Some(std::cmp::Reverse((due, gen, kind))) = self.heap.peek().copied() {
            if due > now {
                break;
            }
            self.heap.pop();
            if self.gens.get(&kind).copied() == Some(gen) {
                fired.push(kind);
            }
        }
        fired
    }

    /// Time until the next (possibly stale) timer.
    fn next_wait(&self) -> Duration {
        match self.heap.peek() {
            Some(std::cmp::Reverse((due, _, _))) => due
                .saturating_duration_since(Instant::now())
                .min(Duration::from_millis(20)),
            None => Duration::from_millis(20),
        }
    }

    #[cfg(test)]
    fn sizes(&self) -> (usize, usize) {
        (self.heap.len(), self.gens.len())
    }
}

/// A running replica: the staged pipeline of paper Figure 9, plus the
/// checkpoint stage off execution (§2.2 checkpoints).
///
/// ```text
/// transport ─▶ inbox ─▶ [verify ×N] ─▶ worker ─▶ execute ─▶ ledger
///   (input)       │                      │           │
///                 │ (ckpt votes)         │           ▼
///                 └──────────▶ checkpoint ◀── snapshot jobs
///                                        │
///                                        └────▶ output ─▶ transport
/// ```
///
/// The transport's delivery into the node's inbox *is* the input stage
/// (in-process there is no socket to drain, so a dedicated forwarding
/// thread would only add a hand-off); the verifier pool consumes the
/// inbox directly. The checkpoint thread exists only when
/// [`crate::pipeline::CheckpointConfig::interval`] is nonzero.
pub struct ReplicaRuntime {
    node: NodeId,
    shutdown: Arc<AtomicBool>,
    verifier_handles: Vec<JoinHandle<()>>,
    worker_handle: JoinHandle<()>,
    exec_handle: JoinHandle<rdb_crypto::digest::Digest>,
    checkpoint_handle: Option<JoinHandle<CheckpointReport>>,
    output_handle: JoinHandle<()>,
    ledger: Arc<Mutex<Ledger>>,
}

/// Everything a stopped replica hands back.
pub struct ReplicaStopReport {
    /// The replica's ledger (compacted behind its recovery anchor when
    /// the checkpoint stage ran).
    pub ledger: Ledger,
    /// State digest of the execution stage's materialized table.
    pub exec_digest: rdb_crypto::digest::Digest,
    /// The checkpoint stage's final state (None when disabled).
    pub checkpoint: Option<CheckpointReport>,
}

impl ReplicaRuntime {
    /// Spawn the pipeline for `protocol` on `handle`.
    ///
    /// `protocol` should be built on a
    /// [`rdb_consensus::crypto_ctx::CryptoCtx::preverified`] context: the
    /// verifier pool (driven by `verify`, the *full* context) has already
    /// checked every signature the worker would otherwise re-check.
    /// `exec_store` is the execution stage's state table (preloaded like
    /// the protocol's own store so state digests line up).
    ///
    /// `initial_ledger` is the chain the execution stage appends onto —
    /// [`Ledger::new`] on a fresh boot, or a ledger recovered from durable
    /// storage on restart. `backend` is the replica's durable engine
    /// handle (`None` for memory deployments): the executor WAL-logs every
    /// applied decision through it and the checkpoint stage persists
    /// certified checkpoints and flushes.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn(
        mut protocol: Box<dyn ReplicaProtocol>,
        handle: TransportHandle,
        metrics: Metrics,
        epoch: Instant,
        verify: VerifyCtx,
        exec_store: KvStore,
        initial_ledger: Ledger,
        backend: Option<crate::storage::SharedBackend>,
        pipeline: PipelineConfig,
    ) -> ReplicaRuntime {
        let node = handle.node;
        let shutdown = Arc::new(AtomicBool::new(false));
        // Every inter-stage channel is bounded (the tentpole of the
        // backpressure design): an overloaded stage parks or sheds its
        // producers instead of growing memory without bound. Capacities
        // are clamped to ≥ 1 in case a policy was built by hand instead
        // of through the QueuePolicy constructors.
        let queues = pipeline.queues;
        let (work_tx, work_rx) =
            bounded::<rdb_consensus::stage::VerifiedMessage>(queues.work.capacity.max(1));
        let (exec_tx, exec_rx) = bounded::<Decision>(queues.exec.capacity.max(1));
        let (out_tx, out_rx) = bounded::<(NodeId, Message)>(queues.output.capacity.max(1));

        // The verifier pool must be the *sole* owner of the inbox
        // receiver (see `TransportHandle::split`): when the verifiers
        // exit during shutdown, the inbox disconnects and releases any
        // peer parked in a blocking delivery to this replica.
        let (inbox, sender) = handle.split();

        // The ledger is shared between its writer (the execution stage
        // appends) and the checkpoint stage (compacts the stable prefix).
        let ledger = Arc::new(Mutex::new(initial_ledger));

        // Checkpoint stage: snapshot jobs + peer votes -> quorum
        // certification -> ledger compaction. Only spawned when enabled.
        let system = verify.system.clone();
        let exec_tracker = rdb_consensus::checkpoint::CheckpointTracker::new(
            pipeline.checkpoint.interval,
            system.global_quorum(),
        );
        let (ckpt_tx, checkpoint_handle) = if pipeline.checkpoint.enabled() {
            let (ckpt_tx, ckpt_rx) = bounded::<CheckpointMsg>(queues.checkpoint.capacity.max(1));
            let handle = spawn_checkpointer(
                node,
                system,
                pipeline.checkpoint,
                ckpt_rx,
                sender.clone(),
                Arc::clone(&ledger),
                backend.clone(),
                metrics.clone(),
            );
            (Some(ckpt_tx), Some(handle))
        } else {
            (None, None)
        };

        // Input + verify stages: N parallel threads draining the transport
        // inbox with batched signature checks.
        let verifier_handles = spawn_verifiers(
            node,
            pipeline,
            verify,
            inbox,
            work_tx,
            ckpt_tx.clone(),
            metrics.clone(),
            Arc::clone(&shutdown),
        );

        // Execute stage: decisions -> store + ledger, off the worker path.
        let exec_handle = spawn_executor(
            node,
            exec_store,
            exec_rx,
            Arc::clone(&ledger),
            ckpt_tx,
            exec_tracker,
            pipeline.checkpoint,
            queues.checkpoint,
            pipeline.exec_lanes,
            pipeline.reorder_window(),
            backend,
            metrics.clone(),
        );

        // Output stage: output queue -> transport.
        let stop = Arc::clone(&shutdown);
        let out_metrics = metrics.clone();
        let output_handle = std::thread::Builder::new()
            .name(format!("{node}-output"))
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match out_rx.recv_timeout(Duration::from_millis(20)) {
                        Ok((to, msg)) => {
                            out_metrics.record_message();
                            sender.send(to, msg);
                            out_metrics.stage_processed(Stage::Output, Duration::ZERO);
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            })
            .expect("spawn output thread");

        // Order stage: the state machine and timers, nothing else.
        let stop = Arc::clone(&shutdown);
        let worker_metrics = metrics;
        let worker_handle = std::thread::Builder::new()
            .name(format!("{node}-worker"))
            .spawn(move || {
                let mut wheel = TimerWheel::new(epoch);
                let mut out = Outbox::new();
                protocol.on_start(wheel.now(), &mut out);
                dispatch_replica_actions(
                    protocol.as_mut(),
                    node,
                    out.take(),
                    &mut wheel,
                    &out_tx,
                    &exec_tx,
                    &worker_metrics,
                    &queues,
                );
                while !stop.load(Ordering::Relaxed) {
                    match work_rx.recv_timeout(wheel.next_wait()) {
                        Ok(vm) => {
                            // One clock read serves both the protocol's
                            // virtual time and the busy measurement.
                            let t0 = Instant::now();
                            let now = wheel.time_of(t0);
                            let (from, msg) = vm.into_parts();
                            let mut out = Outbox::new();
                            protocol.on_message(now, from, msg, &mut out);
                            dispatch_replica_actions(
                                protocol.as_mut(),
                                node,
                                out.take(),
                                &mut wheel,
                                &out_tx,
                                &exec_tx,
                                &worker_metrics,
                                &queues,
                            );
                            worker_metrics.stage_processed(Stage::Order, t0.elapsed());
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                    for kind in wheel.due() {
                        let t0 = Instant::now();
                        let mut out = Outbox::new();
                        protocol.on_timer(wheel.now(), kind, &mut out);
                        dispatch_replica_actions(
                            protocol.as_mut(),
                            node,
                            out.take(),
                            &mut wheel,
                            &out_tx,
                            &exec_tx,
                            &worker_metrics,
                            &queues,
                        );
                        worker_metrics.stage_batch(Stage::Order, 0, 0, t0.elapsed());
                    }
                }
                // Dropping `exec_tx` here lets the executor drain and exit.
            })
            .expect("spawn worker thread");

        ReplicaRuntime {
            node,
            shutdown,
            verifier_handles,
            worker_handle,
            exec_handle,
            checkpoint_handle,
            output_handle,
            ledger,
        }
    }

    /// The node this runtime serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Stop the pipeline and return the replica's ledger plus the
    /// execution stage's materialized-table state digest. The execution
    /// stage drains every decision the worker emitted before exiting.
    pub fn stop(self) -> (Ledger, rdb_crypto::digest::Digest) {
        let report = self.stop_full();
        (report.ledger, report.exec_digest)
    }

    /// Raise the stop flag without joining. Deployment teardown signals
    /// *every* replica before joining any, so all pipelines stop within
    /// about one loop iteration of each other; joining one replica's
    /// (possibly slow, fault-injected) drain while its peers kept
    /// committing would skew cross-replica watermarks — late-stopped
    /// replicas' heads would run on while their stable checkpoints froze
    /// the moment earlier-stopped peers broke the vote quorum.
    pub fn signal_stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Like [`ReplicaRuntime::stop`], additionally returning the
    /// checkpoint stage's final state.
    pub fn stop_full(self) -> ReplicaStopReport {
        self.shutdown.store(true, Ordering::SeqCst);
        // Join order follows sender ownership: verifiers (hold work_tx +
        // ckpt_tx) first, then the worker (exec_tx), then the executor
        // (ckpt_tx) — at which point the checkpoint queue disconnects and
        // its never-parking thread drains out.
        for v in self.verifier_handles {
            v.join().expect("verifier thread");
        }
        self.worker_handle.join().expect("worker thread");
        let exec_digest = self.exec_handle.join().expect("execution thread");
        let checkpoint = self
            .checkpoint_handle
            .map(|h| h.join().expect("checkpoint thread"));
        self.output_handle.join().expect("output thread");
        let Ok(ledger) = Arc::try_unwrap(self.ledger) else {
            unreachable!("all ledger holders joined");
        };
        let ledger = ledger.into_inner();
        ReplicaStopReport {
            ledger,
            exec_digest,
            checkpoint,
        }
    }
}

/// Run a protocol callback's actions, delivering self-addressed sends
/// straight back into the protocol until it quiesces.
///
/// Protocols multicast votes to *all* members including themselves
/// (`Outbox::multicast`). Routing that self-edge through the transport
/// would thread it through the replica's own bounded input queue, closing
/// a blocking cycle wholly inside one replica — input → work → output →
/// own input — whose capacity (unlike the cross-replica cycles the queue
/// design sizes for, see `tests/pipeline_equivalence.rs`) a single
/// saturated replica can exhaust and deadlock on. A replica's own
/// messages also need no signature verification, so the worker handles
/// them inline as ordering work instead.
#[allow(clippy::too_many_arguments)]
fn dispatch_replica_actions(
    protocol: &mut dyn ReplicaProtocol,
    node: NodeId,
    actions: Vec<Action>,
    wheel: &mut TimerWheel,
    out_tx: &Sender<(NodeId, Message)>,
    exec_tx: &Sender<Decision>,
    metrics: &Metrics,
    queues: &StageQueues,
) {
    let mut loopback = VecDeque::new();
    process_replica_actions(
        actions,
        node,
        &mut loopback,
        wheel,
        out_tx,
        exec_tx,
        metrics,
        queues,
    );
    while let Some(msg) = loopback.pop_front() {
        let mut out = Outbox::new();
        protocol.on_message(wheel.now(), node, msg, &mut out);
        process_replica_actions(
            out.take(),
            node,
            &mut loopback,
            wheel,
            out_tx,
            exec_tx,
            metrics,
            queues,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn process_replica_actions(
    actions: Vec<Action>,
    node: NodeId,
    loopback: &mut VecDeque<Message>,
    wheel: &mut TimerWheel,
    out_tx: &Sender<(NodeId, Message)>,
    exec_tx: &Sender<Decision>,
    metrics: &Metrics,
    queues: &StageQueues,
) {
    let (mut sends, mut decisions) = (0u64, 0u64);
    for a in actions {
        match a {
            Action::Send { to, msg } if to == node => loopback.push_back(msg),
            Action::Send { to, msg } => {
                // The worker blocks on a full output queue (its wait is
                // the Output stage's blocked_ns); a Shed policy may drop
                // droppable outbound traffic instead.
                let droppable = msg.droppable();
                if send_with_policy(
                    out_tx,
                    (to, msg),
                    queues.output,
                    droppable,
                    metrics,
                    Stage::Output,
                ) == crate::queue::SendOutcome::Sent
                {
                    sends += 1;
                }
            }
            Action::SetTimer { kind, after } => wheel.set(kind, after),
            Action::CancelTimer { kind } => wheel.cancel(kind),
            Action::Decided(decision) => {
                metrics.record_decision();
                // Decisions are agreed state: never shed, always block
                // (the executor drains continuously, so this wait is
                // bounded by execution lag, not by peers).
                if send_with_policy(
                    exec_tx,
                    decision,
                    queues.exec,
                    false,
                    metrics,
                    Stage::Execute,
                ) == crate::queue::SendOutcome::Sent
                {
                    decisions += 1;
                }
            }
            Action::RequestComplete { .. } => {}
        }
    }
    metrics.stage_enqueued_many(Stage::Output, sends);
    metrics.stage_enqueued_many(Stage::Execute, decisions);
}

/// A running closed-loop client.
pub struct ClientRuntime {
    shutdown: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

impl ClientRuntime {
    /// Spawn the client loop. The client submits, waits for its reply
    /// quorum, records the latency and submits again until stopped.
    pub fn spawn(
        mut protocol: Box<dyn ClientProtocol>,
        handle: TransportHandle,
        metrics: Metrics,
        epoch: Instant,
    ) -> ClientRuntime {
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let join = std::thread::Builder::new()
            .name(format!("{}-client", handle.node))
            .spawn(move || {
                let mut wheel = TimerWheel::new(epoch);
                let mut submitted_at = Instant::now();
                let mut out = Outbox::new();
                protocol.next_request(wheel.now(), &mut out);
                let mut pending =
                    process_client_actions(out.take(), &mut wheel, &handle, &metrics, submitted_at);
                debug_assert!(!pending);
                while !stop.load(Ordering::Relaxed) {
                    match handle.inbox.recv_timeout(wheel.next_wait()) {
                        Ok(env) => {
                            let mut out = Outbox::new();
                            protocol.on_message(wheel.now(), env.from, env.msg, &mut out);
                            pending = process_client_actions(
                                out.take(),
                                &mut wheel,
                                &handle,
                                &metrics,
                                submitted_at,
                            );
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                    for kind in wheel.due() {
                        let mut out = Outbox::new();
                        protocol.on_timer(wheel.now(), kind, &mut out);
                        pending |= process_client_actions(
                            out.take(),
                            &mut wheel,
                            &handle,
                            &metrics,
                            submitted_at,
                        );
                    }
                    if pending && !stop.load(Ordering::Relaxed) {
                        // Closed loop: completed -> submit the next batch.
                        submitted_at = Instant::now();
                        let mut out = Outbox::new();
                        protocol.next_request(wheel.now(), &mut out);
                        process_client_actions(
                            out.take(),
                            &mut wheel,
                            &handle,
                            &metrics,
                            submitted_at,
                        );
                        pending = false;
                    }
                }
            })
            .expect("spawn client thread");
        ClientRuntime {
            shutdown,
            handle: join,
        }
    }

    /// Stop the client.
    pub fn stop(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.handle.join();
    }
}

/// Returns true when a request completed (caller submits the next one).
fn process_client_actions(
    actions: Vec<Action>,
    wheel: &mut TimerWheel,
    handle: &TransportHandle,
    metrics: &Metrics,
    submitted_at: Instant,
) -> bool {
    let mut completed = false;
    for a in actions {
        match a {
            Action::Send { to, msg } => handle.send(to, msg),
            Action::SetTimer { kind, after } => wheel.set(kind, after),
            Action::CancelTimer { kind } => wheel.cancel(kind),
            Action::RequestComplete { txns, .. } => {
                metrics.record_completion(txns, submitted_at.elapsed());
                completed = true;
            }
            Action::Decided(_) => {}
        }
    }
    completed
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::time::SimDuration;

    fn wheel() -> TimerWheel {
        TimerWheel::new(Instant::now())
    }

    #[test]
    fn wheel_compacts_cancelled_per_request_timers() {
        let mut w = wheel();
        // A long run arming and cancelling a fresh kind per request: both
        // structures must stay bounded by the watermark mechanism.
        for seq in 0..10_000u64 {
            let kind = TimerKind::ClientRetry { seq };
            w.set(kind, SimDuration::from_secs(3_600));
            w.cancel(kind);
        }
        let (heap, gens) = w.sizes();
        assert!(heap <= WHEEL_MIN_WATERMARK, "heap grew to {heap}");
        assert!(gens <= WHEEL_MIN_WATERMARK, "gens grew to {gens}");
    }

    #[test]
    fn wheel_compaction_preserves_live_timers() {
        let mut w = wheel();
        let keep = TimerKind::Progress;
        w.set(keep, SimDuration::from_millis(1));
        for seq in 0..1_000u64 {
            let kind = TimerKind::SpecWindow { seq };
            w.set(kind, SimDuration::from_secs(3_600));
            w.cancel(kind);
        }
        let (heap, _) = w.sizes();
        assert!(heap < 1_000, "stale entries not reclaimed");
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(w.due(), vec![keep], "live timer lost in compaction");
    }

    #[test]
    fn wheel_compaction_does_not_resurrect_cancelled_kinds() {
        let mut w = wheel();
        let kind = TimerKind::ClientRetry { seq: 7 };
        // Arm + cancel, then force a compaction (drops the gens slot).
        w.set(kind, SimDuration::from_millis(1));
        w.cancel(kind);
        w.compact();
        // Re-arming restarts at generation 1; the old generation-1 entry
        // must not have survived to fire a duplicate.
        w.set(kind, SimDuration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(w.due(), vec![kind], "exactly one firing after re-arm");
        assert_eq!(w.due(), Vec::new());
    }

    #[test]
    fn wheel_rearm_supersedes_across_compaction() {
        let mut w = wheel();
        let kind = TimerKind::Progress;
        w.set(kind, SimDuration::from_millis(1));
        w.set(kind, SimDuration::from_millis(50)); // supersedes
        w.compact();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(w.due(), Vec::new(), "superseded timer fired early");
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(w.due(), vec![kind]);
    }
}
