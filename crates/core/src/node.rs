//! Node runtimes: the per-replica and per-client thread pipelines.

use crate::metrics::Metrics;
use crate::transport::{Envelope, TransportHandle};
use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};
use rdb_common::ids::NodeId;
use rdb_common::time::SimTime;
use rdb_consensus::api::{Action, ClientProtocol, Outbox, ReplicaProtocol, TimerKind};
use rdb_consensus::messages::Message;
use rdb_ledger::Ledger;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Timer bookkeeping shared by both runtimes.
struct TimerWheel {
    epoch: Instant,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(Instant, u64, TimerKind)>>,
    gens: HashMap<TimerKind, u64>,
}

impl TimerWheel {
    fn new(epoch: Instant) -> TimerWheel {
        TimerWheel {
            epoch,
            heap: std::collections::BinaryHeap::new(),
            gens: HashMap::new(),
        }
    }

    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_nanos() as u64)
    }

    fn set(&mut self, kind: TimerKind, after: rdb_common::time::SimDuration) {
        let gen = self.gens.entry(kind).or_insert(0);
        *gen += 1;
        let due = Instant::now() + Duration::from_nanos(after.as_nanos());
        self.heap.push(std::cmp::Reverse((due, *gen, kind)));
    }

    fn cancel(&mut self, kind: TimerKind) {
        *self.gens.entry(kind).or_insert(0) += 1;
    }

    /// Pop all due timers whose generation is current.
    fn due(&mut self) -> Vec<TimerKind> {
        let now = Instant::now();
        let mut fired = Vec::new();
        while let Some(std::cmp::Reverse((due, gen, kind))) = self.heap.peek().copied() {
            if due > now {
                break;
            }
            self.heap.pop();
            if self.gens.get(&kind).copied() == Some(gen) {
                fired.push(kind);
            }
        }
        fired
    }

    /// Time until the next (possibly stale) timer.
    fn next_wait(&self) -> Duration {
        match self.heap.peek() {
            Some(std::cmp::Reverse((due, _, _))) => due
                .saturating_duration_since(Instant::now())
                .min(Duration::from_millis(20)),
            None => Duration::from_millis(20),
        }
    }
}

/// A running replica: input thread + worker thread + output thread
/// (paper Figure 9; see the crate docs for the mapping).
pub struct ReplicaRuntime {
    node: NodeId,
    shutdown: Arc<AtomicBool>,
    input_handle: JoinHandle<()>,
    worker_handle: JoinHandle<Ledger>,
    output_handle: JoinHandle<()>,
}

impl ReplicaRuntime {
    /// Spawn the pipeline for `protocol` on `handle`.
    pub fn spawn(
        mut protocol: Box<dyn ReplicaProtocol>,
        handle: TransportHandle,
        metrics: Metrics,
        epoch: Instant,
    ) -> ReplicaRuntime {
        let node = handle.node;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (work_tx, work_rx) = unbounded::<Envelope>();
        let (out_tx, out_rx) = unbounded::<(NodeId, Message)>();

        // Input thread: transport -> work queue.
        let inbox = handle.inbox.clone();
        let stop = Arc::clone(&shutdown);
        let input_handle = std::thread::Builder::new()
            .name(format!("{node}-input"))
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match inbox.recv_timeout(Duration::from_millis(20)) {
                        Ok(env) => {
                            if work_tx.send(env).is_err() {
                                break;
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            })
            .expect("spawn input thread");

        // Output thread: output queue -> transport.
        let stop = Arc::clone(&shutdown);
        let out_metrics = metrics.clone();
        let output_handle = std::thread::Builder::new()
            .name(format!("{node}-output"))
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match out_rx.recv_timeout(Duration::from_millis(20)) {
                        Ok((to, msg)) => {
                            out_metrics.record_message();
                            handle.send(to, msg);
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            })
            .expect("spawn output thread");

        // Worker thread: the state machine, timers, the ledger.
        let stop = Arc::clone(&shutdown);
        let worker_metrics = metrics;
        let worker_handle = std::thread::Builder::new()
            .name(format!("{node}-worker"))
            .spawn(move || {
                let mut wheel = TimerWheel::new(epoch);
                let mut ledger = Ledger::new();
                let mut out = Outbox::new();
                protocol.on_start(wheel.now(), &mut out);
                process_replica_actions(
                    out.take(),
                    &mut wheel,
                    &out_tx,
                    &mut ledger,
                    &worker_metrics,
                );
                while !stop.load(Ordering::Relaxed) {
                    match work_rx.recv_timeout(wheel.next_wait()) {
                        Ok(env) => {
                            let mut out = Outbox::new();
                            protocol.on_message(wheel.now(), env.from, env.msg, &mut out);
                            process_replica_actions(
                                out.take(),
                                &mut wheel,
                                &out_tx,
                                &mut ledger,
                                &worker_metrics,
                            );
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                    for kind in wheel.due() {
                        let mut out = Outbox::new();
                        protocol.on_timer(wheel.now(), kind, &mut out);
                        process_replica_actions(
                            out.take(),
                            &mut wheel,
                            &out_tx,
                            &mut ledger,
                            &worker_metrics,
                        );
                    }
                }
                ledger
            })
            .expect("spawn worker thread");

        ReplicaRuntime {
            node,
            shutdown,
            input_handle,
            worker_handle,
            output_handle,
        }
    }

    /// The node this runtime serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Stop the pipeline and return the replica's ledger.
    pub fn stop(self) -> Ledger {
        self.shutdown.store(true, Ordering::SeqCst);
        let ledger = self.worker_handle.join().expect("worker thread");
        self.input_handle.join().expect("input thread");
        self.output_handle.join().expect("output thread");
        ledger
    }
}

fn process_replica_actions(
    actions: Vec<Action>,
    wheel: &mut TimerWheel,
    out_tx: &Sender<(NodeId, Message)>,
    ledger: &mut Ledger,
    metrics: &Metrics,
) {
    for a in actions {
        match a {
            Action::Send { to, msg } => {
                let _ = out_tx.send((to, msg));
            }
            Action::SetTimer { kind, after } => wheel.set(kind, after),
            Action::CancelTimer { kind } => wheel.cancel(kind),
            Action::Decided(decision) => {
                metrics.record_decision();
                ledger.append_decision(&decision);
            }
            Action::RequestComplete { .. } => {}
        }
    }
}

/// A running closed-loop client.
pub struct ClientRuntime {
    shutdown: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

impl ClientRuntime {
    /// Spawn the client loop. The client submits, waits for its reply
    /// quorum, records the latency and submits again until stopped.
    pub fn spawn(
        mut protocol: Box<dyn ClientProtocol>,
        handle: TransportHandle,
        metrics: Metrics,
        epoch: Instant,
    ) -> ClientRuntime {
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let join = std::thread::Builder::new()
            .name(format!("{}-client", handle.node))
            .spawn(move || {
                let mut wheel = TimerWheel::new(epoch);
                let mut submitted_at = Instant::now();
                let mut out = Outbox::new();
                protocol.next_request(wheel.now(), &mut out);
                let mut pending =
                    process_client_actions(out.take(), &mut wheel, &handle, &metrics, submitted_at);
                debug_assert!(!pending);
                while !stop.load(Ordering::Relaxed) {
                    match handle.inbox.recv_timeout(wheel.next_wait()) {
                        Ok(env) => {
                            let mut out = Outbox::new();
                            protocol.on_message(wheel.now(), env.from, env.msg, &mut out);
                            pending = process_client_actions(
                                out.take(),
                                &mut wheel,
                                &handle,
                                &metrics,
                                submitted_at,
                            );
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                    for kind in wheel.due() {
                        let mut out = Outbox::new();
                        protocol.on_timer(wheel.now(), kind, &mut out);
                        pending |= process_client_actions(
                            out.take(),
                            &mut wheel,
                            &handle,
                            &metrics,
                            submitted_at,
                        );
                    }
                    if pending && !stop.load(Ordering::Relaxed) {
                        // Closed loop: completed -> submit the next batch.
                        submitted_at = Instant::now();
                        let mut out = Outbox::new();
                        protocol.next_request(wheel.now(), &mut out);
                        process_client_actions(
                            out.take(),
                            &mut wheel,
                            &handle,
                            &metrics,
                            submitted_at,
                        );
                        pending = false;
                    }
                }
            })
            .expect("spawn client thread");
        ClientRuntime {
            shutdown,
            handle: join,
        }
    }

    /// Stop the client.
    pub fn stop(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.handle.join();
    }
}

/// Returns true when a request completed (caller submits the next one).
fn process_client_actions(
    actions: Vec<Action>,
    wheel: &mut TimerWheel,
    handle: &TransportHandle,
    metrics: &Metrics,
    submitted_at: Instant,
) -> bool {
    let mut completed = false;
    for a in actions {
        match a {
            Action::Send { to, msg } => handle.send(to, msg),
            Action::SetTimer { kind, after } => wheel.set(kind, after),
            Action::CancelTimer { kind } => wheel.cancel(kind),
            Action::RequestComplete { txns, .. } => {
                metrics.record_completion(txns, submitted_at.elapsed());
                completed = true;
            }
            Action::Decided(_) => {}
        }
    }
    completed
}
