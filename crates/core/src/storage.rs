//! Durable-deployment wiring over [`rdb_storage`]: storage modes, the
//! per-replica engine handle, the on-disk encoding of every keyspace, and
//! restart recovery.
//!
//! ## Crash consistency
//!
//! The execution stage persists each applied decision as **one atomic
//! [`WriteBatch`]** (`persist_decision`): every block the decision
//! appended, every table record it wrote (as absolute `(key, value,
//! version)` images, not deltas), and the advanced `applied` watermark.
//! [`rdb_storage::LogBackend`] appends the whole batch as a single
//! checksummed WAL record, so a crash torn mid-write truncates to a
//! *decision boundary* on replay — the recovered table digest equals the
//! recovered ledger head's `state_digest` by construction, with no replay
//! or version-bump reasoning required.
//!
//! ## Keyspace encodings
//!
//! | keyspace      | key                      | value                                  |
//! |---------------|--------------------------|----------------------------------------|
//! | `table`       | record key, 8 B BE       | 24 B value ‖ version (8 B LE)          |
//! | `blocks`      | block height, 8 B BE     | JSON-encoded [`Block`]                 |
//! | `checkpoints` | stable height, 8 B BE    | state digest (32 B) ‖ anchor hash (32 B) |
//! | `meta`        | `"init"` / `"applied"` / `"stable"` | marker byte / height (8 B LE) |
//!
//! Big-endian keys make the engine's ascending-key scans come back in
//! height/key order for free. Blocks compacted out of the in-memory ledger
//! are *retained* in the `blocks` keyspace — archival past the recovery
//! anchor instead of dropping.
//!
//! The deployment parameters needed to reboot an equivalent fabric are
//! written once to `<root>/manifest.json` ([`Manifest`]);
//! [`crate::Fabric::restart_from`] reads them back.

use parking_lot::Mutex;
use rdb_common::ids::ReplicaId;
use rdb_consensus::config::ProtocolKind;
use rdb_crypto::digest::Digest;
use rdb_ledger::{Block, Ledger};
use rdb_storage::{Keyspace, LogBackend, StorageBackend, WriteBatch};
use rdb_store::{KvStore, Value};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Where a deployment keeps replica state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum StorageMode {
    /// Heap-only engines (the default, and what every figure reproduction
    /// uses): the pre-durability behavior, byte for byte.
    #[default]
    Memory,
    /// Log-structured engines rooted at the given data directory, one
    /// subdirectory per replica (`replica-<cluster>-<index>`). Requires
    /// the sequential executor (`exec_lanes == 1`). A directory holding a
    /// previous run's state is *recovered from*, not reinitialized.
    Durable(PathBuf),
}

/// The engine handle one replica's execution and checkpoint stages share.
///
/// A concrete `LogBackend` (not a trait object): only durable deployments
/// allocate one, and both writers funnel through the same mutex so WAL
/// records interleave at batch granularity.
pub type SharedBackend = Arc<Mutex<LogBackend>>;

/// Meta-keyspace marker: set once the preload bulk-dump finished, so a
/// half-initialized directory is re-initialized rather than recovered.
const META_INIT: &[u8] = b"init";
/// Meta-keyspace watermark: the highest ledger height applied (and
/// persisted) by the execution stage.
const META_APPLIED: &[u8] = b"applied";
/// Meta-keyspace watermark: the highest quorum-certified (stable) height.
const META_STABLE: &[u8] = b"stable";

fn invalid(msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Big-endian key encoding shared by the `table`, `blocks` and
/// `checkpoints` keyspaces: ascending scans come back in numeric order.
fn be_key(k: u64) -> [u8; 8] {
    k.to_be_bytes()
}

fn decode_be_key(raw: &[u8]) -> io::Result<u64> {
    Ok(u64::from_be_bytes(
        raw.try_into().map_err(|_| invalid("bad 8-byte key"))?,
    ))
}

/// `table` value: the 24-byte record image followed by its version.
fn encode_table_value(value: Value, version: u64) -> [u8; 32] {
    let mut out = [0u8; 32];
    out[..24].copy_from_slice(&value.0);
    out[24..].copy_from_slice(&version.to_le_bytes());
    out
}

fn decode_table_entry(key: &[u8], raw: &[u8]) -> io::Result<(u64, Value, u64)> {
    let key = decode_be_key(key)?;
    if raw.len() != 32 {
        return Err(invalid(format!(
            "table value has {} bytes, want 32",
            raw.len()
        )));
    }
    let mut value = [0u8; 24];
    value.copy_from_slice(&raw[..24]);
    let version = u64::from_le_bytes(raw[24..].try_into().expect("8 bytes"));
    Ok((key, Value(value), version))
}

/// `blocks` value: the JSON encoding of the block (lossless through the
/// workspace serde stack, including signatures and certificates).
fn encode_block(block: &Block) -> io::Result<Vec<u8>> {
    Ok(serde_json::to_string(block).map_err(invalid)?.into_bytes())
}

fn decode_block(raw: &[u8]) -> io::Result<Block> {
    let json = std::str::from_utf8(raw).map_err(invalid)?;
    serde_json::from_str(json).map_err(invalid)
}

/// `checkpoints` value: certified state digest ‖ anchor block hash.
fn encode_checkpoint(state: Digest, anchor: Digest) -> [u8; 64] {
    let mut out = [0u8; 64];
    out[..32].copy_from_slice(state.as_bytes());
    out[32..].copy_from_slice(anchor.as_bytes());
    out
}

/// Deployment parameters persisted to `<root>/manifest.json` on first
/// durable boot. [`crate::Fabric::restart_from`] reads this back and
/// rebuilds an equivalent deployment over the recovered engines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Consensus protocol of the deployment.
    pub kind: ProtocolKind,
    /// Number of clusters.
    pub z: usize,
    /// Replicas per cluster.
    pub n: usize,
    /// Transactions per client batch.
    pub batch_size: usize,
    /// Records preloaded into every replica's table on first boot.
    pub records: u64,
    /// Deployment seed (keys, workload).
    pub seed: u64,
    /// Whether signatures are verified for real.
    pub check_sigs: bool,
    /// Checkpoint-stage interval in decisions (0 = disabled).
    pub checkpoint_interval: u64,
}

fn manifest_path(root: &Path) -> PathBuf {
    root.join("manifest.json")
}

/// Write the manifest on first boot; an existing manifest (a restart) is
/// left untouched so the original deployment parameters stay authoritative.
pub(crate) fn write_manifest_if_absent(root: &Path, manifest: &Manifest) -> io::Result<()> {
    let path = manifest_path(root);
    if path.exists() {
        return Ok(());
    }
    std::fs::create_dir_all(root)?;
    std::fs::write(path, serde_json::to_string(manifest).map_err(invalid)?)
}

/// Read the deployment manifest back from a durable data directory.
pub fn read_manifest(root: &Path) -> io::Result<Manifest> {
    let json = std::fs::read_to_string(manifest_path(root))?;
    serde_json::from_str(&json).map_err(invalid)
}

/// The engine directory of `rid` under the deployment's data root.
pub(crate) fn replica_dir(root: &Path, rid: ReplicaId) -> PathBuf {
    root.join(format!("replica-{}-{}", rid.cluster.0, rid.index))
}

/// Whether this engine finished a preload bulk-dump (i.e. holds a
/// recoverable replica rather than an empty or half-initialized one).
pub(crate) fn is_initialized(backend: &LogBackend) -> bool {
    backend.get(Keyspace::Meta, META_INIT).is_some()
}

/// First durable boot: bulk-dump the preloaded table and set the init
/// marker, all before the replica starts serving. The marker rides the
/// same atomic batch as the records, so a crash mid-preload leaves the
/// directory uninitialized and the next boot redoes the dump.
pub(crate) fn init_replica(backend: &mut LogBackend, store: &KvStore) -> io::Result<()> {
    let mut batch = WriteBatch::new();
    for (key, value, version) in store.records() {
        batch.put(
            Keyspace::Table,
            be_key(key),
            encode_table_value(value, version),
        );
    }
    batch.put(Keyspace::Meta, META_INIT, [1u8]);
    backend.apply(batch)?;
    backend.flush()
}

/// Persist one applied decision as a single atomic batch: the blocks the
/// executor just appended, the absolute images of the table records it
/// wrote, and the advanced `applied` watermark. See the module docs for
/// why this makes torn tails land on decision boundaries.
pub(crate) fn persist_decision(
    backend: &SharedBackend,
    blocks: &[Block],
    writes: &[(u64, Value, u64)],
    applied: u64,
) -> io::Result<()> {
    let mut batch = WriteBatch::new();
    for block in blocks {
        batch.put(Keyspace::Blocks, be_key(block.height), encode_block(block)?);
    }
    for &(key, value, version) in writes {
        batch.put(
            Keyspace::Table,
            be_key(key),
            encode_table_value(value, version),
        );
    }
    batch.put(Keyspace::Meta, META_APPLIED, applied.to_le_bytes());
    backend.lock().apply(batch)
}

/// Persist a quorum-certified checkpoint and flush the engine: the stable
/// prefix's state is forced into run files and the WAL resets, so restart
/// replay cost stays bounded by the exec-to-stable lag, not run length.
pub(crate) fn persist_checkpoint(
    backend: &SharedBackend,
    height: u64,
    state: Digest,
    anchor: Digest,
) -> io::Result<()> {
    let mut be = backend.lock();
    let mut batch = WriteBatch::new();
    batch.put(
        Keyspace::Checkpoints,
        be_key(height),
        encode_checkpoint(state, anchor),
    );
    batch.put(Keyspace::Meta, META_STABLE, height.to_le_bytes());
    be.apply(batch)?;
    be.flush()
}

/// Rebuild a replica's in-memory state from its engine: scan the `table`
/// keyspace into a fresh store (restoring persisted versions, fingerprint
/// maintained) and the `blocks` keyspace into a ledger rooted at genesis.
/// The recovered ledger is uncompacted — every persisted block is
/// retained, so its head hash and heights are identical to the ledger
/// that wrote it.
pub(crate) fn recover_replica(backend: &LogBackend) -> io::Result<(KvStore, Ledger)> {
    let mut store = KvStore::new();
    for (key, raw) in backend.scan(Keyspace::Table) {
        let (k, v, version) = decode_table_entry(&key, &raw)?;
        store.restore_record(k, v, version);
    }

    let mut blocks = vec![Block::genesis()];
    for (key, raw) in backend.scan(Keyspace::Blocks) {
        let height = decode_be_key(&key)?;
        let block = decode_block(&raw)?;
        if block.height != height {
            return Err(invalid(format!(
                "block stored at height {height} claims height {}",
                block.height
            )));
        }
        blocks.push(block);
    }
    for (i, block) in blocks.iter().enumerate() {
        if block.height != i as u64 {
            return Err(invalid(format!(
                "persisted blocks not contiguous: index {i} holds height {}",
                block.height
            )));
        }
    }
    let ledger = Ledger::from_blocks_unchecked(blocks);
    ledger
        .verify(None)
        .map_err(|e| invalid(format!("recovered ledger invalid: {e}")))?;

    if let Some(raw) = backend.get(Keyspace::Meta, META_APPLIED) {
        let applied = u64::from_le_bytes(
            raw.as_slice()
                .try_into()
                .map_err(|_| invalid("bad applied watermark"))?,
        );
        if applied != ledger.head_height() {
            return Err(invalid(format!(
                "applied watermark {applied} != recovered head {}",
                ledger.head_height()
            )));
        }
    }
    Ok((store, ledger))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_storage::LogConfig;

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rdb-core-storage-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn table_entry_round_trips() {
        let raw = encode_table_value(Value::from_u64(7), 3);
        let (k, v, ver) = decode_table_entry(&be_key(42), &raw).unwrap();
        assert_eq!((k, v, ver), (42, Value::from_u64(7), 3));
        assert!(decode_table_entry(&be_key(42), &raw[..31]).is_err());
    }

    #[test]
    fn block_json_round_trips() {
        let block = Block::genesis();
        let raw = encode_block(&block).unwrap();
        let back = decode_block(&raw).unwrap();
        assert_eq!(back, block);
        assert_eq!(back.hash(), block.hash());
    }

    #[test]
    fn manifest_written_once_and_read_back() {
        let dir = tempdir("manifest");
        let manifest = Manifest {
            kind: ProtocolKind::Pbft,
            z: 1,
            n: 4,
            batch_size: 5,
            records: 100,
            seed: 42,
            check_sigs: true,
            checkpoint_interval: 0,
        };
        write_manifest_if_absent(&dir, &manifest).unwrap();
        // A second boot with different parameters must not clobber it.
        let other = Manifest {
            seed: 99,
            ..manifest.clone()
        };
        write_manifest_if_absent(&dir, &other).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), manifest);
    }

    #[test]
    fn init_then_recover_round_trips_store_and_ledger() {
        let dir = tempdir("recover");
        let preload = KvStore::with_ycsb_records(50);
        let mut backend = LogBackend::open(&dir, LogConfig::default()).unwrap();
        assert!(!is_initialized(&backend));
        init_replica(&mut backend, &preload).unwrap();
        assert!(is_initialized(&backend));

        let shared: SharedBackend = Arc::new(Mutex::new(backend));
        // Persist one "decision": a block plus an absolute record image.
        let mut ledger = Ledger::new();
        ledger.append(
            rdb_consensus::types::SignedBatch::noop(rdb_common::ids::ClusterId(0), 1),
            None,
            Digest::of(b"post"),
        );
        let head = ledger.block(1).unwrap().clone();
        persist_decision(
            &shared,
            std::slice::from_ref(&head),
            &[(7, Value::from_u64(700), 5)],
            1,
        )
        .unwrap();

        let backend = Arc::try_unwrap(shared).ok().unwrap().into_inner();
        let (store, recovered) = recover_replica(&backend).unwrap();
        assert_eq!(store.len(), 50);
        assert_eq!(recovered.head_height(), 1);
        assert_eq!(recovered.head_hash(), head.hash());
        let mut expected = KvStore::new();
        for (k, v, ver) in preload.records().filter(|(k, _, _)| *k != 7) {
            expected.restore_record(k, v, ver);
        }
        expected.restore_record(7, Value::from_u64(700), 5);
        assert_eq!(store.state_digest(), expected.state_digest());
    }
}
