//! The verifier, execution and checkpoint stages of the replica pipeline
//! (paper Figure 9, plus §2.2's checkpoints as their own stage).
//!
//! [`crate::node::ReplicaRuntime`] wires these into the full
//! input → verify ×N → order → execute → checkpoint/output thread chain.
//! The stages here are the ones that moved *off* the ordering worker in
//! the staged refactor:
//!
//! * **Verify** — a configurable pool of threads draining the raw envelope
//!   queue in batches, running the pure [`VerifiedMessage::check`]
//!   signature checks from `rdb-consensus`, and forwarding only valid
//!   traffic to the worker (which runs on a
//!   [`rdb_consensus::crypto_ctx::CryptoCtx::preverified`] context).
//!   Pipeline-level checkpoint votes (reserved scope, see
//!   [`rdb_consensus::checkpoint`]) are routed straight to the checkpoint
//!   stage — the worker never sees them.
//! * **Execute** — a single thread applying finalized [`Decision`]s to the
//!   node's `rdb-store` table and appending them to the `rdb-ledger`
//!   chain, so neither store writes nor ledger hashing sit on the
//!   consensus critical path. Every
//!   [`CheckpointConfig::interval`] decisions it snapshots the table
//!   digest into the checkpoint queue.
//! * **Checkpoint** — a dedicated thread that certifies the execution
//!   stage's snapshots against peers (a
//!   [`rdb_consensus::checkpoint::CheckpointTracker`] quorum over
//!   non-droppable `Message::Checkpoint` votes) and, as checkpoints
//!   become stable, compacts the ledger prefix behind a recovery anchor
//!   (`Ledger::compact`). Its queue is Block-policy by design: a
//!   backlogged checkpoint stage parks the executor and throttles the
//!   replica, bounding exec-to-stable lag (see [`crate::queue`]).
//!
//! Every hand-off between stages runs over a *bounded* channel sized by
//! [`PipelineConfig::queues`] (see [`crate::queue`] for the overload
//! policies): the verifier pool blocks on a full work queue, which is how
//! backpressure propagates backwards from the worker to the transport
//! edge and ultimately to submitting clients.

use crate::metrics::Metrics;
use crate::queue::{send_with_policy, QueuePolicy, SendOutcome, StageQueues};
use crate::storage::{self, SharedBackend};
use crate::transport::{Envelope, TransportSender};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rdb_common::config::SystemConfig;
use rdb_common::ids::{NodeId, ReplicaId};
use rdb_consensus::checkpoint::{self, CheckpointTracker, StableCheckpoint};
use rdb_consensus::crypto_ctx::CryptoCtx;
use rdb_consensus::messages::Message;
use rdb_consensus::stage::{Stage, VerifiedMessage};
use rdb_consensus::types::Decision;
use rdb_crypto::digest::Digest;
use rdb_ledger::Ledger;
use rdb_store::lanes::{self as store_lanes, LaneItem};
use rdb_store::{KvStore, Operation, Value};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The checkpoint stage's tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Decisions between checkpoints; `0` disables the stage entirely
    /// (no snapshot jobs, no votes, no ledger compaction — the pre-PR
    /// behavior, and the default: figure reproductions and equivalence
    /// tests compare full ledgers unless they opt in).
    pub interval: u64,
    /// Keep a full [`KvStore`] clone of the last *stable* checkpoint —
    /// the state a restarting replica recovers from
    /// (`rdb_ledger::recover_from_checkpoint`). Costs one table copy per
    /// checkpoint; recovery tests and snapshot-shipping deployments
    /// enable it.
    pub retain_snapshot: bool,
    /// Fault injection for the test harness: sleep this long inside the
    /// checkpoint thread per snapshot job, emulating slow snapshot I/O.
    /// With a Block checkpoint queue this visibly throttles execution —
    /// which is exactly the designed overload behavior under test.
    pub fault_delay: Duration,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            interval: 0,
            retain_snapshot: false,
            fault_delay: Duration::ZERO,
        }
    }
}

impl CheckpointConfig {
    /// Checkpoint every `interval` decisions.
    pub fn every(interval: u64) -> CheckpointConfig {
        CheckpointConfig {
            interval,
            ..CheckpointConfig::default()
        }
    }

    /// Whether the checkpoint stage runs at all.
    pub fn enabled(&self) -> bool {
        self.interval > 0
    }
}

/// Thread and queue layout of one replica's pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Parallel verifier threads between input and worker.
    pub verifier_threads: usize,
    /// Maximum envelopes one verifier drains per wakeup (batched
    /// signature checking amortizes queue synchronization).
    pub verify_batch: usize,
    /// Bounded inter-stage queue layout (capacity + overload policy per
    /// queue; see [`crate::queue`]). Every channel between stages is
    /// bounded — an overloaded replica sheds droppable traffic or blocks
    /// its producers instead of growing memory without bound.
    pub queues: StageQueues,
    /// Checkpoint stage configuration (disabled by default).
    pub checkpoint: CheckpointConfig,
    /// Key-sharded execution lanes. `1` (the default) keeps the original
    /// single-thread execute stage; `n > 1` spawns a lane pool where key
    /// `k` executes on lane `k % n` and decisions touching disjoint lanes
    /// proceed in parallel, bounded by a commit-order reorder window
    /// derived from the exec queue's capacity (see the lane-pool section
    /// below). Clamped to [`rdb_store::MAX_LANES`].
    pub exec_lanes: usize,
}

impl Default for PipelineConfig {
    /// Sizes the verifier pool to the hardware, like the paper's fabric
    /// sizes its thread pools to the testbed's cores: one verifier on
    /// small hosts, two on ~8-core machines, up to four beyond that.
    /// Extra pool threads on a starved host only add context switches.
    /// Queues are derived from the default batch size and that fan-out
    /// ([`StageQueues::derive`]).
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let verifier_threads = (cores / 4).clamp(1, 4);
        PipelineConfig {
            verifier_threads,
            verify_batch: 16,
            queues: StageQueues::derive(10, verifier_threads),
            checkpoint: CheckpointConfig::default(),
            exec_lanes: 1,
        }
    }
}

impl PipelineConfig {
    /// A pipeline with `n` verifier threads (at least one); queues are
    /// re-derived for that fan-out.
    pub fn with_verifiers(n: usize) -> PipelineConfig {
        let n = n.max(1);
        PipelineConfig {
            verifier_threads: n,
            queues: StageQueues::derive(10, n),
            ..PipelineConfig::default()
        }
    }

    /// Set the execution-lane fan-out (clamped to
    /// `1..=`[`rdb_store::MAX_LANES`]).
    pub fn with_exec_lanes(mut self, n: usize) -> PipelineConfig {
        self.exec_lanes = n.clamp(1, rdb_store::MAX_LANES);
        self
    }

    /// The commit-order reorder window of the lane pool: how many
    /// decisions may be in flight (dispatched to lanes, not yet retired)
    /// at once. Derived jointly with the exec queue's bound — the window
    /// *is* the exec queue capacity, so out-of-order completion never
    /// exceeds what the bounded-queue invariant already admits between
    /// the worker and the execute stage.
    pub fn reorder_window(&self) -> usize {
        self.queues.exec.capacity.max(1)
    }
}

/// What the verifier stage needs to check signatures: the node's *full*
/// crypto context (inbound checks on) and the system layout for
/// certificate membership checks.
#[derive(Clone)]
pub struct VerifyCtx {
    /// Full-verification crypto context.
    pub crypto: CryptoCtx,
    /// Deployment shape (cluster membership, quorum sizes).
    pub system: SystemConfig,
}

/// One item on the checkpoint stage's queue: the execute stage's local
/// snapshot jobs and the peer votes the verifier pool routes here.
#[derive(Debug)]
pub(crate) enum CheckpointMsg {
    /// The execute stage crossed an interval boundary: certify this
    /// ledger height with the materialized table's digest.
    Snapshot {
        /// Ledger height the snapshot covers.
        height: u64,
        /// Digest of the materialized table at that height.
        state: Digest,
        /// A full table clone ([`CheckpointConfig::retain_snapshot`]).
        snapshot: Option<KvStore>,
    },
    /// A verified pipeline-scope checkpoint vote from a peer.
    Vote {
        /// The voting replica.
        from: ReplicaId,
        /// Ledger height voted for.
        height: u64,
        /// State digest voted for.
        state: Digest,
    },
}

/// Spawn the verifier pool: `verify_rx` (the transport inbox — its
/// delivery is the input stage) → checked → `work_tx` (pipeline-scope
/// checkpoint votes go to `ckpt_tx` instead — the checkpoint stage, not
/// the worker, counts them).
// The parameters mirror the stage wiring one-to-one.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_verifiers(
    node: NodeId,
    cfg: PipelineConfig,
    verify: VerifyCtx,
    verify_rx: Receiver<Envelope>,
    work_tx: Sender<VerifiedMessage>,
    ckpt_tx: Option<Sender<CheckpointMsg>>,
    metrics: Metrics,
    stop: Arc<AtomicBool>,
) -> Vec<JoinHandle<()>> {
    (0..cfg.verifier_threads.max(1))
        .map(|i| {
            let verify = verify.clone();
            let rx = verify_rx.clone();
            let tx = work_tx.clone();
            let ckpt_tx = ckpt_tx.clone();
            let metrics = metrics.clone();
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("{node}-verify{i}"))
                .spawn(move || {
                    verifier_loop(&verify, &rx, &tx, ckpt_tx.as_ref(), &metrics, &stop, cfg)
                })
                .expect("spawn verifier thread")
        })
        .collect()
}

fn verifier_loop(
    verify: &VerifyCtx,
    rx: &Receiver<Envelope>,
    tx: &Sender<VerifiedMessage>,
    ckpt_tx: Option<&Sender<CheckpointMsg>>,
    metrics: &Metrics,
    stop: &AtomicBool,
    cfg: PipelineConfig,
) {
    let batch_limit = cfg.verify_batch.max(1);
    let mut batch = Vec::with_capacity(batch_limit);
    while !stop.load(Ordering::Relaxed) {
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(env) => {
                batch.push(env);
                while batch.len() < batch_limit {
                    match rx.try_recv() {
                        Ok(env) => batch.push(env),
                        Err(_) => break,
                    }
                }
                // Envelopes leave the input stage (the transport inbox)
                // and enter verification.
                metrics.stage_batch(Stage::Input, batch.len() as u64, 0, Duration::ZERO);
                metrics.stage_enqueued_many(Stage::Verify, batch.len() as u64);
                let t0 = Instant::now();
                let (mut ok, mut dropped, mut forwarded) = (0u64, 0u64, 0u64);
                for env in batch.drain(..) {
                    match VerifiedMessage::check(&verify.system, &verify.crypto, env.from, env.msg)
                    {
                        Some(vm) => {
                            // Pipeline-scope checkpoint votes feed the
                            // checkpoint stage, never the worker. They
                            // are non-droppable, so a full checkpoint
                            // queue parks this verifier — safe, because
                            // the checkpoint thread never parks and
                            // always comes back to drain (crate::queue).
                            if let (Some(ckpt_tx), Message::Checkpoint { seq, state, .. }) =
                                (ckpt_tx, vm.message())
                            {
                                if checkpoint::is_pipeline_vote(vm.message()) {
                                    let NodeId::Replica(from) = vm.from() else {
                                        // Clients cannot vote: discarded
                                        // here like any malformed traffic.
                                        dropped += 1;
                                        continue;
                                    };
                                    ok += 1;
                                    let vote = CheckpointMsg::Vote {
                                        from,
                                        height: *seq,
                                        state: *state,
                                    };
                                    if send_with_policy(
                                        ckpt_tx,
                                        vote,
                                        cfg.queues.checkpoint,
                                        false,
                                        metrics,
                                        Stage::Checkpoint,
                                    ) == SendOutcome::Sent
                                    {
                                        metrics.stage_enqueued(Stage::Checkpoint);
                                    }
                                    continue;
                                }
                            }
                            ok += 1;
                            let droppable = vm.message().droppable();
                            // A full work queue parks this verifier
                            // (Block) — which stops it draining the inbox
                            // and pushes the pressure to the transport
                            // edge — or sheds droppable traffic (Shed),
                            // counted against the Order stage.
                            match send_with_policy(
                                tx,
                                vm,
                                cfg.queues.work,
                                droppable,
                                metrics,
                                Stage::Order,
                            ) {
                                SendOutcome::Sent => forwarded += 1,
                                SendOutcome::Shed => {}
                                SendOutcome::Disconnected => return, // worker gone
                            }
                        }
                        None => dropped += 1,
                    }
                }
                metrics.stage_enqueued_many(Stage::Order, forwarded);
                metrics.stage_batch(Stage::Verify, ok, dropped, t0.elapsed());
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Spawn the execution stage: `exec_rx` → store apply → ledger append
/// (into the shared ledger the checkpoint stage compacts). Runs until
/// the worker drops its sender, so every decision emitted before
/// shutdown is persisted. Returns the materialized table's state digest
/// on join — which must equal the last appended block's `state_digest`
/// (the ordering state machine executed the same decisions against an
/// identically-preloaded store), making the off-path materialization
/// independently auditable.
///
/// With checkpointing enabled the stage keeps the store's incremental
/// fingerprint *live* (per-write hashing instead of the deferred
/// rebuild): checkpoint snapshots need an O(1) honest table digest at
/// every interval boundary — that hashing is the execute-side cost of
/// checkpointing. The boundary schedule is the [`CheckpointTracker`]'s
/// ([`CheckpointTracker::on_decision`]); snapshot jobs go into the
/// Block-policy checkpoint queue; when the checkpoint stage lags, this
/// send parks the executor, which is precisely the throttle that bounds
/// exec-to-stable lag.
// The parameters mirror the stage wiring one-to-one.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_executor(
    node: NodeId,
    store: KvStore,
    exec_rx: Receiver<Decision>,
    ledger: Arc<Mutex<Ledger>>,
    ckpt_tx: Option<Sender<CheckpointMsg>>,
    // The executor drives the tracker's decision/interval half; the
    // checkpoint thread owns a second instance for the vote/quorum half.
    tracker: CheckpointTracker,
    cfg: CheckpointConfig,
    queue: QueuePolicy,
    lanes: usize,
    reorder_window: usize,
    backend: Option<SharedBackend>,
    metrics: Metrics,
) -> JoinHandle<rdb_crypto::digest::Digest> {
    let lanes = lanes.clamp(1, rdb_store::MAX_LANES);
    std::thread::Builder::new()
        .name(format!("{node}-execute"))
        .spawn(move || {
            if lanes <= 1 {
                run_sequential_executor(
                    store, exec_rx, ledger, ckpt_tx, tracker, cfg, queue, backend, metrics,
                )
            } else {
                // The deployment builder rejects durable + lane-pool
                // configs before any thread spawns; this guards direct
                // callers.
                assert!(
                    backend.is_none(),
                    "durable storage requires the sequential executor (exec_lanes == 1)"
                );
                run_lane_pool(
                    node,
                    store,
                    exec_rx,
                    ledger,
                    ckpt_tx,
                    cfg,
                    queue,
                    lanes,
                    reorder_window,
                    metrics,
                )
            }
        })
        .expect("spawn execution thread")
}

/// The original single-thread execute stage: apply in commit order on one
/// table, append, snapshot at interval boundaries. The lane pool must be
/// observationally identical to this loop.
#[allow(clippy::too_many_arguments)]
fn run_sequential_executor(
    mut store: KvStore,
    exec_rx: Receiver<Decision>,
    ledger: Arc<Mutex<Ledger>>,
    ckpt_tx: Option<Sender<CheckpointMsg>>,
    mut tracker: CheckpointTracker,
    cfg: CheckpointConfig,
    queue: QueuePolicy,
    backend: Option<SharedBackend>,
    metrics: Metrics,
) -> Digest {
    let mut checkpointing = cfg.enabled() && ckpt_tx.is_some();
    metrics.set_exec_lanes(1);
    if backend.is_some() {
        // Durable mode: capture every table write as an absolute
        // (key, value, version) image so the decision's WAL batch carries
        // the exact post-state, not a delta to replay.
        store.enable_capture();
    }
    while let Ok(decision) = exec_rx.recv() {
        let t0 = Instant::now();
        let mut ops = 0u64;
        for entry in &decision.entries {
            for op in entry.batch.batch.operations() {
                ops += 1;
                if checkpointing {
                    // Live fingerprinting: snapshots need an
                    // honest O(1) digest at interval boundaries.
                    store.execute(op);
                } else {
                    // The decision's state digest is authoritative
                    // (computed by the ordering state machine), so
                    // the materialized table skips per-write
                    // fingerprint hashing; the digest is rebuilt
                    // once at shutdown.
                    store.execute_unfingerprinted(op);
                }
            }
        }
        let (height, new_blocks) = {
            let mut l = ledger.lock();
            let prev = l.head_height();
            l.append_decision(&decision);
            let head = l.head_height();
            // Durable mode: clone the block(s) this decision appended
            // while still under the lock, so the persisted chain segment
            // is exactly what the ledger linked.
            let new_blocks: Vec<rdb_ledger::Block> = if backend.is_some() {
                (prev + 1..=head)
                    .map(|h| l.block(h).expect("just appended").clone())
                    .collect()
            } else {
                Vec::new()
            };
            (head, new_blocks)
        };
        if let Some(be) = &backend {
            // One decision = one atomic WAL batch: blocks + absolute
            // table images + applied watermark. A torn tail therefore
            // truncates to a decision boundary on recovery.
            let writes = store.take_captured();
            storage::persist_decision(be, &new_blocks, &writes, height)
                .expect("durable storage write failed");
        }
        metrics.lane_batch(0, ops, t0.elapsed());
        metrics.stage_processed(Stage::Execute, t0.elapsed());
        if !checkpointing {
            continue;
        }
        if let Some((height, state)) = tracker.on_decision(height, store.state_digest()) {
            let snapshot = cfg.retain_snapshot.then(|| store.clone());
            let tx = ckpt_tx.as_ref().expect("checkpointing implies sender");
            match send_with_policy(
                tx,
                CheckpointMsg::Snapshot {
                    height,
                    state,
                    snapshot,
                },
                queue,
                false,
                &metrics,
                Stage::Checkpoint,
            ) {
                SendOutcome::Sent => metrics.stage_enqueued(Stage::Checkpoint),
                SendOutcome::Shed => unreachable!("snapshots never shed"),
                SendOutcome::Disconnected => checkpointing = false,
            }
        }
    }
    if !checkpointing {
        store.rebuild_fingerprint();
    }
    store.state_digest()
}

// ------------------------------------------------------------------------
// The key-sharded lane pool (PipelineConfig::exec_lanes > 1).
//
// The execute thread becomes a *scheduler*: it analyzes each decision's
// key footprint (rdb_store::lanes::partition_batch), fans the per-lane
// work lists out to N lane threads that each own the key-disjoint slice
// of the table with keys ≡ lane (mod N), and retires decisions strictly
// in commit order once every lane they touched reports completion.
// Conflict-awareness falls out of the partition: two decisions touching
// the same shard land on the same lane's FIFO and serialize; decisions
// with disjoint footprints run on different lanes concurrently.
//
// Out-of-order completion is bounded by the reorder window W
// (PipelineConfig::reorder_window — the exec queue's capacity): at most W
// decisions are in flight between dispatch and retirement. Lane job
// queues are bounded too; a full queue parks the *scheduler* only, and
// lane threads always drain (their completion/reply channels never
// block), so the scheduler/lane graph stays deadlock-free. Retirement
// performs the ledger append and Stage::Execute accounting in commit
// order, which keeps the ledger, checkpoint interval boundaries, and the
// execution audit byte-identical to the sequential executor above.
//
// Cross-lane transaction programs (rdb_store::txn) are synchronization
// points within their decision: the scheduler follows the batch's
// execution plan (rdb_store::lanes::plan_batch), and for each
// PlanStep::Program it *gathers* the program's static read footprint from
// the owning lanes (a Gather job rides each lane's FIFO, so it observes
// exactly the writes of every earlier operation), evaluates the register
// machine once on the scheduler, and *scatters* the write set back as
// Program jobs — which again ride the FIFOs, so every later operation
// observes them. The home lane's Program job also carries the stats
// note, keeping merged lane statistics identical to sequential
// execution.

/// A lane's answer to a checkpoint barrier: its index, its 40-byte
/// fingerprint part, and (when snapshots are retained) a clone of its
/// table slice.
type LanePart = (usize, ([u8; 32], u64), Option<KvStore>);

/// One unit of work on a lane thread's bounded FIFO.
enum LaneJob {
    /// Apply this decision's lane-local items. `id` is the decision's
    /// dispatch ordinal, echoed in the completion message.
    Apply {
        id: u64,
        items: Vec<LaneItem>,
        fingerprint: bool,
    },
    /// Read the lane-owned keys of a cross-lane program's footprint and
    /// reply with their current values. The reply channel is the
    /// completion signal — no `LaneDone` is sent.
    Gather {
        keys: Vec<u64>,
        reply: Sender<Vec<(u64, Option<Value>)>>,
    },
    /// Scatter a cross-lane program's lane-owned writes (possibly empty)
    /// onto this lane; `note` is `Some(aborted)` on the program's home
    /// lane, which owns the stats bump.
    Program {
        id: u64,
        writes: Vec<(u64, Value)>,
        note: Option<bool>,
        fingerprint: bool,
    },
    /// Checkpoint barrier (queue already drained): report the lane's
    /// fingerprint part — and a clone of its table slice when snapshots
    /// are retained — so the scheduler can certify the combined digest.
    Checkpoint {
        reply: Sender<LanePart>,
        snapshot: bool,
    },
}

/// A lane finished the `Apply` job of decision `id`.
struct LaneDone {
    lane: usize,
    id: u64,
}

/// One in-flight decision in the reorder window.
struct InFlight {
    decision: Decision,
    /// Outstanding jobs per lane for this decision (a decision with
    /// cross-lane programs dispatches several jobs to the same lane:
    /// its plan's `Items` segments plus program write scatters).
    waiting: Vec<u16>,
    /// Total outstanding jobs; the decision is ready to retire at 0.
    left: u32,
    /// Scheduler-side partition + dispatch + program-evaluation cost,
    /// folded into the decision's Stage::Execute busy time at retirement.
    dispatch: Duration,
}

impl InFlight {
    /// Bitmask of lanes this decision is still waiting on.
    fn waiting_mask(&self) -> u64 {
        self.waiting
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .fold(0u64, |m, (lane, _)| m | 1u64 << lane)
    }
}

fn lane_loop(
    lane: usize,
    mut store: KvStore,
    jobs: Receiver<LaneJob>,
    done: Sender<LaneDone>,
    metrics: Metrics,
) -> KvStore {
    for job in jobs.iter() {
        match job {
            LaneJob::Apply {
                id,
                items,
                fingerprint,
            } => {
                let t0 = Instant::now();
                let ops = items.len() as u64;
                for item in &items {
                    store.execute_partial(&item.op, item.home, fingerprint);
                }
                metrics.lane_batch(lane, ops, t0.elapsed());
                if done.send(LaneDone { lane, id }).is_err() {
                    break; // scheduler gone: shutting down
                }
            }
            LaneJob::Gather { keys, reply } => {
                let values = keys.iter().map(|&k| (k, store.get(k))).collect();
                let _ = reply.send(values);
            }
            LaneJob::Program {
                id,
                writes,
                note,
                fingerprint,
            } => {
                let t0 = Instant::now();
                for (key, value) in &writes {
                    store.apply_program_write(*key, *value, fingerprint);
                }
                // The home lane counts the program as one op, like the
                // sequential per-operation accounting.
                let ops = match note {
                    Some(aborted) => {
                        store.note_program(aborted);
                        1
                    }
                    None => 0,
                };
                metrics.lane_batch(lane, ops, t0.elapsed());
                if done.send(LaneDone { lane, id }).is_err() {
                    break; // scheduler gone: shutting down
                }
            }
            LaneJob::Checkpoint { reply, snapshot } => {
                let snap = snapshot.then(|| store.clone());
                let _ = reply.send((lane, store.fingerprint_part(), snap));
            }
        }
    }
    store
}

#[allow(clippy::too_many_arguments)]
fn run_lane_pool(
    node: NodeId,
    store: KvStore,
    exec_rx: Receiver<Decision>,
    ledger: Arc<Mutex<Ledger>>,
    ckpt_tx: Option<Sender<CheckpointMsg>>,
    cfg: CheckpointConfig,
    queue: QueuePolicy,
    lanes: usize,
    reorder_window: usize,
    metrics: Metrics,
) -> Digest {
    let mut checkpointing = cfg.enabled() && ckpt_tx.is_some();
    // Checkpoint certification needs honest per-lane fingerprints at
    // every barrier, so lanes hash incrementally; otherwise they defer
    // (dirty-shard rebuild at shutdown), like the sequential stage.
    let fingerprint = checkpointing;
    let window = reorder_window.max(1);
    metrics.set_exec_lanes(lanes);

    let lane_stores = store.split_lanes(lanes);
    let (done_tx, done_rx) = crossbeam::channel::unbounded::<LaneDone>();
    let mut job_txs: Vec<Sender<LaneJob>> = Vec::with_capacity(lanes);
    let mut lane_handles: Vec<JoinHandle<KvStore>> = Vec::with_capacity(lanes);
    for (lane, lane_store) in lane_stores.into_iter().enumerate() {
        // Window-bounded FIFO: at most `window` decisions are in flight;
        // a plain decision sends this lane at most one job (the +1 covers
        // the barrier probe), so its dispatch never blocks. Decisions with
        // cross-lane programs may send several jobs and can park the
        // scheduler on a full FIFO — safe, because lanes always drain.
        let (tx, rx) = crossbeam::channel::bounded::<LaneJob>(window + 1);
        let done = done_tx.clone();
        let lane_metrics = metrics.clone();
        let handle = std::thread::Builder::new()
            .name(format!("{node}-exec-lane{lane}"))
            .spawn(move || lane_loop(lane, lane_store, rx, done, lane_metrics))
            .expect("spawn lane thread");
        job_txs.push(tx);
        lane_handles.push(handle);
    }
    drop(done_tx);

    // The reorder window: decisions dispatched but not yet retired, in
    // commit order. `retired` counts retirements, so in-flight decision
    // `id` lives at index `id - retired`.
    let mut window_q: VecDeque<InFlight> = VecDeque::with_capacity(window);
    let mut next_id = 0u64;
    let mut retired = 0u64;
    let mut decided = 0u64;

    // Mark a completion against the window.
    let mark = |window_q: &mut VecDeque<InFlight>, retired: u64, done: LaneDone| {
        let idx = (done.id - retired) as usize;
        let f = &mut window_q[idx];
        f.waiting[done.lane] -= 1;
        f.left -= 1;
    };
    // Retire every ready decision at the window head, in commit order:
    // append to the shared ledger and account the Execute stage exactly
    // like the sequential loop.
    let retire_ready =
        |window_q: &mut VecDeque<InFlight>, retired: &mut u64, ledger: &Mutex<Ledger>| -> u64 {
            let mut height = 0;
            while window_q.front().is_some_and(|f| f.left == 0) {
                let f = window_q.pop_front().expect("checked front");
                let t0 = Instant::now();
                {
                    let mut l = ledger.lock();
                    l.append_decision(&f.decision);
                    height = l.head_height();
                }
                metrics.stage_processed(Stage::Execute, f.dispatch + t0.elapsed());
                *retired += 1;
            }
            height
        };
    // Block until one completion arrives, attributing the wait to the
    // lanes the window head is still missing (the conflict stall).
    let wait_one = |window_q: &mut VecDeque<InFlight>, retired: u64| -> bool {
        let head_mask = window_q.front().map_or(0, |f| f.waiting_mask());
        let t0 = Instant::now();
        match done_rx.recv() {
            Ok(done) => {
                metrics.lane_stalled(head_mask, t0.elapsed());
                mark(window_q, retired, done);
                true
            }
            Err(_) => false, // every lane thread exited (panic): give up
        }
    };

    while let Ok(decision) = exec_rx.recv() {
        // Reorder-window bound: park until the head retires.
        while window_q.len() >= window {
            if !wait_one(&mut window_q, retired) {
                break;
            }
            retire_ready(&mut window_q, &mut retired, &ledger);
        }
        let t0 = Instant::now();
        let ops: Vec<Operation> = decision
            .entries
            .iter()
            .flat_map(|e| e.batch.batch.operations())
            .cloned()
            .collect();
        let plan = store_lanes::plan_batch(&ops, lanes);
        let mut waiting = vec![0u16; lanes];
        let mut left = 0u32;
        for step in plan {
            match step {
                store_lanes::PlanStep::Items(parts) => {
                    for (lane, items) in parts.into_iter().enumerate() {
                        if items.is_empty() {
                            continue;
                        }
                        waiting[lane] += 1;
                        left += 1;
                        job_txs[lane]
                            .send(LaneJob::Apply {
                                id: next_id,
                                items,
                                fingerprint,
                            })
                            .expect("lane thread alive");
                    }
                }
                store_lanes::PlanStep::Program(step) => {
                    // Gather the static footprint from the owning lanes.
                    // The Gather job rides each lane's FIFO behind every
                    // earlier job of this (and prior) decisions, so the
                    // values it reads are exactly the sequential state.
                    let mut lane_keys: Vec<Vec<u64>> = vec![Vec::new(); lanes];
                    for key in step.prog.keys() {
                        lane_keys[store_lanes::lane_of(key, lanes)].push(key);
                    }
                    let (reply_tx, reply_rx) =
                        crossbeam::channel::bounded::<Vec<(u64, Option<Value>)>>(lanes);
                    let mut expected = 0;
                    for (lane, keys) in lane_keys.into_iter().enumerate() {
                        if keys.is_empty() {
                            continue;
                        }
                        expected += 1;
                        job_txs[lane]
                            .send(LaneJob::Gather {
                                keys,
                                reply: reply_tx.clone(),
                            })
                            .expect("lane thread alive");
                    }
                    drop(reply_tx);
                    let mut values: BTreeMap<u64, Option<Value>> = BTreeMap::new();
                    for _ in 0..expected {
                        for (key, value) in reply_rx.recv().expect("lane thread alive") {
                            values.insert(key, value);
                        }
                    }
                    // Evaluate once on the scheduler, then scatter the
                    // write set back onto the owning lanes; the home lane
                    // additionally books the program's stats.
                    let (outcome, writes) =
                        step.prog.eval_values(|k| values.get(&k).copied().flatten());
                    let mut lane_writes: Vec<Vec<(u64, Value)>> = vec![Vec::new(); lanes];
                    for (key, value) in writes {
                        lane_writes[store_lanes::lane_of(key, lanes)].push((key, value));
                    }
                    for (lane, writes) in lane_writes.into_iter().enumerate() {
                        let note = (lane == step.home).then(|| outcome.is_aborted());
                        if writes.is_empty() && note.is_none() {
                            continue;
                        }
                        waiting[lane] += 1;
                        left += 1;
                        job_txs[lane]
                            .send(LaneJob::Program {
                                id: next_id,
                                writes,
                                note,
                                fingerprint,
                            })
                            .expect("lane thread alive");
                    }
                }
            }
        }
        window_q.push_back(InFlight {
            decision,
            waiting,
            left,
            dispatch: t0.elapsed(),
        });
        next_id += 1;
        decided += 1;

        // Opportunistically drain completions and retire.
        while let Ok(done) = done_rx.try_recv() {
            mark(&mut window_q, retired, done);
        }
        retire_ready(&mut window_q, &mut retired, &ledger);

        // Checkpoint interval boundary (same count-based schedule as the
        // sequential tracker): drain the window so the lanes have
        // materialized exactly the committed prefix, then certify the
        // combined digest at the boundary height.
        if checkpointing && decided.is_multiple_of(cfg.interval) {
            while !window_q.is_empty() {
                if !wait_one(&mut window_q, retired) {
                    break;
                }
                retire_ready(&mut window_q, &mut retired, &ledger);
            }
            let height = ledger.lock().head_height();
            let (reply_tx, reply_rx) =
                crossbeam::channel::bounded::<(usize, ([u8; 32], u64), Option<KvStore>)>(lanes);
            for tx in &job_txs {
                tx.send(LaneJob::Checkpoint {
                    reply: reply_tx.clone(),
                    snapshot: cfg.retain_snapshot,
                })
                .expect("lane thread alive");
            }
            drop(reply_tx);
            let mut parts: Vec<([u8; 32], u64)> = Vec::with_capacity(lanes);
            let mut snaps: Vec<KvStore> = Vec::new();
            for _ in 0..lanes {
                let (_, part, snap) = reply_rx.recv().expect("lane thread alive");
                parts.push(part);
                snaps.extend(snap);
            }
            let state = KvStore::digest_from_parts(parts);
            let snapshot = cfg.retain_snapshot.then(|| KvStore::merge_lanes(snaps));
            let tx = ckpt_tx.as_ref().expect("checkpointing implies sender");
            match send_with_policy(
                tx,
                CheckpointMsg::Snapshot {
                    height,
                    state,
                    snapshot,
                },
                queue,
                false,
                &metrics,
                Stage::Checkpoint,
            ) {
                SendOutcome::Sent => metrics.stage_enqueued(Stage::Checkpoint),
                SendOutcome::Shed => unreachable!("snapshots never shed"),
                SendOutcome::Disconnected => checkpointing = false,
            }
        }
    }

    // Worker gone: drain the window, stop the lanes, reassemble the
    // combined digest for the execution-stage audit.
    while !window_q.is_empty() {
        if !wait_one(&mut window_q, retired) {
            break;
        }
        retire_ready(&mut window_q, &mut retired, &ledger);
    }
    drop(job_txs);
    drop(done_rx);
    let mut stores: Vec<KvStore> = lane_handles
        .into_iter()
        .map(|h| h.join().expect("lane thread panicked"))
        .collect();
    if !fingerprint {
        for s in &mut stores {
            // Dirty-shard rebuild: only the slices this lane wrote.
            s.rebuild_fingerprint();
        }
    }
    KvStore::combined_state_digest(&stores)
}

/// What the checkpoint stage knew when its replica stopped.
#[derive(Debug, Clone)]
pub struct CheckpointReport {
    /// Last quorum-certified (stable) ledger height (0 before any).
    pub stable_height: u64,
    /// The state digest the quorum certified at that height.
    pub stable_state: Digest,
    /// Stable checkpoints certified over the run, oldest first:
    /// `(height, state digest, anchor block hash)`. The block hash binds
    /// the *entire* chain prefix up to the checkpoint, so two replicas
    /// (or the simulator and the fabric) certifying the same height with
    /// the same hash committed byte-identical prefixes.
    pub certified: Vec<(u64, Digest, Digest)>,
    /// The retained [`KvStore`] snapshot of the last stable checkpoint
    /// ([`CheckpointConfig::retain_snapshot`]) — the state a restarting
    /// replica pairs with a peer's ledger suffix.
    pub snapshot: Option<(u64, KvStore)>,
    /// Unstable checkpoints still tracked at shutdown (the tracker's
    /// memory watermark — bounded by in-flight checkpoints, not by run
    /// length).
    pub tracked: usize,
    /// Highest snapshot height this replica's *own* checkpoint thread
    /// pulled off its queue (0 before any). This is the local throttle
    /// watermark: the Block-policy checkpoint queue bounds how far the
    /// executor's head can run past it, independent of whether a quorum
    /// of peers kept pace to certify those heights.
    pub processed_height: u64,
}

/// Spawn the checkpoint stage: snapshot jobs and peer votes →
/// quorum certification → ledger compaction.
///
/// The quorum is `N - F` over *all* `z·n` replicas (ledger heights are
/// protocol-independent, so pipeline checkpoints certify across the
/// whole deployment regardless of how the protocol scopes its consensus
/// groups). Votes leave through [`TransportSender::try_send`] — held and
/// retried on a full peer inbox, never parked on — so this thread always
/// returns to drain its queue, keeping the Block-policy backpressure
/// chain (executor → checkpoint queue → this thread) deadlock-free.
///
/// Compaction deliberately lags by one checkpoint: when height `H_k`
/// becomes stable the ledger is compacted to `H_{k-1}`, keeping the last
/// full interval as a grace window so that a peer restarting from *its*
/// latest stable checkpoint (at most one interval behind ours) still
/// finds its recovery anchor retained here.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_checkpointer(
    node: NodeId,
    system: SystemConfig,
    cfg: CheckpointConfig,
    ckpt_rx: Receiver<CheckpointMsg>,
    sender: TransportSender,
    ledger: Arc<Mutex<Ledger>>,
    backend: Option<SharedBackend>,
    metrics: Metrics,
) -> JoinHandle<CheckpointReport> {
    std::thread::Builder::new()
        .name(format!("{node}-checkpoint"))
        .spawn(move || {
            let NodeId::Replica(me) = node else {
                panic!("checkpoint stage runs on replicas only");
            };
            let peers: Vec<NodeId> = system
                .all_replicas()
                .map(NodeId::from)
                .filter(|p| *p != node)
                .collect();
            let members: Vec<ReplicaId> = system.all_replicas().collect();
            let mut tracker = CheckpointTracker::new(cfg.interval, system.global_quorum());
            let mut pending_snapshots: BTreeMap<u64, KvStore> = BTreeMap::new();
            let mut stable_snapshot: Option<(u64, KvStore)> = None;
            let mut certified: Vec<(u64, Digest, Digest)> = Vec::new();
            // Stable checkpoints whose anchor block the (lagging) local
            // ledger has not materialized yet; resolved in height order
            // once the executor catches up.
            let mut unresolved: VecDeque<StableCheckpoint> = VecDeque::new();
            let mut prev_stable = 0u64;
            let mut processed_height = 0u64;
            // Votes a full peer inbox handed back; retried every loop
            // iteration (the checkpoint stage's own "retransmission").
            let mut held: VecDeque<(NodeId, Message)> = VecDeque::new();
            loop {
                let msg = match ckpt_rx.recv_timeout(Duration::from_millis(5)) {
                    Ok(msg) => Some(msg),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                };
                let mut newly_stable = None;
                match msg {
                    Some(CheckpointMsg::Snapshot {
                        height,
                        state,
                        snapshot,
                    }) => {
                        let t0 = Instant::now();
                        if !cfg.fault_delay.is_zero() {
                            std::thread::sleep(cfg.fault_delay); // injected fault
                        }
                        processed_height = processed_height.max(height);
                        if tracker.record_own(height, state) {
                            if let Some(s) = snapshot {
                                pending_snapshots.insert(height, s);
                                // Stability lag keeps snapshots pending;
                                // bound them by keeping only the freshest
                                // few full-table clones (a dropped height
                                // only means stable_snapshot does not
                                // advance when that height stabilizes).
                                while pending_snapshots.len() > 8 {
                                    let oldest =
                                        *pending_snapshots.keys().next().expect("non-empty");
                                    pending_snapshots.remove(&oldest);
                                }
                            }
                            newly_stable = tracker.on_vote(me, height, state);
                            let vote = checkpoint::pipeline_vote(height, state);
                            for p in &peers {
                                if !sender.try_send(*p, vote.clone()) {
                                    held.push_back((*p, vote.clone()));
                                }
                            }
                        } else if let Some(s) = snapshot {
                            // A peer quorum certified this height before
                            // our own snapshot job drained (we are the
                            // laggard). The height is already stable, so
                            // the snapshot is immediately a valid — and
                            // fresher — recovery anchor.
                            if stable_snapshot.as_ref().is_none_or(|(h, _)| *h < height) {
                                stable_snapshot = Some((height, s));
                            }
                        }
                        metrics.stage_processed(Stage::Checkpoint, t0.elapsed());
                    }
                    Some(CheckpointMsg::Vote {
                        from,
                        height,
                        state,
                    }) => {
                        let t0 = Instant::now();
                        if members.contains(&from) {
                            newly_stable = tracker.on_vote(from, height, state);
                        }
                        metrics.stage_processed(Stage::Checkpoint, t0.elapsed());
                    }
                    None => {}
                }
                if let Some(stable) = newly_stable {
                    let t0 = Instant::now();
                    {
                        let mut l = ledger.lock();
                        // Lag-one compaction: keep the last interval as
                        // the peers' recovery grace window.
                        l.compact(prev_stable);
                    }
                    prev_stable = stable.seq;
                    unresolved.push_back(stable);
                    if let Some(s) = pending_snapshots.remove(&stable.seq) {
                        stable_snapshot = Some((stable.seq, s));
                    }
                    pending_snapshots.retain(|h, _| *h > stable.seq);
                    metrics.stage_batch(Stage::Checkpoint, 0, 0, t0.elapsed());
                }
                // Record certified anchors whose block the local ledger
                // has materialized. A quorum can stabilize a height this
                // replica's executor has not reached yet (quorum without
                // us); the anchor hash is then recorded as soon as the
                // block exists instead of being lost.
                while let Some(front) = unresolved.front().copied() {
                    let (anchor_hash, base) = {
                        let l = ledger.lock();
                        (l.block(front.seq).map(|b| b.hash()), l.base_height())
                    };
                    match anchor_hash {
                        Some(hash) => {
                            if let Some(be) = &backend {
                                // Durable mode: record the certified
                                // checkpoint and flush the engine — the
                                // stable prefix moves into run files and
                                // the WAL resets. The ledger blocks this
                                // stability compacts out of memory stay
                                // archived in the blocks keyspace (the
                                // executor persisted them at append).
                                storage::persist_checkpoint(be, front.seq, front.state, hash)
                                    .expect("durable checkpoint write failed");
                            }
                            certified.push((front.seq, front.state, hash));
                            unresolved.pop_front();
                        }
                        // A later stability compacted past this anchor
                        // before the executor ever materialized it — its
                        // hash is unrecordable; skip it instead of
                        // head-of-line blocking every later entry.
                        None if front.seq < base => {
                            unresolved.pop_front();
                        }
                        None => break, // executor not there yet
                    }
                }
                // Retry held votes without ever parking.
                for _ in 0..held.len() {
                    let (to, msg) = held.pop_front().expect("counted");
                    if !sender.try_send(to, msg.clone()) {
                        held.push_back((to, msg));
                    }
                }
            }
            CheckpointReport {
                stable_height: tracker.stable_seq(),
                stable_state: tracker.stable_state(),
                certified,
                snapshot: stable_snapshot,
                tracked: tracker.tracked().max(pending_snapshots.len()),
                processed_height,
            }
        })
        .expect("spawn checkpoint thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueuePolicy;
    use crossbeam::channel::{bounded, unbounded};
    use rdb_common::ids::{ClientId, ClusterId, ReplicaId};
    use rdb_consensus::messages::{Message, Scope};
    use rdb_consensus::types::{ClientBatch, DecisionEntry, SignedBatch, Transaction};
    use rdb_crypto::digest::Digest;
    use rdb_crypto::sign::KeyStore;
    use rdb_store::Operation;

    fn verify_ctx() -> (VerifyCtx, KeyStore) {
        let system = SystemConfig::geo(1, 4).unwrap();
        let ks = KeyStore::new(5);
        let signer = ks.register(ReplicaId::new(0, 0).into());
        let crypto = CryptoCtx::new(signer, ks.verifier(), true);
        (VerifyCtx { crypto, system }, ks)
    }

    fn request(ks: &KeyStore, index: u32, valid: bool) -> Envelope {
        let client = ClientId::new(0, index);
        let signer = ks.register(client.into());
        let batch = ClientBatch {
            client,
            batch_seq: 0,
            txns: vec![Transaction {
                client,
                seq: 0,
                op: Operation::NoOp,
            }],
        };
        let digest = batch.digest();
        let sig = if valid {
            signer.sign(digest.as_bytes())
        } else {
            signer.sign(b"forged")
        };
        Envelope {
            from: client.into(),
            to: ReplicaId::new(0, 0).into(),
            msg: Message::Request(SignedBatch {
                batch,
                pubkey: signer.public_key(),
                sig,
            }),
        }
    }

    #[test]
    fn verifier_pool_passes_valid_and_drops_forged() {
        let (verify, ks) = verify_ctx();
        let (verify_tx, verify_rx) = unbounded::<Envelope>();
        let (work_tx, work_rx) = unbounded::<VerifiedMessage>();
        let metrics = Metrics::new();
        let stop = Arc::new(AtomicBool::new(false));
        let handles = spawn_verifiers(
            ReplicaId::new(0, 0).into(),
            PipelineConfig::with_verifiers(3),
            verify,
            verify_rx,
            work_tx,
            None,
            metrics.clone(),
            Arc::clone(&stop),
        );
        assert_eq!(handles.len(), 3);
        // 8 valid requests interleaved with 4 forgeries.
        for i in 0..12u32 {
            verify_tx.send(request(&ks, i, i % 3 != 2)).unwrap();
        }
        let mut passed = Vec::new();
        for _ in 0..8 {
            passed.push(
                work_rx
                    .recv_timeout(Duration::from_secs(5))
                    .expect("valid request forwarded"),
            );
        }
        // Nothing else comes through: the forgeries are gone.
        assert!(work_rx.recv_timeout(Duration::from_millis(100)).is_err());
        stop.store(true, Ordering::SeqCst);
        for h in handles {
            h.join().unwrap();
        }
        let snap = metrics.stage_snapshot();
        assert_eq!(snap.row(Stage::Verify).processed, 8);
        assert_eq!(snap.row(Stage::Verify).dropped, 4);
        assert_eq!(snap.row(Stage::Verify).queue_depth, 0);
        for vm in passed {
            assert!(matches!(vm.message(), Message::Request(_)));
        }
    }

    #[test]
    fn verifier_pool_sheds_droppable_traffic_at_full_work_queue() {
        let (verify, _ks) = verify_ctx();
        let (verify_tx, verify_rx) = unbounded::<Envelope>();
        // A work queue of 2 that nobody drains: the first two verified
        // messages fill it, the rest must be shed (Prepares are
        // droppable), never blocking the verifier.
        let (work_tx, work_rx) = bounded::<VerifiedMessage>(2);
        let metrics = Metrics::new();
        let stop = Arc::new(AtomicBool::new(false));
        let mut cfg = PipelineConfig::with_verifiers(1);
        cfg.queues.work = QueuePolicy::shed(2);
        let handles = spawn_verifiers(
            ReplicaId::new(0, 0).into(),
            cfg,
            verify,
            verify_rx,
            work_tx,
            None,
            metrics.clone(),
            Arc::clone(&stop),
        );
        let from: NodeId = ReplicaId::new(0, 1).into();
        for seq in 0..6u64 {
            verify_tx
                .send(Envelope {
                    from,
                    to: ReplicaId::new(0, 0).into(),
                    msg: Message::Prepare {
                        scope: Scope::Global,
                        view: 0,
                        seq,
                        digest: Digest::ZERO,
                    },
                })
                .unwrap();
        }
        // The verifier keeps draining (never parks): wait until all six
        // messages are accounted for as forwarded-or-shed.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let snap = metrics.stage_snapshot();
            let row = snap.row(Stage::Order);
            if row.enqueued + row.shed == 6 {
                break;
            }
            assert!(Instant::now() < deadline, "stalled: {}", snap.summary());
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::SeqCst);
        for h in handles {
            h.join().unwrap();
        }
        let snap = metrics.stage_snapshot();
        assert_eq!(snap.row(Stage::Order).enqueued, 2);
        assert_eq!(snap.row(Stage::Order).shed, 4);
        assert_eq!(snap.row(Stage::Verify).processed, 6, "all were verified");
        assert_eq!(work_rx.len(), 2, "queue depth stayed at its bound");
    }

    #[test]
    fn verifier_pool_blocks_on_undroppable_traffic() {
        let (verify, ks) = verify_ctx();
        let (verify_tx, verify_rx) = unbounded::<Envelope>();
        let (work_tx, work_rx) = bounded::<VerifiedMessage>(1);
        let metrics = Metrics::new();
        let stop = Arc::new(AtomicBool::new(false));
        let mut cfg = PipelineConfig::with_verifiers(1);
        // Even under Shed, client Requests are non-droppable: the
        // verifier parks on the full queue instead of losing them.
        cfg.queues.work = QueuePolicy::shed(1);
        let handles = spawn_verifiers(
            ReplicaId::new(0, 0).into(),
            cfg,
            verify,
            verify_rx,
            work_tx,
            None,
            metrics.clone(),
            Arc::clone(&stop),
        );
        for i in 0..4u32 {
            verify_tx.send(request(&ks, i, true)).unwrap();
        }
        // Drain slowly: every request must come through despite the
        // 1-slot queue.
        let mut got = 0;
        while got < 4 {
            std::thread::sleep(Duration::from_millis(10));
            if work_rx.recv_timeout(Duration::from_secs(5)).is_ok() {
                got += 1;
            }
        }
        stop.store(true, Ordering::SeqCst);
        for h in handles {
            h.join().unwrap();
        }
        let snap = metrics.stage_snapshot();
        assert_eq!(snap.row(Stage::Order).shed, 0, "requests must not shed");
        assert_eq!(snap.row(Stage::Order).enqueued, 4);
        assert!(
            snap.row(Stage::Order).blocked > Duration::ZERO,
            "the verifier must have waited for room: {}",
            snap.summary()
        );
    }

    fn send_write_decisions(exec_tx: &Sender<Decision>, n: u64) {
        let client = ClientId::new(0, 0);
        for seq in 1..=n {
            let batch = ClientBatch {
                client,
                batch_seq: seq,
                txns: vec![Transaction {
                    client,
                    seq,
                    op: Operation::Write {
                        key: seq,
                        value: rdb_store::Value::from_u64(seq),
                    },
                }],
            };
            exec_tx
                .send(Decision {
                    seq,
                    entries: vec![DecisionEntry {
                        origin: Some(ClusterId(0)),
                        batch: SignedBatch {
                            batch,
                            pubkey: Default::default(),
                            sig: Default::default(),
                        },
                    }],
                    state_digest: Digest::of(&seq.to_le_bytes()),
                })
                .unwrap();
        }
    }

    #[test]
    fn executor_applies_decisions_in_order() {
        let (exec_tx, exec_rx) = unbounded::<Decision>();
        let metrics = Metrics::new();
        let ledger = Arc::new(parking_lot::Mutex::new(Ledger::new()));
        let handle = spawn_executor(
            ReplicaId::new(0, 0).into(),
            KvStore::new(),
            exec_rx,
            Arc::clone(&ledger),
            None,
            CheckpointTracker::new(0, 3),
            CheckpointConfig::default(),
            QueuePolicy::block(8),
            1,
            8,
            None,
            metrics.clone(),
        );
        send_write_decisions(&exec_tx, 5);
        drop(exec_tx); // worker shutdown: executor drains and returns
        let exec_digest = handle.join().unwrap();
        let Ok(ledger) = Arc::try_unwrap(ledger) else {
            unreachable!("executor joined");
        };
        let ledger = ledger.into_inner();
        // The materialized table matches an inline application of the
        // same writes (fingerprint rebuilt after the deferred applies).
        let mut reference = KvStore::new();
        for seq in 1..=5u64 {
            reference.execute(&Operation::Write {
                key: seq,
                value: rdb_store::Value::from_u64(seq),
            });
        }
        assert_eq!(exec_digest, reference.state_digest());
        assert_eq!(ledger.head_height(), 5);
        // FIFO hand-off preserves decision order in the chain.
        for h in 1..=5u64 {
            let block = ledger.block(h).expect("block present");
            assert_eq!(block.batch.batch.batch_seq, h);
            assert_eq!(block.state_digest, Digest::of(&h.to_le_bytes()));
        }
        ledger.verify(None).expect("chain linkage intact");
        assert_eq!(metrics.stage_snapshot().row(Stage::Execute).processed, 5);
    }

    #[test]
    fn executor_snapshots_every_interval_with_live_fingerprint() {
        let (exec_tx, exec_rx) = unbounded::<Decision>();
        let (ckpt_tx, ckpt_rx) = bounded::<CheckpointMsg>(8);
        let metrics = Metrics::new();
        let ledger = Arc::new(parking_lot::Mutex::new(Ledger::new()));
        let cfg = CheckpointConfig {
            interval: 2,
            retain_snapshot: true,
            fault_delay: Duration::ZERO,
        };
        let handle = spawn_executor(
            ReplicaId::new(0, 0).into(),
            KvStore::new(),
            exec_rx,
            Arc::clone(&ledger),
            Some(ckpt_tx),
            CheckpointTracker::new(cfg.interval, 3),
            cfg,
            QueuePolicy::block(8),
            1,
            8,
            None,
            metrics.clone(),
        );
        send_write_decisions(&exec_tx, 5);
        drop(exec_tx);
        let exec_digest = handle.join().unwrap();

        // Reference: the honest table digest after each prefix.
        let mut reference = KvStore::new();
        let mut digests = vec![reference.state_digest()];
        for seq in 1..=5u64 {
            reference.execute(&Operation::Write {
                key: seq,
                value: rdb_store::Value::from_u64(seq),
            });
            digests.push(reference.state_digest());
        }
        assert_eq!(exec_digest, digests[5], "live fingerprint stays honest");

        // Interval 2 over 5 decisions: snapshot jobs at heights 2 and 4.
        let jobs: Vec<CheckpointMsg> = ckpt_rx.iter().collect();
        assert_eq!(jobs.len(), 2);
        for (job, expect_h) in jobs.iter().zip([2u64, 4]) {
            let CheckpointMsg::Snapshot {
                height,
                state,
                snapshot,
            } = job
            else {
                panic!("executor only emits snapshots");
            };
            assert_eq!(*height, expect_h);
            assert_eq!(*state, digests[expect_h as usize]);
            let snap = snapshot.as_ref().expect("retained");
            assert_eq!(snap.state_digest(), *state);
            assert!(snap.verify_fingerprint(), "snapshot digest is live");
        }
        assert_eq!(metrics.stage_snapshot().row(Stage::Checkpoint).enqueued, 2);
    }

    /// Run `spawn_executor` with `lanes` over `n` single-write decisions
    /// and return (exec digest, ledger, snapshot jobs, metrics).
    fn run_executor_lanes(
        lanes: usize,
        window: usize,
        n: u64,
        cfg: CheckpointConfig,
    ) -> (Digest, Ledger, Vec<CheckpointMsg>, Metrics) {
        let (exec_tx, exec_rx) = unbounded::<Decision>();
        let (ckpt_tx, ckpt_rx) = bounded::<CheckpointMsg>(64);
        let metrics = Metrics::new();
        let ledger = Arc::new(parking_lot::Mutex::new(Ledger::new()));
        let handle = spawn_executor(
            ReplicaId::new(0, 0).into(),
            KvStore::with_ycsb_records(64),
            exec_rx,
            Arc::clone(&ledger),
            cfg.enabled().then_some(ckpt_tx.clone()),
            CheckpointTracker::new(cfg.interval, 3),
            cfg,
            QueuePolicy::block(8),
            lanes,
            window,
            None,
            metrics.clone(),
        );
        send_write_decisions(&exec_tx, n);
        drop(exec_tx);
        let digest = handle.join().unwrap();
        drop(ckpt_tx);
        let jobs: Vec<CheckpointMsg> = ckpt_rx.iter().collect();
        let Ok(ledger) = Arc::try_unwrap(ledger) else {
            unreachable!("executor joined");
        };
        (digest, ledger.into_inner(), jobs, metrics)
    }

    #[test]
    fn lane_pool_is_byte_identical_to_sequential() {
        let (seq_digest, seq_ledger, _, _) =
            run_executor_lanes(1, 8, 20, CheckpointConfig::default());
        for lanes in [2usize, 4] {
            let (digest, ledger, _, metrics) =
                run_executor_lanes(lanes, 8, 20, CheckpointConfig::default());
            assert_eq!(digest, seq_digest, "lanes={lanes}");
            assert_eq!(ledger.head_height(), seq_ledger.head_height());
            for h in 1..=20u64 {
                assert_eq!(
                    ledger.block(h).unwrap().hash(),
                    seq_ledger.block(h).unwrap().hash(),
                    "block {h} diverged at lanes={lanes}"
                );
            }
            let snap = metrics.stage_snapshot();
            assert_eq!(snap.row(Stage::Execute).processed, 20);
            assert_eq!(snap.lanes.len(), lanes, "per-lane rows surfaced");
            let lane_ops: u64 = snap.lanes.iter().map(|l| l.ops).sum();
            assert_eq!(lane_ops, 20, "one write per decision, counted once");
        }
    }

    #[test]
    fn lane_pool_checkpoints_at_identical_boundaries() {
        let cfg = CheckpointConfig {
            interval: 3,
            retain_snapshot: true,
            fault_delay: Duration::ZERO,
        };
        let (seq_digest, _, seq_jobs, _) = run_executor_lanes(1, 8, 10, cfg);
        let (digest, _, jobs, _) = run_executor_lanes(4, 8, 10, cfg);
        assert_eq!(digest, seq_digest);
        assert_eq!(jobs.len(), seq_jobs.len(), "same boundary count");
        for (job, seq_job) in jobs.iter().zip(&seq_jobs) {
            let (
                CheckpointMsg::Snapshot {
                    height,
                    state,
                    snapshot,
                },
                CheckpointMsg::Snapshot {
                    height: sh,
                    state: ss,
                    snapshot: ssnap,
                },
            ) = (job, seq_job)
            else {
                panic!("executors only emit snapshots");
            };
            assert_eq!(height, sh);
            assert_eq!(state, ss, "combined lane digest == sequential digest");
            let (snap, ssnap) = (snapshot.as_ref().unwrap(), ssnap.as_ref().unwrap());
            assert_eq!(snap.state_digest(), ssnap.state_digest());
            assert_eq!(snap.stats(), ssnap.stats(), "merged lane stats match");
            assert!(snap.verify_fingerprint(), "merged snapshot is live");
        }
    }

    #[test]
    fn lane_pool_respects_tiny_reorder_window() {
        // Window of 1 degenerates to lock-step dispatch; still correct.
        let (seq_digest, seq_ledger, _, _) =
            run_executor_lanes(1, 8, 12, CheckpointConfig::default());
        let (digest, ledger, _, _) = run_executor_lanes(4, 1, 12, CheckpointConfig::default());
        assert_eq!(digest, seq_digest);
        assert_eq!(
            ledger.block(12).unwrap().hash(),
            seq_ledger.block(12).unwrap().hash()
        );
    }

    #[test]
    fn checkpointer_certifies_quorum_and_compacts_with_lag() {
        use crate::transport::InProcTransport;
        let system = SystemConfig::geo(1, 4).unwrap();
        let transport = InProcTransport::new(None);
        let me: NodeId = ReplicaId::new(0, 0).into();
        let handle = transport.register(me);
        let peer_handles: Vec<_> = (1..4u16)
            .map(|i| transport.register(ReplicaId::new(0, i).into()))
            .collect();
        let (_inbox, sender) = handle.split();

        // A ledger of 5 blocks whose state digests we will certify.
        let ledger = Arc::new(parking_lot::Mutex::new(Ledger::new()));
        let mut states = vec![Digest::ZERO];
        {
            let mut l = ledger.lock();
            for i in 1..=5u64 {
                let d = Digest::of(&i.to_le_bytes());
                l.append(SignedBatch::noop(ClusterId(0), i), None, d);
                states.push(d);
            }
        }

        let (ckpt_tx, ckpt_rx) = bounded::<CheckpointMsg>(8);
        let metrics = Metrics::new();
        let cfg = CheckpointConfig::every(2);
        let h = spawn_checkpointer(
            me,
            system,
            cfg,
            ckpt_rx,
            sender,
            Arc::clone(&ledger),
            None,
            metrics.clone(),
        );

        let vote = |from: u16, height: u64| CheckpointMsg::Vote {
            from: ReplicaId::new(0, from),
            height,
            state: states[height as usize],
        };
        // Own snapshot at 2 + two peer votes = quorum 3 of 4.
        ckpt_tx
            .send(CheckpointMsg::Snapshot {
                height: 2,
                state: states[2],
                snapshot: None,
            })
            .unwrap();
        ckpt_tx.send(vote(1, 2)).unwrap();
        ckpt_tx.send(vote(2, 2)).unwrap();
        // Second checkpoint at 4.
        ckpt_tx
            .send(CheckpointMsg::Snapshot {
                height: 4,
                state: states[4],
                snapshot: None,
            })
            .unwrap();
        ckpt_tx.send(vote(1, 4)).unwrap();
        ckpt_tx.send(vote(3, 4)).unwrap();
        drop(ckpt_tx);
        let report = h.join().unwrap();

        assert_eq!(report.stable_height, 4);
        assert_eq!(report.stable_state, states[4]);
        assert_eq!(report.certified.len(), 2);
        assert_eq!(report.certified[0].0, 2);
        assert_eq!(report.certified[1].0, 4);
        assert_eq!(report.tracked, 0, "stability pruned the tracker");
        // Lag-one compaction: stabilizing 4 compacts to 2 (the grace
        // window for peers restarting from *their* last checkpoint).
        let Ok(l) = Arc::try_unwrap(ledger) else {
            unreachable!("checkpointer joined");
        };
        let l = l.into_inner();
        assert_eq!(l.base_height(), 2);
        assert_eq!(l.head_height(), 5);
        l.verify(None).expect("compacted chain intact");
        // Both checkpoints were broadcast to every peer as non-droppable
        // pipeline-scope votes.
        for ph in &peer_handles {
            let mut got = Vec::new();
            while let Ok(env) = ph.inbox.recv_timeout(Duration::from_millis(200)) {
                assert!(rdb_consensus::checkpoint::is_pipeline_vote(&env.msg));
                assert!(!env.msg.droppable());
                got.push(env.msg);
                if got.len() == 2 {
                    break;
                }
            }
            assert_eq!(got.len(), 2, "peer missed a checkpoint vote");
        }
    }
}
