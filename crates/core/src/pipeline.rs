//! The verifier and execution stages of the replica pipeline (paper
//! Figure 9).
//!
//! [`crate::node::ReplicaRuntime`] wires these into the full
//! input → verify ×N → order → execute → output thread chain. The stages
//! here are the ones that moved *off* the ordering worker in the staged
//! refactor:
//!
//! * **Verify** — a configurable pool of threads draining the raw envelope
//!   queue in batches, running the pure [`VerifiedMessage::check`]
//!   signature checks from `rdb-consensus`, and forwarding only valid
//!   traffic to the worker (which runs on a
//!   [`rdb_consensus::crypto_ctx::CryptoCtx::preverified`] context).
//! * **Execute** — a single thread applying finalized [`Decision`]s to the
//!   node's `rdb-store` table and appending them to the `rdb-ledger`
//!   chain, so neither store writes nor ledger hashing sit on the
//!   consensus critical path.
//!
//! Every hand-off between stages runs over a *bounded* channel sized by
//! [`PipelineConfig::queues`] (see [`crate::queue`] for the overload
//! policies): the verifier pool blocks on a full work queue, which is how
//! backpressure propagates backwards from the worker to the transport
//! edge and ultimately to submitting clients.

use crate::metrics::Metrics;
use crate::queue::{send_with_policy, SendOutcome, StageQueues};
use crate::transport::Envelope;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use rdb_common::config::SystemConfig;
use rdb_common::ids::NodeId;
use rdb_consensus::crypto_ctx::CryptoCtx;
use rdb_consensus::stage::{Stage, VerifiedMessage};
use rdb_consensus::types::Decision;
use rdb_ledger::Ledger;
use rdb_store::KvStore;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Thread and queue layout of one replica's pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Parallel verifier threads between input and worker.
    pub verifier_threads: usize,
    /// Maximum envelopes one verifier drains per wakeup (batched
    /// signature checking amortizes queue synchronization).
    pub verify_batch: usize,
    /// Bounded inter-stage queue layout (capacity + overload policy per
    /// queue; see [`crate::queue`]). Every channel between stages is
    /// bounded — an overloaded replica sheds droppable traffic or blocks
    /// its producers instead of growing memory without bound.
    pub queues: StageQueues,
}

impl Default for PipelineConfig {
    /// Sizes the verifier pool to the hardware, like the paper's fabric
    /// sizes its thread pools to the testbed's cores: one verifier on
    /// small hosts, two on ~8-core machines, up to four beyond that.
    /// Extra pool threads on a starved host only add context switches.
    /// Queues are derived from the default batch size and that fan-out
    /// ([`StageQueues::derive`]).
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let verifier_threads = (cores / 4).clamp(1, 4);
        PipelineConfig {
            verifier_threads,
            verify_batch: 16,
            queues: StageQueues::derive(10, verifier_threads),
        }
    }
}

impl PipelineConfig {
    /// A pipeline with `n` verifier threads (at least one); queues are
    /// re-derived for that fan-out.
    pub fn with_verifiers(n: usize) -> PipelineConfig {
        let n = n.max(1);
        PipelineConfig {
            verifier_threads: n,
            queues: StageQueues::derive(10, n),
            ..PipelineConfig::default()
        }
    }
}

/// What the verifier stage needs to check signatures: the node's *full*
/// crypto context (inbound checks on) and the system layout for
/// certificate membership checks.
#[derive(Clone)]
pub struct VerifyCtx {
    /// Full-verification crypto context.
    pub crypto: CryptoCtx,
    /// Deployment shape (cluster membership, quorum sizes).
    pub system: SystemConfig,
}

/// Spawn the verifier pool: `verify_rx` (the transport inbox — its
/// delivery is the input stage) → checked → `work_tx`.
pub(crate) fn spawn_verifiers(
    node: NodeId,
    cfg: PipelineConfig,
    verify: VerifyCtx,
    verify_rx: Receiver<Envelope>,
    work_tx: Sender<VerifiedMessage>,
    metrics: Metrics,
    stop: Arc<AtomicBool>,
) -> Vec<JoinHandle<()>> {
    (0..cfg.verifier_threads.max(1))
        .map(|i| {
            let verify = verify.clone();
            let rx = verify_rx.clone();
            let tx = work_tx.clone();
            let metrics = metrics.clone();
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("{node}-verify{i}"))
                .spawn(move || verifier_loop(&verify, &rx, &tx, &metrics, &stop, cfg))
                .expect("spawn verifier thread")
        })
        .collect()
}

fn verifier_loop(
    verify: &VerifyCtx,
    rx: &Receiver<Envelope>,
    tx: &Sender<VerifiedMessage>,
    metrics: &Metrics,
    stop: &AtomicBool,
    cfg: PipelineConfig,
) {
    let batch_limit = cfg.verify_batch.max(1);
    let mut batch = Vec::with_capacity(batch_limit);
    while !stop.load(Ordering::Relaxed) {
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(env) => {
                batch.push(env);
                while batch.len() < batch_limit {
                    match rx.try_recv() {
                        Ok(env) => batch.push(env),
                        Err(_) => break,
                    }
                }
                // Envelopes leave the input stage (the transport inbox)
                // and enter verification.
                metrics.stage_batch(Stage::Input, batch.len() as u64, 0, Duration::ZERO);
                metrics.stage_enqueued_many(Stage::Verify, batch.len() as u64);
                let t0 = Instant::now();
                let (mut ok, mut dropped, mut forwarded) = (0u64, 0u64, 0u64);
                for env in batch.drain(..) {
                    match VerifiedMessage::check(&verify.system, &verify.crypto, env.from, env.msg)
                    {
                        Some(vm) => {
                            ok += 1;
                            let droppable = vm.message().droppable();
                            // A full work queue parks this verifier
                            // (Block) — which stops it draining the inbox
                            // and pushes the pressure to the transport
                            // edge — or sheds droppable traffic (Shed),
                            // counted against the Order stage.
                            match send_with_policy(
                                tx,
                                vm,
                                cfg.queues.work,
                                droppable,
                                metrics,
                                Stage::Order,
                            ) {
                                SendOutcome::Sent => forwarded += 1,
                                SendOutcome::Shed => {}
                                SendOutcome::Disconnected => return, // worker gone
                            }
                        }
                        None => dropped += 1,
                    }
                }
                metrics.stage_enqueued_many(Stage::Order, forwarded);
                metrics.stage_batch(Stage::Verify, ok, dropped, t0.elapsed());
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Spawn the execution stage: `exec_rx` → store apply → ledger append.
/// Runs until the worker drops its sender, so every decision emitted
/// before shutdown is persisted. Returns the final [`Ledger`] plus the
/// materialized table's state digest on join — which must equal the last
/// appended block's `state_digest` (the ordering state machine executed
/// the same decisions against an identically-preloaded store), making the
/// off-path materialization independently auditable.
pub(crate) fn spawn_executor(
    node: NodeId,
    mut store: KvStore,
    exec_rx: Receiver<Decision>,
    metrics: Metrics,
) -> JoinHandle<(Ledger, rdb_crypto::digest::Digest)> {
    std::thread::Builder::new()
        .name(format!("{node}-execute"))
        .spawn(move || {
            let mut ledger = Ledger::new();
            while let Ok(decision) = exec_rx.recv() {
                let t0 = Instant::now();
                for entry in &decision.entries {
                    for op in entry.batch.batch.operations() {
                        // The decision's state digest is authoritative
                        // (computed by the ordering state machine), so the
                        // materialized table skips per-write fingerprint
                        // hashing; the digest is rebuilt once at shutdown.
                        store.execute_unfingerprinted(op);
                    }
                }
                ledger.append_decision(&decision);
                metrics.stage_processed(Stage::Execute, t0.elapsed());
            }
            store.rebuild_fingerprint();
            (ledger, store.state_digest())
        })
        .expect("spawn execution thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueuePolicy;
    use crossbeam::channel::{bounded, unbounded};
    use rdb_common::ids::{ClientId, ClusterId, ReplicaId};
    use rdb_consensus::messages::{Message, Scope};
    use rdb_consensus::types::{ClientBatch, DecisionEntry, SignedBatch, Transaction};
    use rdb_crypto::digest::Digest;
    use rdb_crypto::sign::KeyStore;
    use rdb_store::Operation;

    fn verify_ctx() -> (VerifyCtx, KeyStore) {
        let system = SystemConfig::geo(1, 4).unwrap();
        let ks = KeyStore::new(5);
        let signer = ks.register(ReplicaId::new(0, 0).into());
        let crypto = CryptoCtx::new(signer, ks.verifier(), true);
        (VerifyCtx { crypto, system }, ks)
    }

    fn request(ks: &KeyStore, index: u32, valid: bool) -> Envelope {
        let client = ClientId::new(0, index);
        let signer = ks.register(client.into());
        let batch = ClientBatch {
            client,
            batch_seq: 0,
            txns: vec![Transaction {
                client,
                seq: 0,
                op: Operation::NoOp,
            }],
        };
        let digest = batch.digest();
        let sig = if valid {
            signer.sign(digest.as_bytes())
        } else {
            signer.sign(b"forged")
        };
        Envelope {
            from: client.into(),
            to: ReplicaId::new(0, 0).into(),
            msg: Message::Request(SignedBatch {
                batch,
                pubkey: signer.public_key(),
                sig,
            }),
        }
    }

    #[test]
    fn verifier_pool_passes_valid_and_drops_forged() {
        let (verify, ks) = verify_ctx();
        let (verify_tx, verify_rx) = unbounded::<Envelope>();
        let (work_tx, work_rx) = unbounded::<VerifiedMessage>();
        let metrics = Metrics::new();
        let stop = Arc::new(AtomicBool::new(false));
        let handles = spawn_verifiers(
            ReplicaId::new(0, 0).into(),
            PipelineConfig::with_verifiers(3),
            verify,
            verify_rx,
            work_tx,
            metrics.clone(),
            Arc::clone(&stop),
        );
        assert_eq!(handles.len(), 3);
        // 8 valid requests interleaved with 4 forgeries.
        for i in 0..12u32 {
            verify_tx.send(request(&ks, i, i % 3 != 2)).unwrap();
        }
        let mut passed = Vec::new();
        for _ in 0..8 {
            passed.push(
                work_rx
                    .recv_timeout(Duration::from_secs(5))
                    .expect("valid request forwarded"),
            );
        }
        // Nothing else comes through: the forgeries are gone.
        assert!(work_rx.recv_timeout(Duration::from_millis(100)).is_err());
        stop.store(true, Ordering::SeqCst);
        for h in handles {
            h.join().unwrap();
        }
        let snap = metrics.stage_snapshot();
        assert_eq!(snap.row(Stage::Verify).processed, 8);
        assert_eq!(snap.row(Stage::Verify).dropped, 4);
        assert_eq!(snap.row(Stage::Verify).queue_depth, 0);
        for vm in passed {
            assert!(matches!(vm.message(), Message::Request(_)));
        }
    }

    #[test]
    fn verifier_pool_sheds_droppable_traffic_at_full_work_queue() {
        let (verify, _ks) = verify_ctx();
        let (verify_tx, verify_rx) = unbounded::<Envelope>();
        // A work queue of 2 that nobody drains: the first two verified
        // messages fill it, the rest must be shed (Prepares are
        // droppable), never blocking the verifier.
        let (work_tx, work_rx) = bounded::<VerifiedMessage>(2);
        let metrics = Metrics::new();
        let stop = Arc::new(AtomicBool::new(false));
        let mut cfg = PipelineConfig::with_verifiers(1);
        cfg.queues.work = QueuePolicy::shed(2);
        let handles = spawn_verifiers(
            ReplicaId::new(0, 0).into(),
            cfg,
            verify,
            verify_rx,
            work_tx,
            metrics.clone(),
            Arc::clone(&stop),
        );
        let from: NodeId = ReplicaId::new(0, 1).into();
        for seq in 0..6u64 {
            verify_tx
                .send(Envelope {
                    from,
                    to: ReplicaId::new(0, 0).into(),
                    msg: Message::Prepare {
                        scope: Scope::Global,
                        view: 0,
                        seq,
                        digest: Digest::ZERO,
                    },
                })
                .unwrap();
        }
        // The verifier keeps draining (never parks): wait until all six
        // messages are accounted for as forwarded-or-shed.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let snap = metrics.stage_snapshot();
            let row = snap.row(Stage::Order);
            if row.enqueued + row.shed == 6 {
                break;
            }
            assert!(Instant::now() < deadline, "stalled: {}", snap.summary());
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::SeqCst);
        for h in handles {
            h.join().unwrap();
        }
        let snap = metrics.stage_snapshot();
        assert_eq!(snap.row(Stage::Order).enqueued, 2);
        assert_eq!(snap.row(Stage::Order).shed, 4);
        assert_eq!(snap.row(Stage::Verify).processed, 6, "all were verified");
        assert_eq!(work_rx.len(), 2, "queue depth stayed at its bound");
    }

    #[test]
    fn verifier_pool_blocks_on_undroppable_traffic() {
        let (verify, ks) = verify_ctx();
        let (verify_tx, verify_rx) = unbounded::<Envelope>();
        let (work_tx, work_rx) = bounded::<VerifiedMessage>(1);
        let metrics = Metrics::new();
        let stop = Arc::new(AtomicBool::new(false));
        let mut cfg = PipelineConfig::with_verifiers(1);
        // Even under Shed, client Requests are non-droppable: the
        // verifier parks on the full queue instead of losing them.
        cfg.queues.work = QueuePolicy::shed(1);
        let handles = spawn_verifiers(
            ReplicaId::new(0, 0).into(),
            cfg,
            verify,
            verify_rx,
            work_tx,
            metrics.clone(),
            Arc::clone(&stop),
        );
        for i in 0..4u32 {
            verify_tx.send(request(&ks, i, true)).unwrap();
        }
        // Drain slowly: every request must come through despite the
        // 1-slot queue.
        let mut got = 0;
        while got < 4 {
            std::thread::sleep(Duration::from_millis(10));
            if work_rx.recv_timeout(Duration::from_secs(5)).is_ok() {
                got += 1;
            }
        }
        stop.store(true, Ordering::SeqCst);
        for h in handles {
            h.join().unwrap();
        }
        let snap = metrics.stage_snapshot();
        assert_eq!(snap.row(Stage::Order).shed, 0, "requests must not shed");
        assert_eq!(snap.row(Stage::Order).enqueued, 4);
        assert!(
            snap.row(Stage::Order).blocked > Duration::ZERO,
            "the verifier must have waited for room: {}",
            snap.summary()
        );
    }

    #[test]
    fn executor_applies_decisions_in_order() {
        let (exec_tx, exec_rx) = unbounded::<Decision>();
        let metrics = Metrics::new();
        let handle = spawn_executor(
            ReplicaId::new(0, 0).into(),
            KvStore::new(),
            exec_rx,
            metrics.clone(),
        );
        let client = ClientId::new(0, 0);
        for seq in 1..=5u64 {
            let batch = ClientBatch {
                client,
                batch_seq: seq,
                txns: vec![Transaction {
                    client,
                    seq,
                    op: Operation::Write {
                        key: seq,
                        value: rdb_store::Value::from_u64(seq),
                    },
                }],
            };
            exec_tx
                .send(Decision {
                    seq,
                    entries: vec![DecisionEntry {
                        origin: Some(ClusterId(0)),
                        batch: SignedBatch {
                            batch,
                            pubkey: Default::default(),
                            sig: Default::default(),
                        },
                    }],
                    state_digest: Digest::of(&seq.to_le_bytes()),
                })
                .unwrap();
        }
        drop(exec_tx); // worker shutdown: executor drains and returns
        let (ledger, exec_digest) = handle.join().unwrap();
        // The materialized table matches an inline application of the
        // same writes (fingerprint rebuilt after the deferred applies).
        let mut reference = KvStore::new();
        for seq in 1..=5u64 {
            reference.execute(&Operation::Write {
                key: seq,
                value: rdb_store::Value::from_u64(seq),
            });
        }
        assert_eq!(exec_digest, reference.state_digest());
        assert_eq!(ledger.head_height(), 5);
        // FIFO hand-off preserves decision order in the chain.
        for h in 1..=5u64 {
            let block = ledger.block(h).expect("block present");
            assert_eq!(block.batch.batch.batch_seq, h);
            assert_eq!(block.state_digest, Digest::of(&h.to_le_bytes()));
        }
        ledger.verify(None).expect("chain linkage intact");
        assert_eq!(metrics.stage_snapshot().row(Stage::Execute).processed, 5);
    }
}
