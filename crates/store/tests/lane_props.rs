//! Property test: key-sharded lane execution is indistinguishable from
//! sequential execution — for random YCSB-style batches and any lane
//! count, the per-transaction `TxnEffect`s, merged statistics, and table
//! digest are byte-identical to `KvStore::execute_batch` on one store.

use proptest::prelude::*;
use rdb_store::lanes::execute_batch_sharded;
use rdb_store::txn::TxnProgram;
use rdb_store::{KvStore, Operation, Value};

const RECORDS: u64 = 96;

fn arb_op() -> impl Strategy<Value = Operation> {
    prop_oneof![
        (0u64..128, any::<u64>()).prop_map(|(key, v)| Operation::Write {
            key,
            value: Value::from_u64(v)
        }),
        (0u64..128).prop_map(|key| Operation::Read { key }),
        (0u64..128, 0u64..1000).prop_map(|(key, delta)| Operation::Rmw { key, delta }),
        (96u64..160, any::<u64>()).prop_map(|(key, v)| Operation::Insert {
            key,
            value: Value::from_u64(v)
        }),
        (0u64..128, 0u32..32).prop_map(|(key, count)| Operation::Scan { key, count }),
        Just(Operation::NoOp),
    ]
}

fn arb_batches() -> impl Strategy<Value = Vec<Vec<Operation>>> {
    proptest::collection::vec(proptest::collection::vec(arb_op(), 0..12), 0..20)
}

/// An account pick heavily biased towards a tiny hot set, so programs in
/// the same batch conflict on purpose (the chronically-underfunded hot
/// accounts also make underflow aborts routine, exercising the
/// abort-touches-nothing path under sharded execution).
fn arb_account() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..4, // hot, conflicting, underfunded
        0u64..4,
        0u64..4,
        0u64..RECORDS, // anywhere in the preload
    ]
}

/// SmallBank-shaped transaction programs: transfers (plain and
/// branch-guarded) between conflicting accounts, plus multi-key mints
/// whose 4-key footprint straddles every lane at small lane counts.
fn arb_program() -> impl Strategy<Value = Operation> {
    prop_oneof![
        (arb_account(), arb_account(), 1u64..200)
            .prop_map(|(f, t, a)| Operation::Txn(TxnProgram::transfer(f, t, a))),
        (arb_account(), arb_account(), 1u64..200)
            .prop_map(|(f, t, a)| Operation::Txn(TxnProgram::transfer_checked(f, t, a))),
        (1u64..RECORDS - 3, 1u64..16).prop_map(|(base, amt)| {
            Operation::Txn(TxnProgram::mint(0, &[base, base + 1, base + 2], amt))
        }),
    ]
}

fn arb_program_batches() -> impl Strategy<Value = Vec<Vec<Operation>>> {
    proptest::collection::vec(proptest::collection::vec(arb_program(), 1..8), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any batch sequence and lane count, sharded execution produces
    /// byte-identical per-txn effects and the same combined state digest
    /// as a single sequential store, and the merged store is
    /// indistinguishable (stats, applied count, live fingerprint).
    #[test]
    fn lanes_equal_sequential(batches in arb_batches(), lanes in 1usize..9) {
        let mut seq = KvStore::with_ycsb_records(RECORDS);
        let mut parts = KvStore::with_ycsb_records(RECORDS).split_lanes(lanes);

        for (i, batch) in batches.iter().enumerate() {
            let expect = seq.execute_batch(batch);
            let got = execute_batch_sharded(&mut parts, batch, true);
            prop_assert_eq!(&expect, &got, "batch {} diverged (lanes={})", i, lanes);
        }

        prop_assert_eq!(KvStore::combined_state_digest(&parts), seq.state_digest());
        let merged = KvStore::merge_lanes(parts);
        prop_assert_eq!(merged.state_digest(), seq.state_digest());
        prop_assert_eq!(merged.stats(), seq.stats());
        prop_assert_eq!(merged.applied_txns(), seq.applied_txns());
        prop_assert_eq!(merged.len(), seq.len());
        prop_assert!(merged.verify_fingerprint());
    }

    /// Register-machine transaction programs are lane-invariant: for
    /// random SmallBank-shaped batches full of hot-key conflicts, every
    /// lane count in {1, 2, 4} produces byte-identical per-transaction
    /// `TxnEffect`s (outcomes, aborts, write sets) and the same state
    /// digest as sequential execution on one store.
    #[test]
    fn txn_programs_lane_invariant(batches in arb_program_batches()) {
        let mut seq = KvStore::with_ycsb_records(RECORDS);
        let mut effects = Vec::new();
        for batch in &batches {
            effects.push(seq.execute_batch(batch));
        }

        for lanes in [1usize, 2, 4] {
            let mut parts = KvStore::with_ycsb_records(RECORDS).split_lanes(lanes);
            for (i, batch) in batches.iter().enumerate() {
                let got = execute_batch_sharded(&mut parts, batch, true);
                prop_assert_eq!(
                    &effects[i], &got,
                    "txn effects diverged at batch {} (lanes={})", i, lanes
                );
            }
            prop_assert_eq!(
                KvStore::combined_state_digest(&parts),
                seq.state_digest(),
                "state digest diverged (lanes={})", lanes
            );
            let merged = KvStore::merge_lanes(parts);
            prop_assert_eq!(merged.state_digest(), seq.state_digest());
            prop_assert_eq!(merged.stats(), seq.stats());
            prop_assert!(merged.verify_fingerprint());
        }
    }

    /// The unfingerprinted fast path converges to the same digest once
    /// lane fingerprints are rebuilt (dirty shards only).
    #[test]
    fn unfingerprinted_lanes_rebuild_to_sequential(
        batches in arb_batches(),
        lanes in 1usize..5,
    ) {
        let mut seq = KvStore::with_ycsb_records(RECORDS);
        let mut parts = KvStore::with_ycsb_records(RECORDS).split_lanes(lanes);
        for batch in &batches {
            let expect = seq.execute_batch(batch);
            let got = execute_batch_sharded(&mut parts, batch, false);
            prop_assert_eq!(expect, got);
        }
        for part in &mut parts {
            part.rebuild_fingerprint();
        }
        prop_assert_eq!(KvStore::combined_state_digest(&parts), seq.state_digest());
    }
}
