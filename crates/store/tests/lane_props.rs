//! Property test: key-sharded lane execution is indistinguishable from
//! sequential execution — for random YCSB-style batches and any lane
//! count, the per-transaction `TxnEffect`s, merged statistics, and table
//! digest are byte-identical to `KvStore::execute_batch` on one store.

use proptest::prelude::*;
use rdb_store::lanes::execute_batch_sharded;
use rdb_store::{KvStore, Operation, Value};

const RECORDS: u64 = 96;

fn arb_op() -> impl Strategy<Value = Operation> {
    prop_oneof![
        (0u64..128, any::<u64>()).prop_map(|(key, v)| Operation::Write {
            key,
            value: Value::from_u64(v)
        }),
        (0u64..128).prop_map(|key| Operation::Read { key }),
        (0u64..128, 0u64..1000).prop_map(|(key, delta)| Operation::Rmw { key, delta }),
        (96u64..160, any::<u64>()).prop_map(|(key, v)| Operation::Insert {
            key,
            value: Value::from_u64(v)
        }),
        (0u64..128, 0u32..32).prop_map(|(key, count)| Operation::Scan { key, count }),
        Just(Operation::NoOp),
    ]
}

fn arb_batches() -> impl Strategy<Value = Vec<Vec<Operation>>> {
    proptest::collection::vec(proptest::collection::vec(arb_op(), 0..12), 0..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any batch sequence and lane count, sharded execution produces
    /// byte-identical per-txn effects and the same combined state digest
    /// as a single sequential store, and the merged store is
    /// indistinguishable (stats, applied count, live fingerprint).
    #[test]
    fn lanes_equal_sequential(batches in arb_batches(), lanes in 1usize..9) {
        let mut seq = KvStore::with_ycsb_records(RECORDS);
        let mut parts = KvStore::with_ycsb_records(RECORDS).split_lanes(lanes);

        for (i, batch) in batches.iter().enumerate() {
            let expect = seq.execute_batch(batch);
            let got = execute_batch_sharded(&mut parts, batch, true);
            prop_assert_eq!(&expect, &got, "batch {} diverged (lanes={})", i, lanes);
        }

        prop_assert_eq!(KvStore::combined_state_digest(&parts), seq.state_digest());
        let merged = KvStore::merge_lanes(parts);
        prop_assert_eq!(merged.state_digest(), seq.state_digest());
        prop_assert_eq!(merged.stats(), seq.stats());
        prop_assert_eq!(merged.applied_txns(), seq.applied_txns());
        prop_assert_eq!(merged.len(), seq.len());
        prop_assert!(merged.verify_fingerprint());
    }

    /// The unfingerprinted fast path converges to the same digest once
    /// lane fingerprints are rebuilt (dirty shards only).
    #[test]
    fn unfingerprinted_lanes_rebuild_to_sequential(
        batches in arb_batches(),
        lanes in 1usize..5,
    ) {
        let mut seq = KvStore::with_ycsb_records(RECORDS);
        let mut parts = KvStore::with_ycsb_records(RECORDS).split_lanes(lanes);
        for batch in &batches {
            let expect = seq.execute_batch(batch);
            let got = execute_batch_sharded(&mut parts, batch, false);
            prop_assert_eq!(expect, got);
        }
        for part in &mut parts {
            part.rebuild_fingerprint();
        }
        prop_assert_eq!(KvStore::combined_state_digest(&parts), seq.state_digest());
    }
}
