//! # rdb-store
//!
//! The execution substrate of the ResilientDB/GeoBFT reproduction: an
//! in-memory, versioned key-value table in the style of the YCSB `usertable`
//! used by the paper's evaluation (§4: "Each client transaction queries a
//! YCSB table with an active set of 600 k records" and "we use write
//! queries, as those are typically more costly than read-only queries").
//!
//! Replicas execute ordered transactions against this store; determinism is
//! essential (§2.1: non-faulty replicas are deterministic — "on identical
//! inputs, all non-faulty replicas must produce identical outputs"). The
//! store exposes a state fingerprint ([`KvStore::state_digest`]) that the
//! test-suite uses to assert that every replica's state is identical after
//! executing the same transaction sequence, and that checkpointing uses to
//! identify stable states.

pub mod lanes;
pub mod ops;
pub mod table;
pub mod txn;

pub use lanes::{
    lane_mask, lane_of, partition_batch, plan_batch, LaneItem, PlanStep, ProgramStep, MAX_LANES,
};
pub use ops::{ExecOutcome, Operation, TxnEffect};
pub use table::{KvStore, StoreStats, Value, STORE_SHARDS};
pub use txn::{Cmp, TxnAbort, TxnInstr, TxnOutcome, TxnProgram};
