//! Transaction operations executed against the store.

use serde::{Deserialize, Serialize};

/// A single YCSB-style operation. The paper's evaluation uses write
/// queries; reads and read-modify-writes are provided for completeness and
/// used by the examples.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operation {
    /// Overwrite the record at `key` with `value` (YCSB "update").
    Write {
        /// Record key in `0..record_count`.
        key: u64,
        /// New field contents.
        value: Value,
    },
    /// Read the record at `key` (YCSB "read").
    Read {
        /// Record key.
        key: u64,
    },
    /// Read the record, add `delta` to its embedded counter, write back
    /// (YCSB "read-modify-write").
    Rmw {
        /// Record key.
        key: u64,
        /// Counter increment.
        delta: u64,
    },
    /// Insert a fresh record past the current active set (YCSB "insert").
    Insert {
        /// Record key.
        key: u64,
        /// Field contents.
        value: Value,
    },
    /// Scan `count` records starting at `key` (YCSB "scan").
    Scan {
        /// First key of the range.
        key: u64,
        /// Number of records to read.
        count: u32,
    },
    /// The no-op transaction GeoBFT primaries propose when they have no
    /// client requests for a round (§2.5).
    NoOp,
    /// Run a deterministic register-machine program atomically over its
    /// static key footprint (see [`crate::txn`]). The program may abort
    /// (e.g. an underflow on a SmallBank transfer); the batch still
    /// commits and the abort is surfaced in [`ExecOutcome::Txn`].
    Txn(crate::txn::TxnProgram),
}

pub use crate::table::Value;

/// The effect of executing one operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecOutcome {
    /// A write/insert/no-op completed.
    Done,
    /// A read returned this value (`None` if the key was absent).
    ReadValue(Option<Value>),
    /// An RMW returned the post-increment counter.
    Counter(u64),
    /// A scan touched this many existing records.
    Scanned(u32),
    /// A transaction program ran to completion: committed with its return
    /// value, or aborted leaving the store untouched. Either way the
    /// operation (and its batch) *committed* — the outcome is replicated
    /// state, provable to clients with `f + 1` matching replies.
    Txn(crate::txn::TxnOutcome),
}

/// The effect of executing a whole transaction batch: one outcome per
/// operation. Replicas include a digest of this in client replies so that
/// clients can match the `f + 1` identical responses required by §2.4.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TxnEffect {
    /// Per-operation outcomes, in execution order.
    pub outcomes: Vec<ExecOutcome>,
}

impl Operation {
    /// The record key this operation touches first (None for `NoOp`).
    /// For a program it is the first key of the static footprint.
    pub fn primary_key(&self) -> Option<u64> {
        match self {
            Operation::Write { key, .. }
            | Operation::Read { key }
            | Operation::Rmw { key, .. }
            | Operation::Insert { key, .. }
            | Operation::Scan { key, .. } => Some(*key),
            Operation::NoOp => None,
            Operation::Txn(prog) => prog.keys().first().copied(),
        }
    }

    /// Whether the operation mutates the store. Programs count as writes
    /// whenever their static footprint contains a `Write` (a program
    /// that aborts at runtime still *may* write, and lane routing must
    /// plan for it).
    pub fn is_write(&self) -> bool {
        match self {
            Operation::Write { .. } | Operation::Rmw { .. } | Operation::Insert { .. } => true,
            Operation::Txn(prog) => !prog.write_keys().is_empty(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_key_extraction() {
        assert_eq!(
            Operation::Write {
                key: 7,
                value: Value::from_u64(1)
            }
            .primary_key(),
            Some(7)
        );
        assert_eq!(Operation::NoOp.primary_key(), None);
        assert_eq!(Operation::Scan { key: 3, count: 10 }.primary_key(), Some(3));
    }

    #[test]
    fn write_classification() {
        assert!(Operation::Write {
            key: 0,
            value: Value::from_u64(0)
        }
        .is_write());
        assert!(Operation::Rmw { key: 0, delta: 1 }.is_write());
        assert!(!Operation::Read { key: 0 }.is_write());
        assert!(!Operation::NoOp.is_write());
    }
}
