//! Key-sharded execution lanes.
//!
//! The fabric's execute stage (see `resilientdb::pipeline`) can apply
//! committed batches on several *lanes* — threads that each own a
//! key-disjoint slice of the table ([`KvStore::split_lanes`]). This module
//! holds the pure partitioning logic: which lane a key belongs to, how a
//! batch's operations fan out across lanes, and how per-lane outcomes
//! reassemble into the exact [`TxnEffect`] sequential execution would have
//! produced.
//!
//! Correctness rests on two invariants:
//!
//! 1. **Per-key order.** `lane_of` is a pure function of the key, so every
//!    operation on a given key lands on the same lane; dispatching each
//!    lane's items in commit order therefore preserves the sequential
//!    per-key version history — which is all the XOR fingerprint observes.
//! 2. **Single counting.** An operation has exactly one *home* lane (its
//!    primary key's lane; lane 0 for `NoOp`). Only the home item bumps
//!    `StoreStats`/`applied_txns`, so summed lane stats equal sequential
//!    stats even for scans, which fan out to every lane whose keys the
//!    range crosses and report per-lane partial counts.

use crate::ops::{ExecOutcome, Operation, TxnEffect};
use crate::table::KvStore;

/// Upper bound on lane count: lane footprints travel as `u64` bitmasks.
pub const MAX_LANES: usize = 64;

/// The lane owning `key`: a plain modulus, so a contiguous key range (and
/// hence a uniform YCSB draw) spreads evenly across lanes.
#[inline]
pub fn lane_of(key: u64, lanes: usize) -> usize {
    debug_assert!(lanes >= 1);
    (key % lanes as u64) as usize
}

/// The home lane of an operation — the lane that owns its primary key and
/// is charged with counting it. `NoOp` (keyless) homes on lane 0.
#[inline]
pub fn home_lane(op: &Operation, lanes: usize) -> usize {
    op.primary_key().map_or(0, |k| lane_of(k, lanes))
}

/// One operation routed to a lane by [`partition_batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneItem {
    /// Index of the operation within the original batch.
    pub op_index: usize,
    /// The operation itself (scans keep their full range; a lane store
    /// only holds its own keys, so executing the range yields the lane's
    /// partial count).
    pub op: Operation,
    /// Whether this lane is the operation's home (counts stats, owns the
    /// outcome slot for non-scan operations).
    pub home: bool,
}

/// Bitmask of lanes a batch touches. Lane counts are capped at
/// [`MAX_LANES`] so the footprint always fits a `u64`; the scheduler uses
/// this for conflict accounting and the metrics layer for per-lane
/// occupancy.
pub fn lane_mask(ops: &[Operation], lanes: usize) -> u64 {
    debug_assert!((1..=MAX_LANES).contains(&lanes));
    let mut mask = 0u64;
    for op in ops {
        match op {
            Operation::Scan { key, count } => {
                mask |= 1 << lane_of(*key, lanes);
                let span = (*count as usize).min(lanes) as u64;
                for k in *key..key.saturating_add(span) {
                    mask |= 1 << lane_of(k, lanes);
                }
            }
            _ => mask |= 1 << home_lane(op, lanes),
        }
        if mask == ((1u128 << lanes) - 1) as u64 {
            break;
        }
    }
    mask
}

/// Fan a batch's operations out to `lanes` work lists, preserving batch
/// order within each lane. Single-key operations go to their home lane
/// only; scans go to every lane whose keys the range crosses (the first
/// `min(count, lanes)` keys of a contiguous range already visit each such
/// lane), with the home lane always included so empty scans still count.
pub fn partition_batch(ops: &[Operation], lanes: usize) -> Vec<Vec<LaneItem>> {
    let mut out: Vec<Vec<LaneItem>> = (0..lanes).map(|_| Vec::new()).collect();
    for (op_index, op) in ops.iter().enumerate() {
        match op {
            Operation::Scan { key, count } => {
                let home = lane_of(*key, lanes);
                let mut touched = vec![false; lanes];
                touched[home] = true;
                let span = (*count as usize).min(lanes) as u64;
                for k in *key..key.saturating_add(span) {
                    touched[lane_of(k, lanes)] = true;
                }
                for (lane, hit) in touched.into_iter().enumerate() {
                    if hit {
                        out[lane].push(LaneItem {
                            op_index,
                            op: op.clone(),
                            home: lane == home,
                        });
                    }
                }
            }
            _ => {
                let lane = home_lane(op, lanes);
                out[lane].push(LaneItem {
                    op_index,
                    op: op.clone(),
                    home: true,
                });
            }
        }
    }
    out
}

/// Reassemble per-lane outcomes into the batch's [`TxnEffect`], in
/// operation order. Scan partials sum; every other operation takes its
/// home lane's outcome. `lane_outcomes[l]` must parallel `lane_items[l]`.
pub fn assemble_effect(
    ops: &[Operation],
    lane_items: &[Vec<LaneItem>],
    lane_outcomes: &[Vec<ExecOutcome>],
) -> TxnEffect {
    let mut outcomes: Vec<ExecOutcome> = ops
        .iter()
        .map(|op| match op {
            Operation::Scan { .. } => ExecOutcome::Scanned(0),
            _ => ExecOutcome::Done,
        })
        .collect();
    for (items, outs) in lane_items.iter().zip(lane_outcomes) {
        debug_assert_eq!(items.len(), outs.len());
        for (item, out) in items.iter().zip(outs) {
            match out {
                ExecOutcome::Scanned(partial) => {
                    if let ExecOutcome::Scanned(total) = &mut outcomes[item.op_index] {
                        *total += partial;
                    }
                }
                other => {
                    if item.home {
                        outcomes[item.op_index] = other.clone();
                    }
                }
            }
        }
    }
    TxnEffect { outcomes }
}

/// Execute a batch across lane stores (in-place, single-threaded),
/// returning the effect sequential [`KvStore::execute_batch`] would have
/// produced on the merged table. The threaded lane pool in
/// `resilientdb::pipeline` is the concurrent version of exactly this loop.
pub fn execute_batch_sharded(
    lanes: &mut [KvStore],
    ops: &[Operation],
    fingerprint: bool,
) -> TxnEffect {
    let items = partition_batch(ops, lanes.len());
    let outcomes: Vec<Vec<ExecOutcome>> = items
        .iter()
        .zip(lanes.iter_mut())
        .map(|(list, store)| {
            list.iter()
                .map(|it| store.execute_partial(&it.op, it.home, fingerprint))
                .collect()
        })
        .collect();
    assemble_effect(ops, &items, &outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Value;

    #[test]
    fn lane_of_is_stable_modulus() {
        assert_eq!(lane_of(0, 4), 0);
        assert_eq!(lane_of(5, 4), 1);
        assert_eq!(lane_of(7, 1), 0);
    }

    #[test]
    fn partition_routes_single_key_ops_home() {
        let ops = vec![
            Operation::Write {
                key: 2,
                value: Value::from_u64(9),
            },
            Operation::Read { key: 3 },
            Operation::NoOp,
        ];
        let parts = partition_batch(&ops, 4);
        assert_eq!(parts[2].len(), 1, "write homes on lane 2");
        assert_eq!(parts[2][0].op_index, 0);
        assert_eq!(parts[3].len(), 1, "read homes on lane 3");
        assert_eq!(parts[0].len(), 1, "NoOp homes on lane 0");
        assert!(parts[1].is_empty());
        assert!(parts.iter().flatten().all(|it| it.home));
    }

    #[test]
    fn scan_fans_out_and_sums() {
        let mut whole = KvStore::with_ycsb_records(20);
        let mut parts = KvStore::with_ycsb_records(20).split_lanes(3);
        let ops = vec![Operation::Scan { key: 4, count: 9 }];
        let expect = whole.execute_batch(&ops);
        let got = execute_batch_sharded(&mut parts, &ops, true);
        assert_eq!(expect, got);
        let scans: u64 = parts.iter().map(|p| p.stats().scans).sum();
        assert_eq!(scans, 1, "only the home lane counts the scan");
        let applied: u64 = parts.iter().map(|p| p.applied_txns()).sum();
        assert_eq!(applied, whole.applied_txns());
    }

    #[test]
    fn empty_scan_still_counts_once() {
        let mut whole = KvStore::with_ycsb_records(8);
        let mut parts = KvStore::with_ycsb_records(8).split_lanes(4);
        let ops = vec![Operation::Scan { key: 100, count: 0 }];
        let expect = whole.execute_batch(&ops);
        let got = execute_batch_sharded(&mut parts, &ops, true);
        assert_eq!(expect, got);
        assert_eq!(parts.iter().map(|p| p.stats().scans).sum::<u64>(), 1);
    }

    #[test]
    fn sharded_batch_matches_sequential_all_lane_counts() {
        let ops = vec![
            Operation::Write {
                key: 1,
                value: Value::from_u64(5),
            },
            Operation::Rmw { key: 1, delta: 3 },
            Operation::Read { key: 1 },
            Operation::Scan { key: 0, count: 12 },
            Operation::Insert {
                key: 40,
                value: Value::from_u64(40),
            },
            Operation::Rmw { key: 40, delta: 1 },
            Operation::NoOp,
        ];
        let mut whole = KvStore::with_ycsb_records(16);
        let expect = whole.execute_batch(&ops);
        for lanes in [1usize, 2, 3, 4, 7, 16] {
            let mut parts = KvStore::with_ycsb_records(16).split_lanes(lanes);
            let got = execute_batch_sharded(&mut parts, &ops, true);
            assert_eq!(expect, got, "lanes={lanes}");
            assert_eq!(
                KvStore::combined_state_digest(&parts),
                whole.state_digest(),
                "lanes={lanes}"
            );
            let merged = KvStore::merge_lanes(parts);
            assert_eq!(merged.stats(), whole.stats(), "lanes={lanes}");
            assert_eq!(merged.applied_txns(), whole.applied_txns());
        }
    }

    #[test]
    fn lane_mask_covers_footprint() {
        let ops = vec![
            Operation::Write {
                key: 5,
                value: Value::from_u64(0),
            },
            Operation::NoOp,
        ];
        assert_eq!(lane_mask(&ops, 4), 0b0010 | 0b0001);
        let scan = vec![Operation::Scan { key: 0, count: 64 }];
        assert_eq!(lane_mask(&scan, 4), 0b1111);
        assert_eq!(lane_mask(&[], 4), 0);
        let one = vec![Operation::Read { key: 9 }];
        assert_eq!(lane_mask(&one, 1), 0b1);
    }
}
