//! Key-sharded execution lanes.
//!
//! The fabric's execute stage (see `resilientdb::pipeline`) can apply
//! committed batches on several *lanes* — threads that each own a
//! key-disjoint slice of the table ([`KvStore::split_lanes`]). This module
//! holds the pure partitioning logic: which lane a key belongs to, how a
//! batch's operations fan out across lanes, and how per-lane outcomes
//! reassemble into the exact [`TxnEffect`] sequential execution would have
//! produced.
//!
//! Correctness rests on two invariants:
//!
//! 1. **Per-key order.** `lane_of` is a pure function of the key, so every
//!    operation on a given key lands on the same lane; dispatching each
//!    lane's items in commit order therefore preserves the sequential
//!    per-key version history — which is all the XOR fingerprint observes.
//! 2. **Single counting.** An operation has exactly one *home* lane (its
//!    primary key's lane; lane 0 for `NoOp`). Only the home item bumps
//!    `StoreStats`/`applied_txns`, so summed lane stats equal sequential
//!    stats even for scans, which fan out to every lane whose keys the
//!    range crosses and report per-lane partial counts.

use crate::ops::{ExecOutcome, Operation, TxnEffect};
use crate::table::KvStore;
use crate::txn::TxnProgram;

/// Upper bound on lane count: lane footprints travel as `u64` bitmasks.
pub const MAX_LANES: usize = 64;

/// The lane owning `key`: a plain modulus, so a contiguous key range (and
/// hence a uniform YCSB draw) spreads evenly across lanes.
#[inline]
pub fn lane_of(key: u64, lanes: usize) -> usize {
    debug_assert!(lanes >= 1);
    (key % lanes as u64) as usize
}

/// The home lane of an operation — the lane that owns its primary key and
/// is charged with counting it. `NoOp` (keyless) homes on lane 0.
#[inline]
pub fn home_lane(op: &Operation, lanes: usize) -> usize {
    op.primary_key().map_or(0, |k| lane_of(k, lanes))
}

/// One operation routed to a lane by [`partition_batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneItem {
    /// Index of the operation within the original batch.
    pub op_index: usize,
    /// The operation itself (scans keep their full range; a lane store
    /// only holds its own keys, so executing the range yields the lane's
    /// partial count).
    pub op: Operation,
    /// Whether this lane is the operation's home (counts stats, owns the
    /// outcome slot for non-scan operations).
    pub home: bool,
}

/// Bitmask of lanes a batch touches. Lane counts are capped at
/// [`MAX_LANES`] so the footprint always fits a `u64`; the scheduler uses
/// this for conflict accounting and the metrics layer for per-lane
/// occupancy.
pub fn lane_mask(ops: &[Operation], lanes: usize) -> u64 {
    debug_assert!((1..=MAX_LANES).contains(&lanes));
    let mut mask = 0u64;
    for op in ops {
        match op {
            Operation::Scan { key, count } => {
                mask |= 1 << lane_of(*key, lanes);
                let span = (*count as usize).min(lanes) as u64;
                for k in *key..key.saturating_add(span) {
                    mask |= 1 << lane_of(k, lanes);
                }
            }
            Operation::Txn(prog) => {
                mask |= 1 << home_lane(op, lanes);
                for key in prog.keys() {
                    mask |= 1 << lane_of(key, lanes);
                }
            }
            _ => mask |= 1 << home_lane(op, lanes),
        }
        if mask == ((1u128 << lanes) - 1) as u64 {
            break;
        }
    }
    mask
}

/// The lanes a program's static footprint spans. `None` when the program
/// fits a single lane (or touches no keys): such programs execute
/// lane-locally like any other operation.
pub fn program_span(prog: &TxnProgram, lanes: usize) -> Option<u64> {
    let mut mask = 0u64;
    for key in prog.keys() {
        mask |= 1 << lane_of(key, lanes);
    }
    (mask.count_ones() > 1).then_some(mask)
}

/// Fan a batch's operations out to `lanes` work lists, preserving batch
/// order within each lane. Single-key operations go to their home lane
/// only; scans go to every lane whose keys the range crosses (the first
/// `min(count, lanes)` keys of a contiguous range already visit each such
/// lane), with the home lane always included so empty scans still count.
///
/// Transaction programs are routed to their home lane, which is only
/// correct when their footprint fits that lane — batches that may carry
/// cross-lane programs must go through [`plan_batch`] instead.
pub fn partition_batch(ops: &[Operation], lanes: usize) -> Vec<Vec<LaneItem>> {
    let mut out: Vec<Vec<LaneItem>> = (0..lanes).map(|_| Vec::new()).collect();
    route_ops(ops.iter().enumerate(), lanes, &mut out);
    out
}

/// Route `(op_index, op)` pairs into per-lane work lists (the body of
/// [`partition_batch`], reused by [`plan_batch`] for the segments between
/// cross-lane programs).
fn route_ops<'a>(
    ops: impl Iterator<Item = (usize, &'a Operation)>,
    lanes: usize,
    out: &mut [Vec<LaneItem>],
) {
    for (op_index, op) in ops {
        match op {
            Operation::Scan { key, count } => {
                let home = lane_of(*key, lanes);
                let mut touched = vec![false; lanes];
                touched[home] = true;
                let span = (*count as usize).min(lanes) as u64;
                for k in *key..key.saturating_add(span) {
                    touched[lane_of(k, lanes)] = true;
                }
                for (lane, hit) in touched.into_iter().enumerate() {
                    if hit {
                        out[lane].push(LaneItem {
                            op_index,
                            op: op.clone(),
                            home: lane == home,
                        });
                    }
                }
            }
            _ => {
                let lane = home_lane(op, lanes);
                out[lane].push(LaneItem {
                    op_index,
                    op: op.clone(),
                    home: true,
                });
            }
        }
    }
}

/// A program whose static footprint spans multiple lanes: the executor
/// must gather its reads from their owning lanes, evaluate once, and
/// scatter the writes back — after every earlier operation on those lanes
/// and before every later one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramStep {
    /// Index of the program's operation within the original batch.
    pub op_index: usize,
    /// The program.
    pub prog: TxnProgram,
    /// The home lane (owns stats and the `applied_txns` count).
    pub home: usize,
    /// Bitmask of lanes the footprint spans.
    pub span: u64,
}

/// One step of a batch execution plan (see [`plan_batch`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanStep {
    /// Lane-local items (indexed by lane), freely executable in parallel
    /// across lanes; per-lane order is batch order.
    Items(Vec<Vec<LaneItem>>),
    /// A cross-lane program — a synchronization point between the
    /// surrounding [`PlanStep::Items`] segments.
    Program(ProgramStep),
}

/// Compile a batch into an ordered execution plan. Operations between
/// cross-lane programs form [`PlanStep::Items`] segments with the exact
/// [`partition_batch`] routing; each cross-lane program becomes its own
/// [`PlanStep::Program`]. Programs whose footprint fits one lane stay
/// ordinary lane items. For a batch without cross-lane programs the plan
/// is a single `Items` step identical to [`partition_batch`].
pub fn plan_batch(ops: &[Operation], lanes: usize) -> Vec<PlanStep> {
    let mut plan = Vec::new();
    let mut segment: Vec<Vec<LaneItem>> = (0..lanes).map(|_| Vec::new()).collect();
    let mut segment_empty = true;
    for (op_index, op) in ops.iter().enumerate() {
        let cross = match op {
            Operation::Txn(prog) => program_span(prog, lanes),
            _ => None,
        };
        match cross {
            Some(span) => {
                if !segment_empty {
                    plan.push(PlanStep::Items(std::mem::replace(
                        &mut segment,
                        (0..lanes).map(|_| Vec::new()).collect(),
                    )));
                    segment_empty = true;
                }
                let Operation::Txn(prog) = op else {
                    unreachable!("cross is Some only for Txn")
                };
                plan.push(PlanStep::Program(ProgramStep {
                    op_index,
                    prog: prog.clone(),
                    home: home_lane(op, lanes),
                    span,
                }));
            }
            None => {
                route_ops(std::iter::once((op_index, op)), lanes, &mut segment);
                segment_empty = false;
            }
        }
    }
    if !segment_empty {
        plan.push(PlanStep::Items(segment));
    }
    plan
}

/// Reassemble per-lane outcomes into the batch's [`TxnEffect`], in
/// operation order. Scan partials sum; every other operation takes its
/// home lane's outcome. `lane_outcomes[l]` must parallel `lane_items[l]`.
pub fn assemble_effect(
    ops: &[Operation],
    lane_items: &[Vec<LaneItem>],
    lane_outcomes: &[Vec<ExecOutcome>],
) -> TxnEffect {
    let mut outcomes: Vec<ExecOutcome> = ops
        .iter()
        .map(|op| match op {
            Operation::Scan { .. } => ExecOutcome::Scanned(0),
            _ => ExecOutcome::Done,
        })
        .collect();
    fold_outcomes(&mut outcomes, lane_items, lane_outcomes);
    TxnEffect { outcomes }
}

/// Merge per-lane outcomes into `outcomes` slots (the body of
/// [`assemble_effect`], reused for plan segments).
pub fn fold_outcomes(
    outcomes: &mut [ExecOutcome],
    lane_items: &[Vec<LaneItem>],
    lane_outcomes: &[Vec<ExecOutcome>],
) {
    for (items, outs) in lane_items.iter().zip(lane_outcomes) {
        debug_assert_eq!(items.len(), outs.len());
        for (item, out) in items.iter().zip(outs) {
            match out {
                ExecOutcome::Scanned(partial) => {
                    if let ExecOutcome::Scanned(total) = &mut outcomes[item.op_index] {
                        *total += partial;
                    }
                }
                other => {
                    if item.home {
                        outcomes[item.op_index] = other.clone();
                    }
                }
            }
        }
    }
}

/// Placeholder outcomes for a batch, to be filled by
/// [`fold_outcomes`]/program steps: scans start at `Scanned(0)` so lane
/// partials can sum, everything else at `Done`.
pub fn seed_outcomes(ops: &[Operation]) -> Vec<ExecOutcome> {
    ops.iter()
        .map(|op| match op {
            Operation::Scan { .. } => ExecOutcome::Scanned(0),
            _ => ExecOutcome::Done,
        })
        .collect()
}

/// Execute a cross-lane program step against lane stores in place:
/// gather reads from the owning lanes, evaluate once, scatter the writes
/// back. The home lane counts the program (and its abort); write
/// application bumps no per-class stats, mirroring sequential execution.
pub fn execute_program_sharded(
    lanes: &mut [KvStore],
    step: &ProgramStep,
    fingerprint: bool,
) -> ExecOutcome {
    let n = lanes.len();
    let (outcome, writes) = step.prog.eval_values(|k| lanes[lane_of(k, n)].get(k));
    for (key, value) in writes {
        lanes[lane_of(key, n)].apply_program_write(key, value, fingerprint);
    }
    lanes[step.home].note_program(outcome.is_aborted());
    ExecOutcome::Txn(outcome)
}

/// Execute a batch across lane stores (in-place, single-threaded),
/// returning the effect sequential [`KvStore::execute_batch`] would have
/// produced on the merged table. The threaded lane pool in
/// `resilientdb::pipeline` is the concurrent version of exactly this loop.
pub fn execute_batch_sharded(
    lanes: &mut [KvStore],
    ops: &[Operation],
    fingerprint: bool,
) -> TxnEffect {
    let mut outcomes = seed_outcomes(ops);
    for step in plan_batch(ops, lanes.len()) {
        match step {
            PlanStep::Items(items) => {
                let outs: Vec<Vec<ExecOutcome>> = items
                    .iter()
                    .zip(lanes.iter_mut())
                    .map(|(list, store)| {
                        list.iter()
                            .map(|it| store.execute_partial(&it.op, it.home, fingerprint))
                            .collect()
                    })
                    .collect();
                fold_outcomes(&mut outcomes, &items, &outs);
            }
            PlanStep::Program(step) => {
                outcomes[step.op_index] = execute_program_sharded(lanes, &step, fingerprint);
            }
        }
    }
    TxnEffect { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Value;

    #[test]
    fn lane_of_is_stable_modulus() {
        assert_eq!(lane_of(0, 4), 0);
        assert_eq!(lane_of(5, 4), 1);
        assert_eq!(lane_of(7, 1), 0);
    }

    #[test]
    fn partition_routes_single_key_ops_home() {
        let ops = vec![
            Operation::Write {
                key: 2,
                value: Value::from_u64(9),
            },
            Operation::Read { key: 3 },
            Operation::NoOp,
        ];
        let parts = partition_batch(&ops, 4);
        assert_eq!(parts[2].len(), 1, "write homes on lane 2");
        assert_eq!(parts[2][0].op_index, 0);
        assert_eq!(parts[3].len(), 1, "read homes on lane 3");
        assert_eq!(parts[0].len(), 1, "NoOp homes on lane 0");
        assert!(parts[1].is_empty());
        assert!(parts.iter().flatten().all(|it| it.home));
    }

    #[test]
    fn scan_fans_out_and_sums() {
        let mut whole = KvStore::with_ycsb_records(20);
        let mut parts = KvStore::with_ycsb_records(20).split_lanes(3);
        let ops = vec![Operation::Scan { key: 4, count: 9 }];
        let expect = whole.execute_batch(&ops);
        let got = execute_batch_sharded(&mut parts, &ops, true);
        assert_eq!(expect, got);
        let scans: u64 = parts.iter().map(|p| p.stats().scans).sum();
        assert_eq!(scans, 1, "only the home lane counts the scan");
        let applied: u64 = parts.iter().map(|p| p.applied_txns()).sum();
        assert_eq!(applied, whole.applied_txns());
    }

    #[test]
    fn empty_scan_still_counts_once() {
        let mut whole = KvStore::with_ycsb_records(8);
        let mut parts = KvStore::with_ycsb_records(8).split_lanes(4);
        let ops = vec![Operation::Scan { key: 100, count: 0 }];
        let expect = whole.execute_batch(&ops);
        let got = execute_batch_sharded(&mut parts, &ops, true);
        assert_eq!(expect, got);
        assert_eq!(parts.iter().map(|p| p.stats().scans).sum::<u64>(), 1);
    }

    #[test]
    fn sharded_batch_matches_sequential_all_lane_counts() {
        let ops = vec![
            Operation::Write {
                key: 1,
                value: Value::from_u64(5),
            },
            Operation::Rmw { key: 1, delta: 3 },
            Operation::Read { key: 1 },
            Operation::Scan { key: 0, count: 12 },
            Operation::Insert {
                key: 40,
                value: Value::from_u64(40),
            },
            Operation::Rmw { key: 40, delta: 1 },
            Operation::NoOp,
        ];
        let mut whole = KvStore::with_ycsb_records(16);
        let expect = whole.execute_batch(&ops);
        for lanes in [1usize, 2, 3, 4, 7, 16] {
            let mut parts = KvStore::with_ycsb_records(16).split_lanes(lanes);
            let got = execute_batch_sharded(&mut parts, &ops, true);
            assert_eq!(expect, got, "lanes={lanes}");
            assert_eq!(
                KvStore::combined_state_digest(&parts),
                whole.state_digest(),
                "lanes={lanes}"
            );
            let merged = KvStore::merge_lanes(parts);
            assert_eq!(merged.stats(), whole.stats(), "lanes={lanes}");
            assert_eq!(merged.applied_txns(), whole.applied_txns());
        }
    }

    #[test]
    fn cross_lane_programs_match_sequential() {
        use crate::txn::TxnProgram;
        // A batch mixing plain ops with single-lane and cross-lane
        // programs, including a program that reads what an earlier
        // program wrote on a different lane.
        let ops = vec![
            Operation::Write {
                key: 1,
                value: Value::from_u64(100),
            },
            Operation::Txn(TxnProgram::transfer(1, 2, 30)), // cross-lane at 2+
            Operation::Read { key: 2 },
            Operation::Txn(TxnProgram::transfer(2, 5, 25)),
            Operation::Txn(TxnProgram::transfer(4, 4, 1_000_000)), // aborts
            Operation::Rmw { key: 2, delta: 7 },
        ];
        let mut whole = KvStore::with_ycsb_records(16);
        let expect = whole.execute_batch(&ops);
        for lanes in [1usize, 2, 3, 4, 8] {
            let mut parts = KvStore::with_ycsb_records(16).split_lanes(lanes);
            let got = execute_batch_sharded(&mut parts, &ops, true);
            assert_eq!(expect, got, "lanes={lanes}");
            assert_eq!(
                KvStore::combined_state_digest(&parts),
                whole.state_digest(),
                "lanes={lanes}"
            );
            let merged = KvStore::merge_lanes(parts);
            assert_eq!(merged.stats(), whole.stats(), "lanes={lanes}");
            assert_eq!(merged.applied_txns(), whole.applied_txns());
        }
    }

    #[test]
    fn plan_batch_degenerates_to_partition_for_plain_batches() {
        let ops = vec![
            Operation::Write {
                key: 2,
                value: Value::from_u64(9),
            },
            Operation::Scan { key: 0, count: 6 },
            Operation::NoOp,
        ];
        let plan = plan_batch(&ops, 4);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0], PlanStep::Items(partition_batch(&ops, 4)));
        // Single-lane programs stay ordinary items too.
        let ops = vec![Operation::Txn(crate::txn::TxnProgram::transfer(0, 4, 1))];
        let plan = plan_batch(&ops, 4);
        assert_eq!(plan.len(), 1, "keys 0 and 4 share lane 0 at 4 lanes");
        // ...but span lanes at 3 lanes, forcing a program step.
        let plan = plan_batch(&ops, 3);
        assert!(matches!(&plan[0], PlanStep::Program(p) if p.span == 0b011));
    }

    #[test]
    fn lane_mask_covers_footprint() {
        let ops = vec![
            Operation::Write {
                key: 5,
                value: Value::from_u64(0),
            },
            Operation::NoOp,
        ];
        assert_eq!(lane_mask(&ops, 4), 0b0010 | 0b0001);
        let scan = vec![Operation::Scan { key: 0, count: 64 }];
        assert_eq!(lane_mask(&scan, 4), 0b1111);
        assert_eq!(lane_mask(&[], 4), 0);
        let one = vec![Operation::Read { key: 9 }];
        assert_eq!(lane_mask(&one, 1), 0b1);
    }
}
