//! Deterministic register-machine transaction programs.
//!
//! The paper evaluates ResilientDB under YCSB only; this module supplies
//! the minimal smart-contract-style execution layer the "Beyond YCSB"
//! roadmap item calls for. A [`TxnProgram`] is *data*: it serializes over
//! the wire inside a client batch like any other operation and executes
//! identically on every replica and in the simulator, which is exactly
//! the determinism requirement of §2.1 ("on identical inputs, all
//! non-faulty replicas must produce identical outputs").
//!
//! The machine is deliberately tiny:
//!
//! * [`REGISTERS`] 64-bit registers, zero-initialised;
//! * straight-line instructions with **forward-only** branches
//!   ([`TxnInstr::BranchIf`] skips ahead), so every program terminates in
//!   at most `instrs.len()` steps — no gas metering needed;
//! * reads and writes name record keys *statically* in the instruction
//!   stream, so a program's key footprint ([`TxnProgram::keys`]) is known
//!   before execution. The execution lanes use this to route cross-lane
//!   programs (see `rdb_store::lanes`).
//!
//! Arithmetic aborts — [`TxnAbort::Underflow`] on `Sub` below zero,
//! [`TxnAbort::Overflow`] on `Add` past `u64::MAX` — model the SmallBank
//! "insufficient funds" rule: an aborted program leaves the store
//! untouched, but the *batch still commits*; the abort is surfaced in the
//! [`crate::ExecOutcome`] so a client can hold a committed-but-aborted
//! transfer with an `f + 1` proof.
//!
//! Reads observe the program's own earlier writes (read-your-writes
//! within a program); committed writes are applied to the store in
//! ascending key order, once per key, after the program halts without
//! aborting.

use crate::table::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Number of 64-bit registers in the transaction machine.
pub const REGISTERS: usize = 8;

/// Upper bound on instructions per program (bounds wire size and
/// execution cost; programs are rejected as [`TxnAbort::Invalid`] past
/// it).
pub const MAX_INSTRS: usize = 64;

/// Comparison predicate for [`TxnInstr::BranchIf`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cmp {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b`
    Lt,
    /// `a <= b`
    Le,
    /// `a > b`
    Gt,
    /// `a >= b`
    Ge,
}

impl Cmp {
    fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
        }
    }
}

/// One instruction of the transaction machine.
///
/// Register operands are indices into the [`REGISTERS`]-wide register
/// file; out-of-range indices abort the program with
/// [`TxnAbort::Invalid`] (a malformed program must fail identically on
/// every replica, never panic).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxnInstr {
    /// `r[dst] = counter(store[key])` — absent keys read as 0.
    Read {
        /// Destination register.
        dst: u8,
        /// Record key to read.
        key: u64,
    },
    /// Stage `store[key].counter = r[src]` into the write set.
    Write {
        /// Record key to write.
        key: u64,
        /// Source register.
        src: u8,
    },
    /// `r[dst] = imm`.
    Set {
        /// Destination register.
        dst: u8,
        /// Immediate value.
        imm: u64,
    },
    /// `r[dst] = r[dst] + r[src]`, aborting on overflow.
    Add {
        /// Destination (and left operand) register.
        dst: u8,
        /// Right operand register.
        src: u8,
    },
    /// `r[dst] = r[dst] - r[src]`, aborting on underflow — the SmallBank
    /// "insufficient funds" check.
    Sub {
        /// Destination (and left operand) register.
        dst: u8,
        /// Right operand register.
        src: u8,
    },
    /// If `cmp(r[a], r[b])`, skip the next `skip` instructions
    /// (forward-only, so execution always terminates).
    BranchIf {
        /// Left comparison operand register.
        a: u8,
        /// Comparison predicate.
        cmp: Cmp,
        /// Right comparison operand register.
        b: u8,
        /// Instructions to skip when the predicate holds.
        skip: u8,
    },
    /// Abort explicitly with an application-defined code.
    Abort {
        /// Application-defined abort code.
        code: u32,
    },
    /// Halt successfully; `r[0]` is the program's return value. Falling
    /// off the end of the instruction stream halts the same way.
    Halt,
}

/// Why a program aborted. Aborts are deterministic program outcomes, not
/// errors: the enclosing batch still commits and the abort is visible in
/// the replicated [`crate::ExecOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxnAbort {
    /// A `Sub` would have gone below zero (insufficient funds).
    Underflow {
        /// Program counter of the faulting instruction.
        pc: u32,
    },
    /// An `Add` would have exceeded `u64::MAX`.
    Overflow {
        /// Program counter of the faulting instruction.
        pc: u32,
    },
    /// The program executed [`TxnInstr::Abort`].
    Explicit {
        /// Application-defined abort code.
        code: u32,
        /// Program counter of the abort instruction.
        pc: u32,
    },
    /// The program was malformed: a register index out of range, a branch
    /// target past the end, or more than [`MAX_INSTRS`] instructions.
    Invalid {
        /// Program counter of the faulting instruction (0 for a
        /// too-long program).
        pc: u32,
    },
}

/// The outcome of running one program: committed with a return value, or
/// aborted (store untouched).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxnOutcome {
    /// The program halted; its writes were applied. Carries `r[0]`.
    Committed {
        /// The value of register 0 at halt.
        ret: u64,
    },
    /// The program aborted; no writes were applied.
    Aborted(TxnAbort),
}

impl TxnOutcome {
    /// True when the program aborted.
    pub fn is_aborted(&self) -> bool {
        matches!(self, TxnOutcome::Aborted(_))
    }

    /// The canonical byte encoding fed into result digests (see
    /// `rdb-consensus`): a tag byte plus little-endian payload. Two
    /// replicas reporting different outcomes for the same program
    /// therefore produce different reply digests, so clients can prove
    /// an abort with `f + 1` matching replies like any other result.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(14);
        match self {
            TxnOutcome::Committed { ret } => {
                out.push(0);
                out.extend_from_slice(&ret.to_le_bytes());
            }
            TxnOutcome::Aborted(abort) => {
                out.push(1);
                match abort {
                    TxnAbort::Underflow { pc } => {
                        out.push(0);
                        out.extend_from_slice(&pc.to_le_bytes());
                    }
                    TxnAbort::Overflow { pc } => {
                        out.push(1);
                        out.extend_from_slice(&pc.to_le_bytes());
                    }
                    TxnAbort::Explicit { code, pc } => {
                        out.push(2);
                        out.extend_from_slice(&code.to_le_bytes());
                        out.extend_from_slice(&pc.to_le_bytes());
                    }
                    TxnAbort::Invalid { pc } => {
                        out.push(3);
                        out.extend_from_slice(&pc.to_le_bytes());
                    }
                }
            }
        }
        out
    }
}

/// A deterministic transaction program: the unit that rides inside
/// [`crate::Operation::Txn`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TxnProgram {
    /// The instruction stream.
    pub instrs: Vec<TxnInstr>,
}

impl TxnProgram {
    /// Build a program from instructions.
    pub fn new(instrs: Vec<TxnInstr>) -> TxnProgram {
        TxnProgram { instrs }
    }

    /// The static key footprint: every key any instruction could read or
    /// write, regardless of branch outcomes, in ascending order. The
    /// conservative footprint is what makes lane routing sound: a lane
    /// plan derived from `keys()` covers every execution path.
    pub fn keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .instrs
            .iter()
            .filter_map(|i| match i {
                TxnInstr::Read { key, .. } | TxnInstr::Write { key, .. } => Some(*key),
                _ => None,
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// The static write footprint (keys any `Write` names), ascending.
    pub fn write_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .instrs
            .iter()
            .filter_map(|i| match i {
                TxnInstr::Write { key, .. } => Some(*key),
                _ => None,
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Number of instructions (the unit the simulator charges execution
    /// cost in, over and above the per-transaction baseline).
    pub fn cost(&self) -> usize {
        self.instrs.len()
    }

    /// Execute against `read` (current committed counter per key; absent
    /// keys read as 0). Returns the outcome plus the final write set as
    /// `(key, counter)` pairs in ascending key order — empty when
    /// aborted. Pure: the caller applies the writes, which is what lets
    /// the sequential store, the in-place sharded executor and the
    /// threaded lane pool share one interpreter.
    pub fn eval(&self, mut read: impl FnMut(u64) -> u64) -> (TxnOutcome, Vec<(u64, u64)>) {
        if self.instrs.len() > MAX_INSTRS {
            return (TxnOutcome::Aborted(TxnAbort::Invalid { pc: 0 }), Vec::new());
        }
        let mut regs = [0u64; REGISTERS];
        // Program-local write overlay: reads observe earlier writes.
        let mut writes: BTreeMap<u64, u64> = BTreeMap::new();
        let mut pc = 0usize;
        let invalid = |pc: usize| {
            (
                TxnOutcome::Aborted(TxnAbort::Invalid { pc: pc as u32 }),
                Vec::new(),
            )
        };
        while pc < self.instrs.len() {
            match &self.instrs[pc] {
                TxnInstr::Read { dst, key } => {
                    let Some(slot) = regs.get_mut(*dst as usize) else {
                        return invalid(pc);
                    };
                    *slot = match writes.get(key) {
                        Some(v) => *v,
                        None => read(*key),
                    };
                }
                TxnInstr::Write { key, src } => {
                    let Some(v) = regs.get(*src as usize) else {
                        return invalid(pc);
                    };
                    writes.insert(*key, *v);
                }
                TxnInstr::Set { dst, imm } => {
                    let Some(slot) = regs.get_mut(*dst as usize) else {
                        return invalid(pc);
                    };
                    *slot = *imm;
                }
                TxnInstr::Add { dst, src } => {
                    let (Some(&b), Some(&a)) = (regs.get(*src as usize), regs.get(*dst as usize))
                    else {
                        return invalid(pc);
                    };
                    match a.checked_add(b) {
                        Some(v) => regs[*dst as usize] = v,
                        None => {
                            return (
                                TxnOutcome::Aborted(TxnAbort::Overflow { pc: pc as u32 }),
                                Vec::new(),
                            )
                        }
                    }
                }
                TxnInstr::Sub { dst, src } => {
                    let (Some(&b), Some(&a)) = (regs.get(*src as usize), regs.get(*dst as usize))
                    else {
                        return invalid(pc);
                    };
                    match a.checked_sub(b) {
                        Some(v) => regs[*dst as usize] = v,
                        None => {
                            return (
                                TxnOutcome::Aborted(TxnAbort::Underflow { pc: pc as u32 }),
                                Vec::new(),
                            )
                        }
                    }
                }
                TxnInstr::BranchIf { a, cmp, b, skip } => {
                    let (Some(&av), Some(&bv)) = (regs.get(*a as usize), regs.get(*b as usize))
                    else {
                        return invalid(pc);
                    };
                    if cmp.eval(av, bv) {
                        let target = pc + 1 + *skip as usize;
                        if target > self.instrs.len() {
                            return invalid(pc);
                        }
                        pc = target;
                        continue;
                    }
                }
                TxnInstr::Abort { code } => {
                    return (
                        TxnOutcome::Aborted(TxnAbort::Explicit {
                            code: *code,
                            pc: pc as u32,
                        }),
                        Vec::new(),
                    );
                }
                TxnInstr::Halt => break,
            }
            pc += 1;
        }
        (
            TxnOutcome::Committed { ret: regs[0] },
            writes.into_iter().collect(),
        )
    }

    /// Convenience interpreter over [`Value`]s: reads go through the
    /// value's embedded counter, and the returned write set carries full
    /// values produced with [`Value::with_counter`] over the key's
    /// current value (preserving non-counter bytes, like `Rmw` does).
    pub fn eval_values(
        &self,
        mut read: impl FnMut(u64) -> Option<Value>,
    ) -> (TxnOutcome, Vec<(u64, Value)>) {
        let mut cache: BTreeMap<u64, Option<Value>> = BTreeMap::new();
        let (outcome, writes) = self.eval(|key| {
            cache
                .entry(key)
                .or_insert_with(|| read(key))
                .map(|v| v.counter())
                .unwrap_or(0)
        });
        let writes = writes
            .into_iter()
            .map(|(key, counter)| {
                let current = cache
                    .entry(key)
                    .or_insert_with(|| read(key))
                    .unwrap_or(Value::from_u64(0));
                (key, current.with_counter(counter))
            })
            .collect();
        (outcome, writes)
    }

    /// The canonical byte encoding fed into batch digests (see
    /// `rdb-consensus`): instruction count, then one tag byte plus
    /// little-endian operands per instruction. Any change to a program
    /// changes these bytes, so equivocating on program contents changes
    /// the batch digest like any other payload tampering.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.instrs.len() * 10);
        out.extend_from_slice(&(self.instrs.len() as u64).to_le_bytes());
        for i in &self.instrs {
            match i {
                TxnInstr::Read { dst, key } => {
                    out.push(0);
                    out.push(*dst);
                    out.extend_from_slice(&key.to_le_bytes());
                }
                TxnInstr::Write { key, src } => {
                    out.push(1);
                    out.push(*src);
                    out.extend_from_slice(&key.to_le_bytes());
                }
                TxnInstr::Set { dst, imm } => {
                    out.push(2);
                    out.push(*dst);
                    out.extend_from_slice(&imm.to_le_bytes());
                }
                TxnInstr::Add { dst, src } => {
                    out.push(3);
                    out.push(*dst);
                    out.push(*src);
                }
                TxnInstr::Sub { dst, src } => {
                    out.push(4);
                    out.push(*dst);
                    out.push(*src);
                }
                TxnInstr::BranchIf { a, cmp, b, skip } => {
                    out.push(5);
                    out.push(*a);
                    out.push(match cmp {
                        Cmp::Eq => 0,
                        Cmp::Ne => 1,
                        Cmp::Lt => 2,
                        Cmp::Le => 3,
                        Cmp::Gt => 4,
                        Cmp::Ge => 5,
                    });
                    out.push(*b);
                    out.push(*skip);
                }
                TxnInstr::Abort { code } => {
                    out.push(6);
                    out.extend_from_slice(&code.to_le_bytes());
                }
                TxnInstr::Halt => out.push(7),
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Canned programs (used by the scenario layer, examples and tests)
    // ------------------------------------------------------------------

    /// SmallBank-style transfer: move `amount` from `from` to `to`,
    /// aborting with [`TxnAbort::Underflow`] when `from` holds less than
    /// `amount`. Returns the sender's post-transfer balance in `r[0]`.
    pub fn transfer(from: u64, to: u64, amount: u64) -> TxnProgram {
        TxnProgram::new(vec![
            TxnInstr::Read { dst: 0, key: from },
            TxnInstr::Set {
                dst: 1,
                imm: amount,
            },
            // Underflow-aborts when balance < amount: the SmallBank
            // insufficient-funds rule.
            TxnInstr::Sub { dst: 0, src: 1 },
            TxnInstr::Write { key: from, src: 0 },
            TxnInstr::Read { dst: 2, key: to },
            TxnInstr::Add { dst: 2, src: 1 },
            TxnInstr::Write { key: to, src: 2 },
            TxnInstr::Halt,
        ])
    }

    /// Guarded SmallBank transfer: branch on the balance check instead of
    /// relying on the `Sub` abort — moves nothing and returns `0` when
    /// funds are short, demonstrating `BranchIf`.
    pub fn transfer_checked(from: u64, to: u64, amount: u64) -> TxnProgram {
        TxnProgram::new(vec![
            TxnInstr::Read { dst: 0, key: from },
            TxnInstr::Set {
                dst: 1,
                imm: amount,
            },
            // If balance < amount, skip the 5 transfer instructions and
            // fall through to Halt with r[0] = 0.
            TxnInstr::BranchIf {
                a: 0,
                cmp: Cmp::Lt,
                b: 1,
                skip: 6,
            },
            TxnInstr::Sub { dst: 0, src: 1 },
            TxnInstr::Write { key: from, src: 0 },
            TxnInstr::Read { dst: 2, key: to },
            TxnInstr::Add { dst: 2, src: 1 },
            TxnInstr::Write { key: to, src: 2 },
            TxnInstr::Halt,
            TxnInstr::Set { dst: 0, imm: 0 },
            TxnInstr::Halt,
        ])
    }

    /// Multi-key token mint: atomically add `amount` to every account and
    /// the same total to a supply record — a cross-lane
    /// read-modify-write over an arbitrary key set.
    pub fn mint(supply: u64, accounts: &[u64], amount: u64) -> TxnProgram {
        let mut instrs = vec![TxnInstr::Set {
            dst: 1,
            imm: amount,
        }];
        for &acct in accounts {
            instrs.push(TxnInstr::Read { dst: 2, key: acct });
            instrs.push(TxnInstr::Add { dst: 2, src: 1 });
            instrs.push(TxnInstr::Write { key: acct, src: 2 });
            instrs.push(TxnInstr::Read {
                dst: 0,
                key: supply,
            });
            instrs.push(TxnInstr::Add { dst: 0, src: 1 });
            instrs.push(TxnInstr::Write {
                key: supply,
                src: 0,
            });
        }
        instrs.push(TxnInstr::Halt);
        TxnProgram::new(instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(prog: &TxnProgram, state: &[(u64, u64)]) -> (TxnOutcome, Vec<(u64, u64)>) {
        prog.eval(|k| {
            state
                .iter()
                .find(|(key, _)| *key == k)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        })
    }

    #[test]
    fn transfer_moves_funds() {
        let p = TxnProgram::transfer(1, 2, 30);
        let (out, writes) = run(&p, &[(1, 100), (2, 5)]);
        assert_eq!(out, TxnOutcome::Committed { ret: 70 });
        assert_eq!(writes, vec![(1, 70), (2, 35)]);
    }

    #[test]
    fn transfer_underflow_aborts_without_writes() {
        let p = TxnProgram::transfer(1, 2, 30);
        let (out, writes) = run(&p, &[(1, 10)]);
        assert_eq!(out, TxnOutcome::Aborted(TxnAbort::Underflow { pc: 2 }));
        assert!(writes.is_empty());
    }

    #[test]
    fn checked_transfer_branches_instead_of_aborting() {
        let p = TxnProgram::transfer_checked(1, 2, 30);
        let (out, writes) = run(&p, &[(1, 10)]);
        assert_eq!(out, TxnOutcome::Committed { ret: 0 });
        assert!(writes.is_empty());
        let (out, writes) = run(&p, &[(1, 50)]);
        assert_eq!(out, TxnOutcome::Committed { ret: 20 });
        assert_eq!(writes, vec![(1, 20), (2, 30)]);
    }

    #[test]
    fn reads_observe_own_writes() {
        let p = TxnProgram::new(vec![
            TxnInstr::Set { dst: 0, imm: 7 },
            TxnInstr::Write { key: 9, src: 0 },
            TxnInstr::Read { dst: 3, key: 9 },
            TxnInstr::Set { dst: 0, imm: 0 },
            TxnInstr::Add { dst: 0, src: 3 },
        ]);
        let (out, writes) = run(&p, &[(9, 1)]);
        assert_eq!(out, TxnOutcome::Committed { ret: 7 });
        assert_eq!(writes, vec![(9, 7)]);
    }

    #[test]
    fn mint_touches_all_accounts_once() {
        let p = TxnProgram::mint(100, &[1, 2, 3], 10);
        let (out, writes) = run(&p, &[(100, 5)]);
        assert_eq!(out, TxnOutcome::Committed { ret: 35 });
        assert_eq!(writes, vec![(1, 10), (2, 10), (3, 10), (100, 35)]);
        assert_eq!(p.keys(), vec![1, 2, 3, 100]);
        assert_eq!(p.write_keys(), vec![1, 2, 3, 100]);
    }

    #[test]
    fn explicit_abort_and_codes() {
        let p = TxnProgram::new(vec![TxnInstr::Abort { code: 42 }]);
        let (out, _) = run(&p, &[]);
        assert_eq!(
            out,
            TxnOutcome::Aborted(TxnAbort::Explicit { code: 42, pc: 0 })
        );
    }

    #[test]
    fn overflow_aborts() {
        let p = TxnProgram::new(vec![
            TxnInstr::Set {
                dst: 0,
                imm: u64::MAX,
            },
            TxnInstr::Set { dst: 1, imm: 1 },
            TxnInstr::Add { dst: 0, src: 1 },
        ]);
        let (out, _) = run(&p, &[]);
        assert_eq!(out, TxnOutcome::Aborted(TxnAbort::Overflow { pc: 2 }));
    }

    #[test]
    fn malformed_programs_abort_deterministically() {
        // Register out of range.
        let p = TxnProgram::new(vec![TxnInstr::Set { dst: 8, imm: 1 }]);
        assert_eq!(
            run(&p, &[]).0,
            TxnOutcome::Aborted(TxnAbort::Invalid { pc: 0 })
        );
        // Branch past the end.
        let p = TxnProgram::new(vec![TxnInstr::BranchIf {
            a: 0,
            cmp: Cmp::Eq,
            b: 0,
            skip: 5,
        }]);
        assert_eq!(
            run(&p, &[]).0,
            TxnOutcome::Aborted(TxnAbort::Invalid { pc: 0 })
        );
        // Too long.
        let p = TxnProgram::new(vec![TxnInstr::Halt; MAX_INSTRS + 1]);
        assert_eq!(
            run(&p, &[]).0,
            TxnOutcome::Aborted(TxnAbort::Invalid { pc: 0 })
        );
    }

    #[test]
    fn branch_to_exact_end_halts() {
        let p = TxnProgram::new(vec![
            TxnInstr::Set { dst: 0, imm: 3 },
            TxnInstr::BranchIf {
                a: 0,
                cmp: Cmp::Gt,
                b: 1,
                skip: 1,
            },
            TxnInstr::Set { dst: 0, imm: 99 },
        ]);
        let (out, _) = run(&p, &[]);
        assert_eq!(out, TxnOutcome::Committed { ret: 3 });
    }

    #[test]
    fn eval_values_preserves_non_counter_bytes() {
        let mut base = Value::from_u64(10);
        base.0[8] = 0xAB;
        let p = TxnProgram::transfer(1, 2, 4);
        let (out, writes) = p.eval_values(|k| if k == 1 { Some(base) } else { None });
        assert_eq!(out, TxnOutcome::Committed { ret: 6 });
        let w1 = writes.iter().find(|(k, _)| *k == 1).unwrap().1;
        assert_eq!(w1.counter(), 6);
        assert_eq!(w1.0[8], 0xAB, "non-counter bytes preserved");
        let w2 = writes.iter().find(|(k, _)| *k == 2).unwrap().1;
        assert_eq!(w2.counter(), 4);
    }
}
