//! The versioned key-value table.

use crate::ops::{ExecOutcome, Operation, TxnEffect};
use rdb_crypto::digest::Digest;
use rdb_crypto::sha256::Sha256;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A fixed-size record value. YCSB records carry ten 100-byte fields; the
/// paper batches 100 transactions into 5.4 kB pre-prepares, implying ~52 B
/// of payload per transaction on the wire, so we model a compact 24-byte
/// field update as the stored value (see `rdb_common::wire::TXN_BYTES`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Value(pub [u8; 24]);

impl Value {
    /// Deterministically derive a value from a u64 (used by the workload
    /// generator and tests).
    pub fn from_u64(x: u64) -> Value {
        let mut out = [0u8; 24];
        out[..8].copy_from_slice(&x.to_le_bytes());
        out[8..16].copy_from_slice(&x.wrapping_mul(0x9e3779b97f4a7c15).to_le_bytes());
        out[16..24].copy_from_slice(&x.rotate_left(17).to_le_bytes());
        Value(out)
    }

    /// Interpret the first 8 bytes as a little-endian counter.
    pub fn counter(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().expect("8 bytes"))
    }

    /// Replace the embedded counter.
    pub fn with_counter(mut self, c: u64) -> Value {
        self.0[..8].copy_from_slice(&c.to_le_bytes());
        self
    }
}

/// Execution statistics maintained by the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StoreStats {
    /// Operations applied, by class.
    pub writes: u64,
    /// Read operations served.
    pub reads: u64,
    /// Read-modify-writes served.
    pub rmws: u64,
    /// Inserts applied.
    pub inserts: u64,
    /// Scans served.
    pub scans: u64,
    /// No-ops executed.
    pub noops: u64,
    /// Transaction programs executed (committed or aborted).
    pub programs: u64,
    /// Transaction programs that aborted (subset of `programs`).
    pub aborts: u64,
}

impl StoreStats {
    /// Total operations executed (a program counts once, aborted or not).
    pub fn total(&self) -> u64 {
        self.writes
            + self.reads
            + self.rmws
            + self.inserts
            + self.scans
            + self.noops
            + self.programs
    }

    /// Add another statistics block into this one (used when merging
    /// per-lane stores back into a single table).
    pub fn accumulate(&mut self, other: &StoreStats) {
        self.writes += other.writes;
        self.reads += other.reads;
        self.rmws += other.rmws;
        self.inserts += other.inserts;
        self.scans += other.scans;
        self.noops += other.noops;
        self.programs += other.programs;
        self.aborts += other.aborts;
    }
}

/// Number of internal fingerprint shards per [`KvStore`]. Power of two so
/// shard selection is a mask. Each shard keeps its own XOR accumulator and
/// a dirty bit, so [`KvStore::rebuild_fingerprint`] after a run of
/// unfingerprinted execution only rescans the shards that were touched
/// instead of the whole table.
pub const STORE_SHARDS: usize = 16;
const SHARD_MASK: u64 = STORE_SHARDS as u64 - 1;

#[inline]
fn shard_of(key: u64) -> usize {
    (key & SHARD_MASK) as usize
}

#[inline]
fn xor_into(acc: &mut [u8; 32], d: &[u8; 32]) {
    for (a, b) in acc.iter_mut().zip(d.iter()) {
        *a ^= b;
    }
}

/// One fingerprint shard: a slice of the record map plus the XOR fold of
/// its records' digests. The table-wide accumulator is the XOR of every
/// shard's `accum` (XOR is associative and commutative, so the partition
/// is digest-preserving).
#[derive(Debug, Clone, Default)]
struct Shard {
    records: HashMap<u64, (Value, u64)>,
    accum: [u8; 32],
    /// Set when an unfingerprinted write lands here; cleared by rebuild.
    dirty: bool,
}

impl Shard {
    fn compute_accum(&self) -> [u8; 32] {
        let mut acc = [0u8; 32];
        for (key, (value, version)) in &self.records {
            let d = KvStore::record_digest(*key, value, *version);
            xor_into(&mut acc, &d);
        }
        acc
    }
}

/// The in-memory YCSB table: a map from `u64` record keys to [`Value`]s
/// plus a monotone version counter per record.
///
/// The store maintains an *incremental* state fingerprint: a running XOR of
/// per-record digests, decomposed over [`STORE_SHARDS`] internal shards.
/// XOR-accumulation makes `state_digest` O(1) while still changing whenever
/// any record differs — two stores have equal digests iff they hold the
/// same records at the same versions (up to hash collisions, which SHA-256
/// makes negligible). The shard decomposition additionally makes
/// [`KvStore::rebuild_fingerprint`] proportional to the *touched* shards
/// rather than the whole table, and lets a store be split into key-disjoint
/// lane stores (see [`crate::lanes`]) whose digests recombine exactly.
#[derive(Debug, Clone)]
pub struct KvStore {
    shards: Vec<Shard>,
    /// Cached total record count across shards.
    len: usize,
    stats: StoreStats,
    /// Number of transactions applied (batch items), used for checkpoints.
    applied_txns: u64,
    /// When present, every record write is appended here as
    /// `(key, value, new_version)` — the durable-storage hook: the executor
    /// drains this buffer into one WAL batch per committed decision.
    captured: Option<Vec<(u64, Value, u64)>>,
}

impl KvStore {
    /// Create an empty store.
    pub fn new() -> KvStore {
        KvStore {
            shards: (0..STORE_SHARDS).map(|_| Shard::default()).collect(),
            len: 0,
            stats: StoreStats::default(),
            applied_txns: 0,
            captured: None,
        }
    }

    /// Create a store preloaded with `record_count` records, mirroring the
    /// paper's initialization ("each replica is initialized with an
    /// identical copy of the YCSB table" with 600 k active records).
    pub fn with_ycsb_records(record_count: u64) -> KvStore {
        let mut store = KvStore::new();
        let per_shard = (record_count as usize / STORE_SHARDS) + 1;
        for shard in &mut store.shards {
            shard.records.reserve(per_shard);
        }
        for key in 0..record_count {
            store.insert_raw(key, Value::from_u64(key));
        }
        store
    }

    pub(crate) fn record_digest(key: u64, value: &Value, version: u64) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&key.to_le_bytes());
        h.update(&value.0);
        h.update(&version.to_le_bytes());
        h.finalize()
    }

    fn insert_raw(&mut self, key: u64, value: Value) {
        self.insert_inner(key, value, true);
    }

    /// Install a record at an explicit version, maintaining the shard
    /// fingerprint. The key must not already be present — used when
    /// splitting or reassembling lane stores, where each record moves
    /// exactly once.
    pub(crate) fn seed_record(&mut self, key: u64, value: Value, version: u64) {
        let shard = &mut self.shards[shard_of(key)];
        let d = Self::record_digest(key, &value, version);
        xor_into(&mut shard.accum, &d);
        let prev = shard.records.insert(key, (value, version));
        debug_assert!(prev.is_none(), "seed_record over existing key");
        self.len += 1;
    }

    fn insert_inner(&mut self, key: u64, value: Value, fingerprint: bool) {
        let shard = &mut self.shards[shard_of(key)];
        let new_ver;
        if let Some((old_v, old_ver)) = shard.records.get(&key).copied() {
            new_ver = old_ver + 1;
            if fingerprint {
                let old_d = Self::record_digest(key, &old_v, old_ver);
                xor_into(&mut shard.accum, &old_d);
                let new_d = Self::record_digest(key, &value, new_ver);
                xor_into(&mut shard.accum, &new_d);
            } else {
                shard.dirty = true;
            }
            shard.records.insert(key, (value, new_ver));
        } else {
            new_ver = 1;
            if fingerprint {
                let new_d = Self::record_digest(key, &value, 1);
                xor_into(&mut shard.accum, &new_d);
            } else {
                shard.dirty = true;
            }
            shard.records.insert(key, (value, 1));
            self.len += 1;
        }
        if let Some(buf) = &mut self.captured {
            buf.push((key, value, new_ver));
        }
    }

    /// Start recording every record write (key, value, new version) for
    /// durable logging; see [`KvStore::take_captured`]. Idempotent.
    pub fn enable_capture(&mut self) {
        if self.captured.is_none() {
            self.captured = Some(Vec::new());
        }
    }

    /// Whether write capture is active.
    pub fn capturing(&self) -> bool {
        self.captured.is_some()
    }

    /// Drain the writes captured since the last call (capture stays
    /// enabled). Overwrites of the same key appear once per write, in
    /// application order, so replaying the *last* entry per key restores
    /// the record exactly — value and version.
    pub fn take_captured(&mut self) -> Vec<(u64, Value, u64)> {
        self.captured
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Install a record recovered from durable storage at its persisted
    /// version, maintaining the fingerprint. The key must not already be
    /// present: recovery always starts from an empty table.
    pub fn restore_record(&mut self, key: u64, value: Value, version: u64) {
        self.seed_record(key, value, version);
    }

    /// Every record as `(key, value, version)`, in unspecified order (the
    /// durable bulk-dump path; the storage engine sorts by key itself).
    pub fn records(&self) -> impl Iterator<Item = (u64, Value, u64)> + '_ {
        self.shards
            .iter()
            .flat_map(|s| s.records.iter().map(|(k, (v, ver))| (*k, *v, *ver)))
    }

    /// Number of records currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the table holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read a record.
    pub fn get(&self, key: u64) -> Option<Value> {
        self.shards[shard_of(key)]
            .records
            .get(&key)
            .map(|(v, _)| *v)
    }

    /// Version of a record (1 on first write; None if absent).
    pub fn version(&self, key: u64) -> Option<u64> {
        self.shards[shard_of(key)]
            .records
            .get(&key)
            .map(|(_, ver)| *ver)
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Total transactions applied via [`KvStore::execute`].
    pub fn applied_txns(&self) -> u64 {
        self.applied_txns
    }

    /// O(1) fingerprint of the full store state. Identical sequences of
    /// [`KvStore::execute`] calls from identical initial states yield
    /// identical digests.
    pub fn state_digest(&self) -> Digest {
        // Mix in the record count so an empty store and a store whose
        // accumulated digests cancelled out (impossible in practice) differ.
        let mut h = Sha256::new();
        h.update(&self.fold_accum());
        h.update(&(self.len as u64).to_le_bytes());
        Digest(h.finalize())
    }

    /// XOR of all shard accumulators — the table-wide accumulator.
    fn fold_accum(&self) -> [u8; 32] {
        let mut acc = [0u8; 32];
        for shard in &self.shards {
            xor_into(&mut acc, &shard.accum);
        }
        acc
    }

    /// Execute one operation, returning its outcome.
    pub fn execute(&mut self, op: &Operation) -> ExecOutcome {
        self.execute_inner(op, true, true)
    }

    /// Execute one operation *without* maintaining the incremental state
    /// fingerprint — two SHA-256 invocations saved per write. For bulk or
    /// off-critical-path appliers (the fabric's execution stage, whose
    /// authoritative digest already arrived inside the `Decision`); the
    /// fingerprint is stale afterwards until
    /// [`KvStore::rebuild_fingerprint`] runs.
    pub fn execute_unfingerprinted(&mut self, op: &Operation) -> ExecOutcome {
        self.execute_inner(op, false, true)
    }

    /// Execute one operation as a lane-local partial (see [`crate::lanes`]).
    /// When `home` is false the per-class stats and `applied_txns` counter
    /// are *not* bumped: the operation's home lane owns the counts, so
    /// merged lane statistics stay identical to sequential execution even
    /// for operations (scans) that fan out across several lanes.
    pub fn execute_partial(
        &mut self,
        op: &Operation,
        home: bool,
        fingerprint: bool,
    ) -> ExecOutcome {
        self.execute_inner(op, fingerprint, home)
    }

    /// Audit the incremental fingerprint against a from-scratch rebuild:
    /// `true` iff [`KvStore::state_digest`] currently reflects the full
    /// table. O(records); used to validate checkpoint snapshots before
    /// they become recovery anchors (a snapshot taken after
    /// [`KvStore::execute_unfingerprinted`] without a rebuild would
    /// certify a stale digest).
    pub fn verify_fingerprint(&self) -> bool {
        self.shards.iter().all(|s| s.compute_accum() == s.accum)
    }

    /// Recompute the state fingerprint, restoring
    /// [`KvStore::state_digest`] correctness after a run of
    /// [`KvStore::execute_unfingerprinted`]. Only shards marked dirty by a
    /// deferred write are rescanned, so the cost is proportional to the
    /// touched fraction of the table, not its full size (compare
    /// [`KvStore::rebuild_fingerprint_full`]).
    pub fn rebuild_fingerprint(&mut self) {
        for shard in &mut self.shards {
            if shard.dirty {
                shard.accum = shard.compute_accum();
                shard.dirty = false;
            }
        }
    }

    /// Recompute every shard's fingerprint unconditionally — the
    /// pre-sharding O(records) behaviour, kept as the baseline for the
    /// `store-exec` bench and as a belt-and-braces repair path.
    pub fn rebuild_fingerprint_full(&mut self) {
        for shard in &mut self.shards {
            shard.accum = shard.compute_accum();
            shard.dirty = false;
        }
    }

    /// Number of shards whose fingerprint is currently stale.
    pub fn dirty_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.dirty).count()
    }

    /// Split this store into `lanes` key-disjoint stores: record `k` lands
    /// in lane `k % lanes` (see [`crate::lanes::lane_of`]). Lane 0 inherits
    /// the stats and applied-transaction counters so that summing over the
    /// returned stores reproduces this store's totals. The combined digest
    /// of the parts (via [`KvStore::combined_state_digest`]) equals this
    /// store's [`KvStore::state_digest`].
    pub fn split_lanes(self, lanes: usize) -> Vec<KvStore> {
        assert!(lanes >= 1, "at least one lane");
        let mut out: Vec<KvStore> = (0..lanes).map(|_| KvStore::new()).collect();
        out[0].stats = self.stats;
        out[0].applied_txns = self.applied_txns;
        for shard in self.shards {
            for (key, (value, version)) in shard.records {
                out[crate::lanes::lane_of(key, lanes)].seed_record(key, value, version);
            }
        }
        out
    }

    /// Reassemble key-disjoint lane stores (from [`KvStore::split_lanes`])
    /// into one table, summing stats and applied-transaction counts.
    /// Shard accumulators XOR together directly, so no record is rehashed.
    pub fn merge_lanes(parts: Vec<KvStore>) -> KvStore {
        let mut out = KvStore::new();
        for part in parts {
            out.stats.accumulate(&part.stats);
            out.applied_txns += part.applied_txns;
            out.len += part.len;
            for (dst, src) in out.shards.iter_mut().zip(part.shards) {
                xor_into(&mut dst.accum, &src.accum);
                dst.dirty |= src.dirty;
                if dst.records.is_empty() {
                    dst.records = src.records;
                } else {
                    dst.records.extend(src.records);
                }
            }
        }
        out
    }

    /// The digest the union of key-disjoint lane stores would report as a
    /// single table: XOR of every shard accumulator across all parts,
    /// mixed with the summed record count — byte-identical to
    /// [`KvStore::state_digest`] on the merged store, without merging.
    pub fn combined_state_digest(parts: &[KvStore]) -> Digest {
        Self::digest_from_parts(parts.iter().map(|p| p.fingerprint_part()))
    }

    /// This store's contribution to a combined digest: its folded XOR
    /// accumulator and record count. Lane threads ship this (32 + 8
    /// bytes) to the scheduler at checkpoint barriers instead of a table
    /// clone; recombine with [`KvStore::digest_from_parts`].
    pub fn fingerprint_part(&self) -> ([u8; 32], u64) {
        (self.fold_accum(), self.len as u64)
    }

    /// Fold [`KvStore::fingerprint_part`] contributions from key-disjoint
    /// stores into the digest their union would report.
    pub fn digest_from_parts(parts: impl IntoIterator<Item = ([u8; 32], u64)>) -> Digest {
        let mut acc = [0u8; 32];
        let mut len = 0u64;
        for (part_acc, part_len) in parts {
            xor_into(&mut acc, &part_acc);
            len += part_len;
        }
        let mut h = Sha256::new();
        h.update(&acc);
        h.update(&len.to_le_bytes());
        Digest(h.finalize())
    }

    /// Apply one staged program write (see [`crate::txn`]): a raw record
    /// overwrite that bumps the key's version but no per-class stats —
    /// exactly what sequential [`Operation::Txn`] execution does per
    /// written key. Used by the lane executors to scatter a cross-lane
    /// program's write set onto the owning lanes.
    pub fn apply_program_write(&mut self, key: u64, value: Value, fingerprint: bool) {
        self.insert_inner(key, value, fingerprint);
    }

    /// Count one executed program on this store (the program's *home*
    /// lane), keeping merged lane statistics identical to sequential
    /// execution: `applied_txns` and `stats.programs` bump once, plus
    /// `stats.aborts` when the program aborted.
    pub fn note_program(&mut self, aborted: bool) {
        self.applied_txns += 1;
        self.stats.programs += 1;
        if aborted {
            self.stats.aborts += 1;
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.shards[shard_of(key)].records.contains_key(&key)
    }

    fn execute_inner(&mut self, op: &Operation, fingerprint: bool, count: bool) -> ExecOutcome {
        if count {
            self.applied_txns += 1;
        }
        match op {
            Operation::Write { key, value } => {
                self.insert_inner(*key, *value, fingerprint);
                if count {
                    self.stats.writes += 1;
                }
                ExecOutcome::Done
            }
            Operation::Read { key } => {
                if count {
                    self.stats.reads += 1;
                }
                ExecOutcome::ReadValue(self.get(*key))
            }
            Operation::Rmw { key, delta } => {
                if count {
                    self.stats.rmws += 1;
                }
                let current = self.get(*key).unwrap_or_default();
                let next = current.counter().wrapping_add(*delta);
                self.insert_inner(*key, current.with_counter(next), fingerprint);
                ExecOutcome::Counter(next)
            }
            Operation::Insert { key, value } => {
                self.insert_inner(*key, *value, fingerprint);
                if count {
                    self.stats.inserts += 1;
                }
                ExecOutcome::Done
            }
            Operation::Scan { key, count: n } => {
                if count {
                    self.stats.scans += 1;
                }
                let mut touched = 0u32;
                for k in *key..key.saturating_add(*n as u64) {
                    if self.contains(k) {
                        touched += 1;
                    }
                }
                ExecOutcome::Scanned(touched)
            }
            Operation::NoOp => {
                if count {
                    self.stats.noops += 1;
                }
                ExecOutcome::Done
            }
            Operation::Txn(prog) => {
                if count {
                    self.stats.programs += 1;
                }
                let (outcome, writes) = prog.eval_values(|k| self.get(k));
                // Aborted programs leave the store untouched; `writes` is
                // empty for them by construction.
                for (key, value) in writes {
                    self.insert_inner(key, value, fingerprint);
                }
                if count && outcome.is_aborted() {
                    self.stats.aborts += 1;
                }
                ExecOutcome::Txn(outcome)
            }
        }
    }

    /// Execute a batch of operations, producing the combined effect.
    pub fn execute_batch(&mut self, ops: &[Operation]) -> TxnEffect {
        TxnEffect {
            outcomes: ops.iter().map(|op| self.execute(op)).collect(),
        }
    }
}

impl Default for KvStore {
    fn default() -> Self {
        KvStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unfingerprinted_execution_matches_after_rebuild() {
        let mut a = KvStore::with_ycsb_records(100);
        let mut b = KvStore::with_ycsb_records(100);
        let ops = [
            Operation::Write {
                key: 3,
                value: Value::from_u64(99),
            },
            Operation::Rmw { key: 4, delta: 7 },
            Operation::Insert {
                key: 200,
                value: Value::from_u64(1),
            },
            Operation::Write {
                key: 3,
                value: Value::from_u64(42),
            },
        ];
        for op in &ops {
            assert_eq!(a.execute(op), b.execute_unfingerprinted(op));
        }
        // Fingerprint is stale until rebuilt, then identical.
        assert_ne!(a.state_digest(), b.state_digest());
        b.rebuild_fingerprint();
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(a.get(3), b.get(3));
        assert_eq!(a.version(3), b.version(3));
        assert_eq!(a.applied_txns(), b.applied_txns());
    }

    #[test]
    fn fingerprint_audit_detects_staleness() {
        let mut s = KvStore::with_ycsb_records(50);
        assert!(s.verify_fingerprint(), "fresh preload is live");
        s.execute(&Operation::Write {
            key: 1,
            value: Value::from_u64(7),
        });
        assert!(s.verify_fingerprint(), "fingerprinted writes stay live");
        s.execute_unfingerprinted(&Operation::Write {
            key: 2,
            value: Value::from_u64(8),
        });
        assert!(!s.verify_fingerprint(), "deferred write left it stale");
        s.rebuild_fingerprint();
        assert!(s.verify_fingerprint());
    }

    #[test]
    fn dirty_rebuild_only_rescans_touched_shards() {
        let mut s = KvStore::with_ycsb_records(64);
        assert_eq!(s.dirty_shards(), 0);
        // Touch two keys in the same shard and one in another.
        s.execute_unfingerprinted(&Operation::Write {
            key: 0,
            value: Value::from_u64(1),
        });
        s.execute_unfingerprinted(&Operation::Write {
            key: STORE_SHARDS as u64,
            value: Value::from_u64(2),
        });
        s.execute_unfingerprinted(&Operation::Write {
            key: 1,
            value: Value::from_u64(3),
        });
        assert_eq!(s.dirty_shards(), 2);
        // Amortized rebuild restores exactly the digest a full rebuild
        // (and a fully fingerprinted twin) would produce.
        let mut full = s.clone();
        full.rebuild_fingerprint_full();
        s.rebuild_fingerprint();
        assert_eq!(s.dirty_shards(), 0);
        assert_eq!(s.state_digest(), full.state_digest());
        assert!(s.verify_fingerprint());
    }

    #[test]
    fn split_and_merge_lanes_roundtrip() {
        let mut s = KvStore::with_ycsb_records(100);
        s.execute(&Operation::Rmw { key: 13, delta: 4 });
        s.execute(&Operation::Read { key: 7 });
        let digest = s.state_digest();
        let stats = s.stats();
        let applied = s.applied_txns();

        let parts = s.split_lanes(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(KvStore::combined_state_digest(&parts), digest);
        // Records land on their home lanes only.
        assert_eq!(parts[1].get(13), Some(Value::from_u64(13).with_counter(17)));
        assert_eq!(parts[0].get(13), None);
        assert_eq!(
            parts.iter().map(|p| p.len()).sum::<usize>(),
            100,
            "lanes partition the table"
        );

        let merged = KvStore::merge_lanes(parts);
        assert_eq!(merged.state_digest(), digest);
        assert_eq!(merged.len(), 100);
        assert_eq!(merged.stats(), stats);
        assert_eq!(merged.applied_txns(), applied);
        assert_eq!(merged.version(13), Some(2));
        assert!(merged.verify_fingerprint());
    }

    #[test]
    fn execute_partial_skips_counts_for_non_home() {
        let mut s = KvStore::with_ycsb_records(10);
        let out = s.execute_partial(&Operation::Scan { key: 0, count: 10 }, false, true);
        assert_eq!(out, ExecOutcome::Scanned(10));
        assert_eq!(s.stats().scans, 0, "non-home partial leaves stats alone");
        assert_eq!(s.applied_txns(), 0);
        let out = s.execute_partial(&Operation::Scan { key: 0, count: 10 }, true, true);
        assert_eq!(out, ExecOutcome::Scanned(10));
        assert_eq!(s.stats().scans, 1);
        assert_eq!(s.applied_txns(), 1);
    }

    #[test]
    fn ycsb_initialization_preloads_records() {
        let s = KvStore::with_ycsb_records(1000);
        assert_eq!(s.len(), 1000);
        assert_eq!(s.get(0), Some(Value::from_u64(0)));
        assert_eq!(s.get(999), Some(Value::from_u64(999)));
        assert_eq!(s.get(1000), None);
        assert_eq!(s.version(5), Some(1));
    }

    #[test]
    fn write_bumps_version_and_value() {
        let mut s = KvStore::with_ycsb_records(10);
        s.execute(&Operation::Write {
            key: 3,
            value: Value::from_u64(77),
        });
        assert_eq!(s.get(3), Some(Value::from_u64(77)));
        assert_eq!(s.version(3), Some(2));
        assert_eq!(s.stats().writes, 1);
    }

    #[test]
    fn rmw_increments_counter() {
        let mut s = KvStore::new();
        let out = s.execute(&Operation::Rmw { key: 9, delta: 5 });
        assert_eq!(out, ExecOutcome::Counter(5));
        let out = s.execute(&Operation::Rmw { key: 9, delta: 2 });
        assert_eq!(out, ExecOutcome::Counter(7));
        assert_eq!(s.get(9).unwrap().counter(), 7);
    }

    #[test]
    fn scan_counts_existing_records() {
        let mut s = KvStore::with_ycsb_records(10);
        let out = s.execute(&Operation::Scan { key: 5, count: 10 });
        assert_eq!(out, ExecOutcome::Scanned(5));
    }

    #[test]
    fn read_returns_value_or_none() {
        let mut s = KvStore::with_ycsb_records(2);
        assert_eq!(
            s.execute(&Operation::Read { key: 1 }),
            ExecOutcome::ReadValue(Some(Value::from_u64(1)))
        );
        assert_eq!(
            s.execute(&Operation::Read { key: 5 }),
            ExecOutcome::ReadValue(None)
        );
        assert_eq!(s.stats().reads, 2);
    }

    #[test]
    fn state_digest_tracks_content_not_history_path() {
        // Same final content reached through different write orders on
        // *different keys* must agree (same per-key versions).
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        a.execute(&Operation::Write {
            key: 1,
            value: Value::from_u64(10),
        });
        a.execute(&Operation::Write {
            key: 2,
            value: Value::from_u64(20),
        });
        b.execute(&Operation::Write {
            key: 2,
            value: Value::from_u64(20),
        });
        b.execute(&Operation::Write {
            key: 1,
            value: Value::from_u64(10),
        });
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn state_digest_detects_divergence() {
        let mut a = KvStore::with_ycsb_records(100);
        let mut b = a.clone();
        assert_eq!(a.state_digest(), b.state_digest());
        a.execute(&Operation::Write {
            key: 1,
            value: Value::from_u64(999),
        });
        assert_ne!(a.state_digest(), b.state_digest());
        // Overwriting with the same value still differs: version moved.
        b.execute(&Operation::Write {
            key: 1,
            value: Value::from_u64(1),
        });
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn noop_only_counts() {
        let mut s = KvStore::new();
        let d = s.state_digest();
        assert_eq!(s.execute(&Operation::NoOp), ExecOutcome::Done);
        assert_eq!(s.state_digest(), d);
        assert_eq!(s.stats().noops, 1);
        assert_eq!(s.applied_txns(), 1);
    }

    #[test]
    fn batch_execution_matches_sequential() {
        let ops = vec![
            Operation::Write {
                key: 1,
                value: Value::from_u64(5),
            },
            Operation::Rmw { key: 1, delta: 3 },
            Operation::Read { key: 1 },
        ];
        let mut batched = KvStore::new();
        let effect = batched.execute_batch(&ops);
        let mut seq = KvStore::new();
        let outcomes: Vec<_> = ops.iter().map(|op| seq.execute(op)).collect();
        assert_eq!(effect.outcomes, outcomes);
        assert_eq!(batched.state_digest(), seq.state_digest());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_op() -> impl Strategy<Value = Operation> {
            prop_oneof![
                (0u64..64, any::<u64>()).prop_map(|(key, v)| Operation::Write {
                    key,
                    value: Value::from_u64(v)
                }),
                (0u64..64).prop_map(|key| Operation::Read { key }),
                (0u64..64, 0u64..100).prop_map(|(key, delta)| Operation::Rmw { key, delta }),
                Just(Operation::NoOp),
            ]
        }

        proptest! {
            /// Determinism: replaying the same operations on two fresh
            /// stores yields identical outcomes and state digests.
            #[test]
            fn replay_determinism(ops in proptest::collection::vec(arb_op(), 0..200)) {
                let mut a = KvStore::with_ycsb_records(64);
                let mut b = KvStore::with_ycsb_records(64);
                let ra: Vec<_> = ops.iter().map(|o| a.execute(o)).collect();
                let rb: Vec<_> = ops.iter().map(|o| b.execute(o)).collect();
                prop_assert_eq!(ra, rb);
                prop_assert_eq!(a.state_digest(), b.state_digest());
            }

            /// The digest changes on every write to a preloaded store.
            #[test]
            fn digest_moves_on_writes(key in 0u64..64, v in any::<u64>()) {
                let mut s = KvStore::with_ycsb_records(64);
                let before = s.state_digest();
                s.execute(&Operation::Write { key, value: Value::from_u64(v) });
                prop_assert_ne!(s.state_digest(), before);
            }

            /// Amortized dirty-shard rebuild always lands on the digest a
            /// fully fingerprinted execution would have produced.
            #[test]
            fn dirty_rebuild_matches_live_fingerprint(ops in proptest::collection::vec(arb_op(), 0..100)) {
                let mut live = KvStore::with_ycsb_records(64);
                let mut deferred = KvStore::with_ycsb_records(64);
                for op in &ops {
                    live.execute(op);
                    deferred.execute_unfingerprinted(op);
                }
                deferred.rebuild_fingerprint();
                prop_assert_eq!(live.state_digest(), deferred.state_digest());
                prop_assert!(deferred.verify_fingerprint());
            }
        }
    }
}
