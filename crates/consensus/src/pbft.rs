//! Plain PBFT across all `z·n` replicas — the classic baseline of every
//! figure in the paper (§1.1, §4).
//!
//! One global primary (placed in Oregon in the paper's geo experiments)
//! coordinates the three-phase protocol over the whole replica set. The
//! engine itself lives in [`crate::pbft_core`]; this module adds the
//! client-facing plumbing: request intake and forwarding, execution in
//! sequence order, reply caching, and checkpoint recording.

use crate::api::{Outbox, ReplicaProtocol, TimerKind};
use crate::certificate::CommitSig;
use crate::config::ProtocolConfig;
use crate::crypto_ctx::CryptoCtx;
use crate::exec::execute_batch_with_results;
use crate::messages::{Message, Scope};
use crate::pbft_core::{CoreEvent, PbftCore};
use crate::types::{Decision, DecisionEntry, ReplyData, SignedBatch};
use rdb_common::ids::{ClientId, NodeId, ReplicaId};
use rdb_common::time::SimTime;
use rdb_store::KvStore;
use std::collections::{BTreeMap, HashMap};

/// A PBFT replica.
pub struct PbftReplica {
    cfg: ProtocolConfig,
    id: ReplicaId,
    core: PbftCore,
    store: KvStore,
    /// Committed but not yet executed instances (execution is in sequence
    /// order).
    committed: BTreeMap<u64, (SignedBatch, Vec<CommitSig>)>,
    /// Next sequence number to execute.
    exec_next: u64,
    /// Latest reply per client, re-sent on retransmitted requests.
    reply_cache: HashMap<ClientId, ReplyData>,
    executed_decisions: u64,
}

impl PbftReplica {
    /// Build a replica. `store` should be pre-loaded identically on every
    /// replica (§4).
    pub fn new(cfg: ProtocolConfig, id: ReplicaId, crypto: CryptoCtx, store: KvStore) -> Self {
        let core = PbftCore::new(Scope::Global, cfg.clone(), id, crypto);
        PbftReplica {
            cfg,
            id,
            core,
            store,
            committed: BTreeMap::new(),
            exec_next: 1,
            reply_cache: HashMap::new(),
            executed_decisions: 0,
        }
    }

    /// The embedded engine (tests).
    pub fn core(&self) -> &PbftCore {
        &self.core
    }

    /// Number of decisions executed so far.
    pub fn executed_decisions(&self) -> u64 {
        self.executed_decisions
    }

    /// Digest of the replica's current store state.
    pub fn state_digest(&self) -> rdb_crypto::digest::Digest {
        self.store.state_digest()
    }

    fn handle_request(&mut self, sb: SignedBatch, out: &mut Outbox) {
        // Serve retransmissions from the reply cache.
        if let Some(cached) = self.reply_cache.get(&sb.batch.client) {
            if cached.batch_seq == sb.batch.batch_seq {
                out.send(
                    sb.batch.client,
                    Message::Reply {
                        data: cached.clone(),
                        view: self.core.view(),
                    },
                );
                return;
            }
        }
        if self.core.is_primary() {
            self.core.enqueue_request(sb, out);
        } else {
            // Forward to the current primary and watch for progress; a
            // primary that ignores the request gets view-changed away
            // (§2.2).
            let primary = self.core.primary();
            self.core.track_forwarded(sb.clone(), out);
            out.send(primary, Message::Forward(sb));
        }
    }

    fn process_events(&mut self, events: Vec<CoreEvent>, out: &mut Outbox) {
        for e in events {
            match e {
                CoreEvent::Committed {
                    seq,
                    batch,
                    commits,
                } => {
                    self.committed.insert(seq, (batch, commits));
                    self.try_execute(out);
                }
                CoreEvent::ViewInstalled { .. } => {
                    // Re-propose is handled inside the core; nothing extra
                    // at this layer.
                }
                CoreEvent::CheckpointStable { seq } => {
                    // Executed instances below the checkpoint can be
                    // dropped from the committed buffer.
                    self.committed.retain(|s, _| *s >= self.exec_next.min(seq));
                }
            }
        }
    }

    fn try_execute(&mut self, out: &mut Outbox) {
        while let Some((batch, _commits)) = self.committed.get(&self.exec_next) {
            let batch = batch.clone();
            let seq = self.exec_next;
            self.exec_next += 1;
            self.executed_decisions += 1;

            let (result, results) =
                execute_batch_with_results(&mut self.store, self.cfg.exec_mode, &batch);
            if !batch.is_noop() {
                let data = ReplyData {
                    client: batch.batch.client,
                    batch_seq: batch.batch.batch_seq,
                    seq,
                    // One block per decision, executed strictly in order:
                    // the ledger height of this batch is the number of
                    // decisions executed so far.
                    block_height: self.executed_decisions,
                    result_digest: result,
                    results,
                    txns: batch.batch.len() as u32,
                };
                self.reply_cache.insert(batch.batch.client, data.clone());
                out.send(
                    batch.batch.client,
                    Message::Reply {
                        data,
                        view: self.core.view(),
                    },
                );
            }
            out.decided(Decision {
                seq,
                entries: vec![DecisionEntry {
                    origin: None,
                    batch: batch.clone(),
                }],
                state_digest: self.store.state_digest(),
            });

            if self
                .executed_decisions
                .is_multiple_of(self.cfg.checkpoint_interval)
            {
                self.core
                    .record_checkpoint(seq, self.store.state_digest(), out);
            }
        }
    }
}

impl ReplicaProtocol for PbftReplica {
    fn id(&self) -> ReplicaId {
        self.id
    }

    fn on_start(&mut self, _now: SimTime, _out: &mut Outbox) {}

    fn on_message(&mut self, _now: SimTime, from: NodeId, msg: Message, out: &mut Outbox) {
        match msg {
            Message::Request(sb) => self.handle_request(sb, out),
            Message::Forward(sb) => {
                if self.core.is_primary() {
                    self.core.enqueue_request(sb, out);
                }
            }
            other => {
                let NodeId::Replica(from) = from else {
                    return; // core messages never come from clients
                };
                let events = self.core.handle_message(from, other, out);
                self.process_events(events, out);
            }
        }
    }

    fn on_timer(&mut self, _now: SimTime, timer: TimerKind, out: &mut Outbox) {
        if timer == TimerKind::Progress {
            self.core.on_progress_timeout(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Action;
    use crate::clients::synthetic_source;
    use crate::config::ExecMode;
    use crate::testkit::{RoutedDecisions, RoutedReplies};
    use rdb_common::config::SystemConfig;
    use rdb_crypto::sign::KeyStore;
    use std::collections::VecDeque;

    /// Build a full global-PBFT deployment (replicas only) and a router.
    struct Net {
        replicas: Vec<PbftReplica>,
        ids: Vec<ReplicaId>,
    }

    impl Net {
        fn new(z: usize, n: usize, exec: ExecMode) -> (Net, KeyStore, ProtocolConfig) {
            let system = SystemConfig::geo(z, n).unwrap();
            let mut cfg = ProtocolConfig::new(system.clone());
            cfg.exec_mode = exec;
            let ks = KeyStore::new(11);
            let mut replicas = Vec::new();
            let mut ids = Vec::new();
            for r in system.all_replicas() {
                let signer = ks.register(NodeId::Replica(r));
                let crypto = CryptoCtx::new(signer, ks.verifier(), true);
                replicas.push(PbftReplica::new(
                    cfg.clone(),
                    r,
                    crypto,
                    KvStore::with_ycsb_records(50),
                ));
                ids.push(r);
            }
            (Net { replicas, ids }, ks, cfg)
        }

        fn index(&self, r: ReplicaId) -> usize {
            self.ids.iter().position(|x| *x == r).unwrap()
        }

        /// Deliver messages until quiescence; returns (replies, decisions).
        fn route(
            &mut self,
            initial: Vec<(NodeId, NodeId, Message)>,
        ) -> (RoutedReplies, RoutedDecisions) {
            let mut queue: VecDeque<(NodeId, NodeId, Message)> = initial.into();
            let mut replies = Vec::new();
            let mut decisions = Vec::new();
            let mut steps = 0;
            while let Some((from, to, msg)) = queue.pop_front() {
                steps += 1;
                assert!(steps < 3_000_000, "no quiescence");
                let NodeId::Replica(rid) = to else {
                    // Message to a client: record replies.
                    if let Message::Reply { data, .. } = msg {
                        if let NodeId::Replica(sender) = from {
                            replies.push((sender, data));
                        }
                    }
                    continue;
                };
                let idx = self.index(rid);
                let mut out = Outbox::new();
                self.replicas[idx].on_message(SimTime::ZERO, from, msg, &mut out);
                for a in out.take() {
                    match a {
                        Action::Send { to: t, msg: m } => queue.push_back((to, t, m)),
                        Action::Decided(d) => decisions.push((rid, d)),
                        _ => {}
                    }
                }
            }
            (replies, decisions)
        }
    }

    fn signed_batch(ks: &KeyStore, client: ClientId, seq: u64) -> SignedBatch {
        let signer = ks.register(NodeId::Client(client));
        let mut src = synthetic_source(client, 5, 50);
        let batch = src(seq);
        let sig = signer.sign(batch.digest().as_bytes());
        SignedBatch {
            pubkey: signer.public_key(),
            sig,
            batch,
        }
    }

    #[test]
    fn end_to_end_commit_and_reply() {
        let (mut net, ks, _cfg) = Net::new(1, 4, ExecMode::Real);
        let client = ClientId::new(0, 0);
        let sb = signed_batch(&ks, client, 0);
        let primary: NodeId = ReplicaId::new(0, 0).into();
        let (replies, decisions) = net.route(vec![(
            NodeId::Client(client),
            primary,
            Message::Request(sb.clone()),
        )]);
        // All 4 replicas execute and reply identically.
        assert_eq!(replies.len(), 4);
        let d0 = replies[0].1.result_digest;
        assert!(replies.iter().all(|(_, r)| r.result_digest == d0));
        assert_eq!(decisions.len(), 4);
        // Stores agree.
        let s0 = net.replicas[0].state_digest();
        assert!(net.replicas.iter().all(|r| r.state_digest() == s0));
    }

    #[test]
    fn request_to_backup_is_forwarded_and_still_commits() {
        let (mut net, ks, _cfg) = Net::new(1, 4, ExecMode::Real);
        let client = ClientId::new(0, 1);
        let sb = signed_batch(&ks, client, 0);
        let backup: NodeId = ReplicaId::new(0, 2).into();
        let (replies, _) = net.route(vec![(NodeId::Client(client), backup, Message::Request(sb))]);
        assert_eq!(replies.len(), 4);
    }

    #[test]
    fn retransmission_hits_reply_cache() {
        let (mut net, ks, _cfg) = Net::new(1, 4, ExecMode::Real);
        let client = ClientId::new(0, 2);
        let sb = signed_batch(&ks, client, 0);
        let primary: NodeId = ReplicaId::new(0, 0).into();
        net.route(vec![(
            NodeId::Client(client),
            primary,
            Message::Request(sb.clone()),
        )]);
        // Retransmit the same request: a cached reply, no new consensus.
        let (replies, decisions) = net.route(vec![(
            NodeId::Client(client),
            primary,
            Message::Request(sb),
        )]);
        assert_eq!(replies.len(), 1);
        assert!(decisions.is_empty());
    }

    #[test]
    fn sequence_of_requests_executes_in_order_across_replicas() {
        let (mut net, ks, _cfg) = Net::new(2, 4, ExecMode::Real);
        let primary: NodeId = ReplicaId::new(0, 0).into();
        let mut initial = Vec::new();
        for i in 0..5u64 {
            let client = ClientId::new((i % 2) as u16, i as u32 + 10);
            let sb = signed_batch(&ks, client, 0);
            initial.push((NodeId::Client(client), primary, Message::Request(sb)));
        }
        let (_, decisions) = net.route(initial);
        // 8 replicas x 5 decisions.
        assert_eq!(decisions.len(), 40);
        // Per-replica decision sequence must be 1..=5 in order.
        for rid in net.ids.clone() {
            let seqs: Vec<u64> = decisions
                .iter()
                .filter(|(r, _)| *r == rid)
                .map(|(_, d)| d.seq)
                .collect();
            assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        }
        // Final states agree everywhere.
        let s0 = net.replicas[0].state_digest();
        assert!(net.replicas.iter().all(|r| r.state_digest() == s0));
    }

    #[test]
    fn checkpoint_interval_triggers_stability() {
        let (mut net, ks, cfg) = Net::new(1, 4, ExecMode::Real);
        let primary: NodeId = ReplicaId::new(0, 0).into();
        let k = cfg.checkpoint_interval;
        let mut initial = Vec::new();
        for i in 0..k {
            let client = ClientId::new(0, i as u32 + 30);
            let sb = signed_batch(&ks, client, 0);
            initial.push((NodeId::Client(client), primary, Message::Request(sb)));
        }
        net.route(initial);
        for r in &net.replicas {
            assert_eq!(r.core().stable_seq(), k);
        }
    }
}
