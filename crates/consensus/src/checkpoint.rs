//! Protocol-agnostic checkpoint certification (§2.2 "checkpoints", and
//! the pipeline's checkpoint stage).
//!
//! The paper's replicas periodically exchange state digests so the group
//! can agree that everything up to some sequence number is *stable* —
//! executed by a quorum and safe to garbage-collect. Two layers of the
//! system need exactly that quorum rule:
//!
//! * the PBFT engine ([`crate::pbft_core::PbftCore`]) uses it to prune
//!   its instance log and advance the proposal window, and
//! * the fabric's **checkpoint pipeline stage** (`resilientdb`) uses it
//!   to certify the execution stage's materialized state against peers
//!   before compacting the ledger prefix.
//!
//! [`CheckpointTracker`] is that rule, factored out once: it counts
//! decisions toward the next checkpoint, records this replica's own
//! snapshot digests, tallies peer votes per `(seq, digest)`, and emits a
//! [`StableCheckpoint`] the moment a quorum agrees. Everything below the
//! stable point is pruned from the tracker itself, so its memory is
//! bounded by the in-flight (unstable) checkpoint count — never by run
//! length.
//!
//! ## Wire format and droppability
//!
//! Votes travel as [`Message::Checkpoint`]. Consensus-engine votes use
//! the engine's own [`Scope`] (`Global` or `Cluster(c)`); pipeline-stage
//! votes use the reserved [`PIPELINE_CHECKPOINT_SCOPE`], which no
//! consensus group ever matches — the two vote streams share a wire
//! format but can never be mixed up. Pipeline votes are **non-droppable**
//! ([`Message::droppable`]): no retransmission path re-drives a
//! checkpoint, so shedding one at a full queue could permanently delay
//! stability. Their sender (the fabric's checkpoint thread) compensates
//! by never *parking* on a peer's full inbox — it holds the vote and
//! retries — which keeps the cross-replica blocking graph cycle-free
//! (see `resilientdb::queue`).

use crate::messages::{Message, Scope};
use rdb_common::ids::{ClusterId, ReplicaId};
use rdb_crypto::digest::Digest;
use std::collections::{BTreeMap, HashMap, HashSet};

/// The reserved scope tag of *pipeline-stage* checkpoint votes.
///
/// Consensus groups are scoped `Global` or `Cluster(c)` with `c < z`;
/// `ClusterId(u16::MAX)` never names a real cluster, so every consensus
/// engine's `scope_matches` rejects these votes and only the pipeline's
/// checkpoint stage consumes them.
pub const PIPELINE_CHECKPOINT_SCOPE: Scope = Scope::Cluster(ClusterId(u16::MAX));

/// Build a pipeline-stage checkpoint vote for `seq` (a ledger height)
/// with the voter's materialized state digest.
pub fn pipeline_vote(seq: u64, state: Digest) -> Message {
    Message::Checkpoint {
        scope: PIPELINE_CHECKPOINT_SCOPE,
        seq,
        state,
    }
}

/// True when `msg` is a pipeline-stage checkpoint vote (as opposed to a
/// consensus-engine checkpoint, which the ordering worker consumes).
pub fn is_pipeline_vote(msg: &Message) -> bool {
    matches!(msg, Message::Checkpoint { scope, .. } if *scope == PIPELINE_CHECKPOINT_SCOPE)
}

/// A checkpoint that gathered a quorum of matching votes: everything at
/// or below `seq` is executed by a quorum and may be garbage-collected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StableCheckpoint {
    /// The certified sequence number (consensus seq or ledger height).
    pub seq: u64,
    /// The state digest the quorum agreed on.
    pub state: Digest,
}

/// The quorum rule of checkpoint certification, shared by the PBFT
/// engine and the fabric's checkpoint pipeline stage.
#[derive(Debug, Clone)]
pub struct CheckpointTracker {
    /// Decisions between checkpoints (0 = caller drives intervals).
    interval: u64,
    /// Matching votes required for stability (`n - f` of the group).
    quorum: usize,
    /// Decisions counted so far (drives [`CheckpointTracker::on_decision`]).
    decisions: u64,
    stable: u64,
    stable_state: Digest,
    /// Votes per unstable checkpoint: seq -> digest -> voters.
    votes: BTreeMap<u64, HashMap<Digest, HashSet<ReplicaId>>>,
    /// Own recorded (unstable) snapshot digests.
    own: BTreeMap<u64, Digest>,
}

impl CheckpointTracker {
    /// Maximum unstable checkpoint heights tracked at once. Votes come
    /// from authenticated *members*, but up to `f` of those are Byzantine
    /// and could vote for arbitrarily high never-stabilizing heights; a
    /// non-droppable vote also cannot be shed under overload. Capping the
    /// tracked set (evicting the highest height — the one furthest from
    /// stabilizing — when full) bounds the tracker's memory by a
    /// constant instead of by attacker persistence.
    pub const MAX_TRACKED: usize = 1024;

    /// A tracker requiring `quorum` matching votes, proposing every
    /// `interval` decisions (`interval == 0`: the embedder counts
    /// decisions itself and only uses the vote/quorum machinery).
    pub fn new(interval: u64, quorum: usize) -> CheckpointTracker {
        CheckpointTracker {
            interval,
            quorum: quorum.max(1),
            decisions: 0,
            stable: 0,
            stable_state: Digest::ZERO,
            votes: BTreeMap::new(),
            own: BTreeMap::new(),
        }
    }

    /// Decisions between checkpoints.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Count one executed decision; every `interval`-th returns the
    /// checkpoint `(seq, state)` the embedder should record and
    /// broadcast. Never fires with `interval == 0`.
    pub fn on_decision(&mut self, seq: u64, state: Digest) -> Option<(u64, Digest)> {
        self.decisions += 1;
        (self.interval > 0 && self.decisions.is_multiple_of(self.interval)).then_some((seq, state))
    }

    /// Record this replica's own snapshot at `seq`. Returns `false` when
    /// `seq` is already stable (nothing to certify).
    pub fn record_own(&mut self, seq: u64, state: Digest) -> bool {
        if seq <= self.stable {
            return false;
        }
        self.own.insert(seq, state);
        true
    }

    /// Tally a vote. Returns the newly stable checkpoint when `from`'s
    /// vote completes a quorum for `(seq, state)`. Tracked heights are
    /// capped at [`CheckpointTracker::MAX_TRACKED`]: when full, a vote
    /// for a height above everything tracked is ignored and otherwise
    /// the highest tracked height is evicted — lower heights are closer
    /// to stabilizing, so an attacker voting far ahead cannot displace
    /// real in-flight checkpoints or grow memory without bound.
    pub fn on_vote(
        &mut self,
        from: ReplicaId,
        seq: u64,
        state: Digest,
    ) -> Option<StableCheckpoint> {
        if seq <= self.stable {
            return None;
        }
        if !self.votes.contains_key(&seq) && self.votes.len() >= Self::MAX_TRACKED {
            let highest = *self.votes.keys().next_back().expect("non-empty at cap");
            if seq >= highest {
                return None;
            }
            self.votes.remove(&highest);
        }
        let voters = self.votes.entry(seq).or_default().entry(state).or_default();
        voters.insert(from);
        if voters.len() >= self.quorum {
            self.force_stable(seq, state);
            return Some(StableCheckpoint { seq, state });
        }
        None
    }

    /// Install `seq` as stable without a quorum of our own (e.g. learned
    /// through a new-view message) and prune everything at or below it.
    pub fn force_stable(&mut self, seq: u64, state: Digest) {
        if seq <= self.stable {
            return;
        }
        self.stable = seq;
        self.stable_state = state;
        self.votes.retain(|s, _| *s > seq);
        self.own.retain(|s, _| *s > seq);
    }

    /// The last stable checkpoint sequence (0 before any).
    pub fn stable_seq(&self) -> u64 {
        self.stable
    }

    /// The state digest of the last stable checkpoint.
    pub fn stable_state(&self) -> Digest {
        self.stable_state
    }

    /// Unstable checkpoints currently tracked (votes or own snapshots) —
    /// the tracker's memory watermark, bounded by in-flight checkpoints.
    pub fn tracked(&self) -> usize {
        self.votes.len().max(self.own.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u16) -> ReplicaId {
        ReplicaId::new(0, i)
    }

    #[test]
    fn quorum_of_matching_votes_stabilizes() {
        let mut t = CheckpointTracker::new(0, 3);
        let d = Digest::of(b"state@6");
        assert!(t.on_vote(rid(0), 6, d).is_none());
        assert!(t.on_vote(rid(1), 6, d).is_none());
        let sc = t.on_vote(rid(2), 6, d).expect("third vote completes");
        assert_eq!(sc, StableCheckpoint { seq: 6, state: d });
        assert_eq!(t.stable_seq(), 6);
        assert_eq!(t.stable_state(), d);
        // Late votes for the now-stable seq are ignored.
        assert!(t.on_vote(rid(3), 6, d).is_none());
    }

    #[test]
    fn conflicting_digests_never_pool_votes() {
        let mut t = CheckpointTracker::new(0, 3);
        let a = Digest::of(b"a");
        let b = Digest::of(b"b");
        assert!(t.on_vote(rid(0), 4, a).is_none());
        assert!(t.on_vote(rid(1), 4, b).is_none());
        assert!(t.on_vote(rid(2), 4, b).is_none());
        // Only the b-quorum completes; a's single vote cannot.
        assert!(t.on_vote(rid(3), 4, b).is_some());
    }

    #[test]
    fn duplicate_votes_count_once() {
        let mut t = CheckpointTracker::new(0, 2);
        let d = Digest::of(b"s");
        assert!(t.on_vote(rid(0), 2, d).is_none());
        assert!(t.on_vote(rid(0), 2, d).is_none(), "same voter re-voting");
        assert!(t.on_vote(rid(1), 2, d).is_some());
    }

    #[test]
    fn stability_prunes_tracker_memory() {
        let mut t = CheckpointTracker::new(0, 3);
        for seq in 1..=50u64 {
            t.record_own(seq, Digest::of(&seq.to_le_bytes()));
            t.on_vote(rid(0), seq, Digest::of(&seq.to_le_bytes()));
        }
        assert_eq!(t.tracked(), 50);
        let d = Digest::of(&50u64.to_le_bytes());
        t.on_vote(rid(1), 50, d);
        t.on_vote(rid(2), 50, d);
        assert_eq!(t.stable_seq(), 50);
        assert_eq!(t.tracked(), 0, "everything below stable is pruned");
        assert!(!t.record_own(50, d), "stable seqs are not re-certified");
    }

    #[test]
    fn far_future_votes_cannot_grow_the_tracker() {
        let mut t = CheckpointTracker::new(0, 3);
        // A Byzantine member floods votes for never-stabilizing heights.
        for i in 0..5_000u64 {
            t.on_vote(rid(0), u64::MAX - i, Digest::of(&i.to_le_bytes()));
        }
        assert!(t.tracked() <= CheckpointTracker::MAX_TRACKED);
        // Honest low-height checkpoints still stabilize: their votes
        // evict the attacker's high heights rather than being refused.
        let d = Digest::of(b"real");
        assert!(t.on_vote(rid(1), 6, d).is_none());
        assert!(t.on_vote(rid(2), 6, d).is_none());
        assert!(t.on_vote(rid(3), 6, d).is_some(), "honest quorum blocked");
        assert_eq!(t.stable_seq(), 6);
    }

    #[test]
    fn on_decision_fires_every_interval() {
        let mut t = CheckpointTracker::new(3, 3);
        let mut fired = Vec::new();
        for seq in 1..=9u64 {
            if let Some((s, _)) = t.on_decision(seq, Digest::ZERO) {
                fired.push(s);
            }
        }
        assert_eq!(fired, vec![3, 6, 9]);
        let mut off = CheckpointTracker::new(0, 3);
        assert!(off.on_decision(1, Digest::ZERO).is_none());
    }

    #[test]
    fn pipeline_votes_are_scoped_outside_every_group() {
        let v = pipeline_vote(7, Digest::of(b"s"));
        assert!(is_pipeline_vote(&v));
        assert!(!v.droppable(), "no retransmission path re-drives these");
        // Engine-scoped checkpoints are a different stream and stay
        // droppable (the protocol survives losing them).
        let engine = Message::Checkpoint {
            scope: Scope::Global,
            seq: 7,
            state: Digest::ZERO,
        };
        assert!(!is_pipeline_vote(&engine));
        assert!(engine.droppable());
    }
}
