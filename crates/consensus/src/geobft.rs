//! GeoBFT — the Geo-Scale Byzantine Fault-Tolerant consensus protocol
//! (§2 of the paper, the primary contribution).
//!
//! Each round `ρ` has three steps (Figure 1):
//!
//! 1. **Local replication** (§2.2): every cluster independently replicates
//!    one client batch using PBFT (the shared [`PbftCore`] engine, scoped
//!    to the cluster). Success yields a commit certificate
//!    `[⟨T⟩c, ρ]_C` of `n - f` signed commit messages.
//! 2. **Inter-cluster sharing** (§2.3): the cluster's primary sends the
//!    certificate to `f + 1` replicas of every other cluster (global
//!    phase); each receiver broadcasts it locally (local phase, Figure 5).
//!    Failures are handled by the *remote view-change* protocol
//!    (Figure 7): observers agree locally via `DRVC`, send signed `RVC`
//!    requests to their same-index peer in the failed cluster, and `f + 1`
//!    forwarded `RVC`s force a local view change there.
//! 3. **Ordering and execution** (§2.4): once a replica holds certificates
//!    from all `z` clusters for round `ρ` it executes the `z` batches in
//!    cluster order and answers its *local* clients.
//!
//! Steps pipeline across rounds (§2.5): local replication of `ρ + 2`,
//! sharing of `ρ + 1`, and execution of `ρ` proceed concurrently, bounded
//! by the PBFT window.

use crate::api::{Outbox, ReplicaProtocol, TimerKind};
use crate::certificate::{CommitCertificate, CommitSig};
use crate::config::ProtocolConfig;
use crate::crypto_ctx::CryptoCtx;
use crate::exec::execute_batch_with_results;
use crate::messages::{Message, Scope};
use crate::pbft_core::{CoreEvent, PbftCore};
use crate::types::{Decision, DecisionEntry, ReplyData, SignedBatch};
use rdb_common::ids::{ClientId, ClusterId, NodeId, ReplicaId};
use rdb_common::time::{SimDuration, SimTime};
use rdb_crypto::digest::Digest;
use rdb_crypto::sign::Signature;
use rdb_store::KvStore;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Canonical bytes signed in a remote view-change request.
pub fn rvc_payload(target: ClusterId, round: u64, v: u64, requester: ReplicaId) -> Vec<u8> {
    let mut out = Vec::with_capacity(3 + 2 + 8 + 8 + 4);
    out.extend_from_slice(b"rvc");
    out.extend_from_slice(&target.0.to_le_bytes());
    out.extend_from_slice(&round.to_le_bytes());
    out.extend_from_slice(&v.to_le_bytes());
    out.extend_from_slice(&requester.cluster.0.to_le_bytes());
    out.extend_from_slice(&requester.index.to_le_bytes());
    out
}

/// Fault-injection switches for experiments and tests (the replica stays
/// protocol-conformant otherwise).
#[derive(Debug, Clone, Copy, Default)]
pub struct GeoFaults {
    /// Byzantine primary that completes local replication but never shares
    /// certificates globally (case (1) of Example 2.4). Used to exercise
    /// the remote view-change path.
    pub suppress_global_share: bool,
}

/// Observer-side state about one remote cluster (Figure 7, initiation
/// role).
#[derive(Debug)]
struct RemoteTracker {
    /// Current timeout (exponential back-off, §2.3).
    timeout: SimDuration,
    /// `v1`: how many remote view-changes this replica has requested for
    /// the remote cluster.
    v: u64,
    /// The round the armed timer refers to (at most one at a time; the
    /// next needed certificate is always for `exec_next`).
    armed_round: Option<u64>,
    /// DRVC votes received, keyed by (round, v).
    drvc_votes: HashMap<(u64, u64), HashSet<ReplicaId>>,
    /// (round, v) pairs this replica already broadcast a DRVC for.
    drvc_sent: HashSet<(u64, u64)>,
    /// (round, v) pairs this replica already sent an RVC for.
    rvc_sent: HashSet<(u64, u64)>,
}

impl RemoteTracker {
    fn new(timeout: SimDuration) -> Self {
        RemoteTracker {
            timeout,
            v: 0,
            armed_round: None,
            drvc_votes: HashMap::new(),
            drvc_sent: HashSet::new(),
            rvc_sent: HashSet::new(),
        }
    }
}

/// Target-side state about one requesting cluster (Figure 7, response
/// role).
#[derive(Debug, Default)]
struct RequesterState {
    /// RVC votes, keyed by (round, v) -> requesters seen.
    rvc_votes: HashMap<(u64, u64), HashSet<ReplicaId>>,
    /// RVCs already forwarded locally (dedupe), keyed by
    /// (round, v, requester index).
    forwarded: HashSet<(u64, u64, u16)>,
    /// Highest `v` already honored (replay protection: "C' did not yet
    /// request a v-th remote view-change").
    honored_v: Option<u64>,
    /// Rounds named in honored requests; the next elected primary re-shares
    /// from the smallest of these.
    requested_rounds: BTreeSet<u64>,
}

/// A GeoBFT replica.
pub struct GeoBftReplica {
    cfg: ProtocolConfig,
    id: ReplicaId,
    crypto: CryptoCtx,
    core: PbftCore,
    store: KvStore,
    faults: GeoFaults,
    my_cluster: ClusterId,

    /// Certificates pending execution: round -> cluster -> certificate.
    certs: BTreeMap<u64, HashMap<ClusterId, CommitCertificate>>,
    /// Recently seen certificates (kept past execution so stragglers and
    /// DRVC responses can be served), keyed by (round, cluster).
    cert_cache: BTreeMap<(u64, u16), CommitCertificate>,
    /// Own-cluster certificates kept for primary re-sharing.
    own_certs: BTreeMap<u64, CommitCertificate>,
    /// (round, cluster) pairs already re-broadcast locally (Figure 5,
    /// local phase dedupe).
    shared_locally: HashSet<(u64, ClusterId)>,

    /// Next round to execute.
    exec_next: u64,
    executed_rounds: u64,
    /// Latest reply per local client.
    reply_cache: HashMap<ClientId, ReplyData>,

    /// Observer-side remote view-change state, one per remote cluster.
    remote: HashMap<ClusterId, RemoteTracker>,
    /// Target-side remote view-change state, one per requesting cluster.
    requesters: HashMap<ClusterId, RequesterState>,
}

impl GeoBftReplica {
    /// Build a replica.
    pub fn new(cfg: ProtocolConfig, id: ReplicaId, crypto: CryptoCtx, store: KvStore) -> Self {
        Self::with_faults(cfg, id, crypto, store, GeoFaults::default())
    }

    /// Build a replica with fault injection.
    pub fn with_faults(
        cfg: ProtocolConfig,
        id: ReplicaId,
        crypto: CryptoCtx,
        store: KvStore,
        faults: GeoFaults,
    ) -> Self {
        let my_cluster = id.cluster;
        let core = PbftCore::new(Scope::Cluster(my_cluster), cfg.clone(), id, crypto.clone());
        let remote = cfg
            .system
            .cluster_ids()
            .filter(|c| *c != my_cluster)
            .map(|c| (c, RemoteTracker::new(cfg.remote_timeout)))
            .collect();
        GeoBftReplica {
            cfg,
            id,
            crypto,
            core,
            store,
            faults,
            my_cluster,
            certs: BTreeMap::new(),
            cert_cache: BTreeMap::new(),
            own_certs: BTreeMap::new(),
            shared_locally: HashSet::new(),
            exec_next: 1,
            executed_rounds: 0,
            reply_cache: HashMap::new(),
            remote,
            requesters: HashMap::new(),
        }
    }

    /// The embedded local-PBFT engine (tests).
    pub fn core(&self) -> &PbftCore {
        &self.core
    }

    /// Rounds fully executed so far.
    pub fn executed_rounds(&self) -> u64 {
        self.executed_rounds
    }

    /// Digest of the replica's store state.
    pub fn state_digest(&self) -> Digest {
        self.store.state_digest()
    }

    /// Next round awaiting execution (tests).
    pub fn exec_next(&self) -> u64 {
        self.exec_next
    }

    // ------------------------------------------------------------------
    // Client path + local replication
    // ------------------------------------------------------------------

    fn handle_request(&mut self, from: NodeId, sb: SignedBatch, out: &mut Outbox) {
        // Only requests from this cluster's clients are served (§2:
        // "GeoBFT assigns each client to a single cluster").
        if sb.batch.client.cluster != self.my_cluster {
            return;
        }
        if let Some(cached) = self.reply_cache.get(&sb.batch.client) {
            if cached.batch_seq == sb.batch.batch_seq {
                out.send(
                    sb.batch.client,
                    Message::Reply {
                        data: cached.clone(),
                        view: self.core.view(),
                    },
                );
                return;
            }
        }
        if self.core.is_primary() {
            self.core.enqueue_request(sb, out);
        } else if from.is_replica() {
            // Already a forward; just track.
            self.core.track_forwarded(sb, out);
        } else {
            let primary = self.core.primary();
            self.core.track_forwarded(sb.clone(), out);
            out.send(primary, Message::Forward(sb));
        }
    }

    fn process_core_events(&mut self, events: Vec<CoreEvent>, out: &mut Outbox) {
        for e in events {
            match e {
                CoreEvent::Committed {
                    seq: round,
                    batch,
                    commits,
                } => self.on_local_commit(round, batch, commits, out),
                CoreEvent::ViewInstalled { .. } => self.on_view_installed(out),
                CoreEvent::CheckpointStable { .. } => {
                    self.prune_caches();
                }
            }
        }
    }

    /// Local replication of `round` finished: build the certificate,
    /// store it, and (as primary) start the optimistic global sharing of
    /// Figure 5.
    fn on_local_commit(
        &mut self,
        round: u64,
        batch: SignedBatch,
        commits: Vec<CommitSig>,
        out: &mut Outbox,
    ) {
        let cert = CommitCertificate {
            cluster: self.my_cluster,
            round,
            digest: batch.digest(),
            batch,
            commits,
        };
        self.own_certs.insert(round, cert.clone());
        self.store_certificate(cert.clone(), out);

        if self.core.is_primary() && !self.faults.suppress_global_share {
            self.share_globally(&cert, out);
        }
        self.try_execute(out);
    }

    /// Global phase of Figure 5: send `(⟨T⟩c, [⟨T⟩c, ρ]_C)` to `f + 1`
    /// replicas in every other cluster.
    fn share_globally(&self, cert: &CommitCertificate, out: &mut Outbox) {
        let fanout = self.cfg.sharing_fanout();
        let msg = Message::GlobalShare { cert: cert.clone() };
        for c in self.cfg.system.cluster_ids() {
            if c == self.my_cluster {
                continue;
            }
            let targets = (0..fanout as u16).map(|i| ReplicaId {
                cluster: c,
                index: i,
            });
            out.multicast(targets, &msg);
        }
    }

    // ------------------------------------------------------------------
    // Inter-cluster sharing, receive side
    // ------------------------------------------------------------------

    fn handle_global_share(&mut self, from: NodeId, cert: CommitCertificate, out: &mut Outbox) {
        if !cert.verify(&self.cfg.system, &self.crypto) {
            return;
        }
        let known = self.cert_cache.contains_key(&(cert.round, cert.cluster.0));
        if !known {
            // No-op detection (§2.5): remote clusters are already working
            // on rounds our primary has nothing for.
            let incoming_round = cert.round;
            self.store_certificate(cert.clone(), out);
            while self.core.next_propose() <= incoming_round
                && self
                    .core
                    .propose_noop_if_idle(self.core.next_propose(), out)
            {}
        }
        // Local phase of Figure 5: the first copy arriving from outside
        // the cluster is re-broadcast to all local replicas.
        if from.cluster() != self.my_cluster
            && self.shared_locally.insert((cert.round, cert.cluster))
        {
            let peers: Vec<ReplicaId> = self
                .cfg
                .system
                .replicas_of(self.my_cluster)
                .filter(|r| *r != self.id)
                .collect();
            out.multicast(peers, &Message::GlobalShare { cert });
        }
        self.try_execute(out);
    }

    fn store_certificate(&mut self, cert: CommitCertificate, out: &mut Outbox) {
        let round = cert.round;
        let cluster = cert.cluster;
        self.cert_cache.insert((round, cluster.0), cert.clone());
        if round >= self.exec_next {
            self.certs.entry(round).or_default().insert(cluster, cert);
        }
        // The awaited certificate arrived: disarm the failure detector and
        // reset its back-off (§2.3 — back-off covers *subsequent*
        // failures).
        if cluster != self.my_cluster {
            if let Some(tracker) = self.remote.get_mut(&cluster) {
                if tracker.armed_round == Some(round) {
                    tracker.armed_round = None;
                    tracker.timeout = self.cfg.remote_timeout;
                    out.cancel_timer(TimerKind::RemoteCluster { cluster, round });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Ordering and execution (§2.4)
    // ------------------------------------------------------------------

    fn try_execute(&mut self, out: &mut Outbox) {
        let z = self.cfg.system.z();
        loop {
            let round = self.exec_next;
            let ready = self.certs.get(&round).is_some_and(|m| m.len() == z);
            if !ready {
                break;
            }
            let mut map = self.certs.remove(&round).expect("checked above");
            let mut entries = Vec::with_capacity(z);
            for (idx, c) in self.cfg.system.cluster_ids().enumerate() {
                let cert = map.remove(&c).expect("all certificates present");
                let (result, results) =
                    execute_batch_with_results(&mut self.store, self.cfg.exec_mode, &cert.batch);
                // Replicas inform only their local clients (§2.4).
                if c == self.my_cluster && !cert.batch.is_noop() {
                    let data = ReplyData {
                        client: cert.batch.batch.client,
                        batch_seq: cert.batch.batch.batch_seq,
                        seq: round,
                        // Each round appends z blocks, one per cluster in
                        // cluster order (§2.4), so this batch lands at
                        // rounds-before · z + its in-round position.
                        block_height: self.executed_rounds * z as u64 + idx as u64 + 1,
                        result_digest: result,
                        results,
                        txns: cert.batch.batch.len() as u32,
                    };
                    self.reply_cache
                        .insert(cert.batch.batch.client, data.clone());
                    out.send(
                        cert.batch.batch.client,
                        Message::Reply {
                            data,
                            view: self.core.view(),
                        },
                    );
                }
                entries.push(DecisionEntry {
                    origin: Some(c),
                    batch: cert.batch,
                });
            }
            self.exec_next += 1;
            self.executed_rounds += 1;
            out.decided(Decision {
                seq: round,
                entries,
                state_digest: self.store.state_digest(),
            });
            if self
                .executed_rounds
                .is_multiple_of(self.cfg.checkpoint_interval)
            {
                self.core
                    .record_checkpoint(round, self.store.state_digest(), out);
                self.prune_caches();
            }
        }
        self.arm_remote_timers(out);
    }

    fn prune_caches(&mut self) {
        let keep_from = self.exec_next.saturating_sub(2 * self.cfg.window);
        self.cert_cache.retain(|(r, _), _| *r >= keep_from);
        self.own_certs.retain(|r, _| *r >= keep_from);
        self.shared_locally.retain(|(r, _)| *r >= keep_from);
    }

    // ------------------------------------------------------------------
    // Remote view-change, observer side (Figure 7, initiation role)
    // ------------------------------------------------------------------

    /// Arm a failure-detection timer per remote cluster for the round we
    /// are blocked on ("every replica R ∈ C2 sets a timer for C1 at the
    /// start of round ρ").
    fn arm_remote_timers(&mut self, out: &mut Outbox) {
        let round = self.exec_next;
        let have: HashSet<ClusterId> = self
            .certs
            .get(&round)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        for (cluster, tracker) in self.remote.iter_mut() {
            if have.contains(cluster) {
                continue;
            }
            match tracker.armed_round {
                Some(r) if r == round => {}
                _ => {
                    tracker.armed_round = Some(round);
                    out.set_timer(
                        TimerKind::RemoteCluster {
                            cluster: *cluster,
                            round,
                        },
                        tracker.timeout,
                    );
                }
            }
        }
    }

    fn on_remote_timeout(&mut self, cluster: ClusterId, round: u64, out: &mut Outbox) {
        if round != self.exec_next {
            return; // stale timer
        }
        if self
            .certs
            .get(&round)
            .is_some_and(|m| m.contains_key(&cluster))
        {
            return; // certificate arrived concurrently
        }
        let Some(tracker) = self.remote.get_mut(&cluster) else {
            return;
        };
        // Figure 7, lines 2-4: broadcast DRVC(C1, ρ, v1), then v1 += 1.
        let v = tracker.v;
        tracker.v += 1;
        tracker.drvc_sent.insert((round, v));
        let peers: Vec<ReplicaId> = self.cfg.system.replicas_of(self.my_cluster).collect();
        out.multicast(
            peers,
            &Message::Drvc {
                target: cluster,
                round,
                v,
            },
        );
        // Exponential back-off for the next detection of the same cluster.
        tracker.timeout = tracker.timeout.doubled();
        tracker.armed_round = Some(round);
        out.set_timer(TimerKind::RemoteCluster { cluster, round }, tracker.timeout);
    }

    fn handle_drvc(
        &mut self,
        from: ReplicaId,
        target: ClusterId,
        round: u64,
        v: u64,
        out: &mut Outbox,
    ) {
        if from.cluster != self.my_cluster || target == self.my_cluster {
            return;
        }
        // Lines 5-7: if we already have the certificate, help the peer.
        if from != self.id {
            if let Some(cert) = self.cert_cache.get(&(round, target.0)) {
                out.send(from, Message::GlobalShare { cert: cert.clone() });
                return;
            }
        }
        let n_f = self.cfg.system.quorum();
        let f_1 = self.cfg.system.weak_quorum();
        let my_index = self.id.index;
        let Some(tracker) = self.remote.get_mut(&target) else {
            return;
        };
        let votes = tracker.drvc_votes.entry((round, v)).or_default();
        votes.insert(from);
        let count = votes.len();

        // Lines 8-11: f + 1 identical DRVCs pull a lagging replica into
        // the detection.
        if count >= f_1 && tracker.v <= v && !tracker.drvc_sent.contains(&(round, v)) {
            tracker.v = v + 1;
            tracker.drvc_sent.insert((round, v));
            let peers: Vec<ReplicaId> = self.cfg.system.replicas_of(self.my_cluster).collect();
            out.multicast(peers, &Message::Drvc { target, round, v });
        }

        // Lines 12-13: n - f agreement => send the signed RVC to our
        // same-index peer in the target cluster.
        let tracker = self.remote.get_mut(&target).expect("present");
        let count = tracker.drvc_votes.get(&(round, v)).map_or(0, |s| s.len());
        if count >= n_f && tracker.rvc_sent.insert((round, v)) {
            let sig = self.crypto.sign(&rvc_payload(target, round, v, self.id));
            let peer = ReplicaId {
                cluster: target,
                index: my_index,
            };
            out.send(
                peer,
                Message::Rvc {
                    target,
                    round,
                    v,
                    requester: self.id,
                    sig,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Remote view-change, target side (Figure 7, response role)
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn handle_rvc(
        &mut self,
        from: NodeId,
        target: ClusterId,
        round: u64,
        v: u64,
        requester: ReplicaId,
        sig: Signature,
        out: &mut Outbox,
    ) {
        if target != self.my_cluster || requester.cluster == self.my_cluster {
            return;
        }
        if requester.cluster.as_usize() >= self.cfg.system.z() {
            return;
        }
        if self.crypto.checks_signatures() {
            let Some(pk) = self.crypto.verifier().public_key_of(requester.into()) else {
                return;
            };
            if !self
                .crypto
                .verify(&pk, &rvc_payload(target, round, v, requester), &sig)
            {
                return;
            }
        }
        let rc = requester.cluster;
        let f_1 = self.cfg.system.weak_quorum();
        let state = self.requesters.entry(rc).or_default();

        // Lines 14-15: first external copy is forwarded to the whole
        // cluster.
        let external = from.cluster() != self.my_cluster;
        if external && state.forwarded.insert((round, v, requester.index)) {
            let peers: Vec<ReplicaId> = self
                .cfg
                .system
                .replicas_of(self.my_cluster)
                .filter(|r| *r != self.id)
                .collect();
            out.multicast(
                peers,
                &Message::Rvc {
                    target,
                    round,
                    v,
                    requester,
                    sig,
                },
            );
        }

        // Line 16: f + 1 RVCs from distinct replicas of the same cluster,
        // no concurrent local view change, and a fresh `v`.
        let votes = state.rvc_votes.entry((round, v)).or_default();
        votes.insert(requester);
        if votes.len() >= f_1
            && state.honored_v.is_none_or(|h| v > h)
            && !self.core.in_view_change()
        {
            let state = self.requesters.get_mut(&rc).expect("present");
            state.honored_v = Some(v);
            state.requested_rounds.insert(round);
            // Line 17: detect failure of our own primary.
            self.core.force_view_change(out);
        }
    }

    /// A local view change completed. If we are the new primary, resume
    /// the global sharing the previous primary may have withheld (§2.3:
    /// "it takes one of the remote view-change requests it received and
    /// determines the rounds for which it needs to send requests").
    fn on_view_installed(&mut self, out: &mut Outbox) {
        if !self.core.is_primary() || self.faults.suppress_global_share {
            return;
        }
        let mut floor: Option<u64> = None;
        for state in self.requesters.values_mut() {
            if let Some(r) = state.requested_rounds.iter().next() {
                floor = Some(floor.map_or(*r, |f: u64| f.min(*r)));
            }
            state.requested_rounds.clear();
        }
        if let Some(floor) = floor {
            let to_share: Vec<CommitCertificate> = self
                .own_certs
                .range(floor..)
                .map(|(_, c)| c.clone())
                .collect();
            for cert in to_share {
                self.share_globally(&cert, out);
            }
        }
    }
}

impl ReplicaProtocol for GeoBftReplica {
    fn id(&self) -> ReplicaId {
        self.id
    }

    fn on_start(&mut self, _now: SimTime, out: &mut Outbox) {
        self.arm_remote_timers(out);
    }

    fn on_message(&mut self, _now: SimTime, from: NodeId, msg: Message, out: &mut Outbox) {
        match msg {
            Message::Request(sb) => self.handle_request(from, sb, out),
            Message::Forward(sb) => {
                if from.cluster() == self.my_cluster && self.core.is_primary() {
                    self.core.enqueue_request(sb, out);
                }
            }
            Message::GlobalShare { cert } => self.handle_global_share(from, cert, out),
            Message::Drvc { target, round, v } => {
                if let NodeId::Replica(from) = from {
                    self.handle_drvc(from, target, round, v, out);
                }
            }
            Message::Rvc {
                target,
                round,
                v,
                requester,
                sig,
            } => self.handle_rvc(from, target, round, v, requester, sig, out),
            core_msg => {
                let NodeId::Replica(from) = from else {
                    return;
                };
                // Local PBFT messages only travel within the cluster.
                if from.cluster != self.my_cluster {
                    return;
                }
                let events = self.core.handle_message(from, core_msg, out);
                self.process_core_events(events, out);
            }
        }
    }

    fn on_timer(&mut self, _now: SimTime, timer: TimerKind, out: &mut Outbox) {
        match timer {
            TimerKind::Progress => {
                self.core.on_progress_timeout(out);
            }
            TimerKind::RemoteCluster { cluster, round } => {
                self.on_remote_timeout(cluster, round, out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Action;
    use crate::clients::synthetic_source;
    use crate::config::ExecMode;
    use crate::testkit::{RoutedDecisions, RoutedReplies};
    use rdb_common::config::SystemConfig;
    use rdb_crypto::sign::KeyStore;
    use std::collections::VecDeque;

    struct GeoNet {
        replicas: Vec<GeoBftReplica>,
        n: usize,
    }

    impl GeoNet {
        fn new(z: usize, n: usize) -> (GeoNet, KeyStore, ProtocolConfig) {
            Self::with_faults(z, n, &[])
        }

        fn with_faults(
            z: usize,
            n: usize,
            suppressing: &[ReplicaId],
        ) -> (GeoNet, KeyStore, ProtocolConfig) {
            let system = SystemConfig::geo(z, n).unwrap();
            let mut cfg = ProtocolConfig::new(system.clone());
            cfg.exec_mode = ExecMode::Real;
            let ks = KeyStore::new(21);
            let mut replicas = Vec::new();
            for r in system.all_replicas() {
                let signer = ks.register(NodeId::Replica(r));
                let crypto = CryptoCtx::new(signer, ks.verifier(), true);
                let faults = GeoFaults {
                    suppress_global_share: suppressing.contains(&r),
                };
                replicas.push(GeoBftReplica::with_faults(
                    cfg.clone(),
                    r,
                    crypto,
                    KvStore::with_ycsb_records(50),
                    faults,
                ));
            }
            (GeoNet { replicas, n }, ks, cfg)
        }

        fn index(&self, r: ReplicaId) -> usize {
            r.cluster.as_usize() * self.n + r.index as usize
        }

        fn route(
            &mut self,
            initial: Vec<(NodeId, NodeId, Message)>,
        ) -> (RoutedReplies, RoutedDecisions) {
            let mut queue: VecDeque<(NodeId, NodeId, Message)> = initial.into();
            let mut replies = Vec::new();
            let mut decisions = Vec::new();
            let mut steps = 0;
            while let Some((from, to, msg)) = queue.pop_front() {
                steps += 1;
                assert!(steps < 5_000_000, "no quiescence");
                let NodeId::Replica(rid) = to else {
                    if let Message::Reply { data, .. } = msg {
                        if let NodeId::Replica(sender) = from {
                            replies.push((sender, data));
                        }
                    }
                    continue;
                };
                let idx = self.index(rid);
                let mut out = Outbox::new();
                self.replicas[idx].on_message(SimTime::ZERO, from, msg, &mut out);
                for a in out.take() {
                    match a {
                        Action::Send { to: t, msg: m } => queue.push_back((to, t, m)),
                        Action::Decided(d) => decisions.push((rid, d)),
                        _ => {}
                    }
                }
            }
            (replies, decisions)
        }
    }

    fn signed_batch(ks: &KeyStore, client: ClientId, seq: u64) -> SignedBatch {
        let signer = ks.register(NodeId::Client(client));
        let mut src = synthetic_source(client, 4, 40);
        let batch = src(seq);
        let sig = signer.sign(batch.digest().as_bytes());
        SignedBatch {
            pubkey: signer.public_key(),
            sig,
            batch,
        }
    }

    #[test]
    fn round_with_two_active_clusters_executes_everywhere() {
        let (mut net, ks, _cfg) = GeoNet::new(2, 4);
        let c1 = ClientId::new(0, 0);
        let c2 = ClientId::new(1, 0);
        let initial = vec![
            (
                NodeId::Client(c1),
                ReplicaId::new(0, 0).into(),
                Message::Request(signed_batch(&ks, c1, 0)),
            ),
            (
                NodeId::Client(c2),
                ReplicaId::new(1, 0).into(),
                Message::Request(signed_batch(&ks, c2, 0)),
            ),
        ];
        let (replies, decisions) = net.route(initial);
        // Every replica executes round 1 with both batches.
        assert_eq!(decisions.len(), 8);
        for (_, d) in &decisions {
            assert_eq!(d.seq, 1);
            assert_eq!(d.entries.len(), 2);
            assert_eq!(d.entries[0].origin, Some(ClusterId(0)));
            assert_eq!(d.entries[1].origin, Some(ClusterId(1)));
        }
        // All states identical (non-divergence, Theorem 2.8).
        let s0 = net.replicas[0].state_digest();
        assert!(net.replicas.iter().all(|r| r.state_digest() == s0));
        // Replies are local only: each client got n = 4 replies from its
        // own cluster.
        for client in [c1, c2] {
            let from: Vec<ReplicaId> = replies
                .iter()
                .filter(|(_, r)| r.client == client)
                .map(|(s, _)| *s)
                .collect();
            assert_eq!(from.len(), 4);
            assert!(from.iter().all(|r| r.cluster == client.cluster));
        }
    }

    #[test]
    fn idle_cluster_proposes_noop_and_round_completes() {
        let (mut net, ks, _cfg) = GeoNet::new(2, 4);
        // Only cluster 0 has a client.
        let c1 = ClientId::new(0, 0);
        let initial = vec![(
            NodeId::Client(c1),
            ReplicaId::new(0, 0).into(),
            Message::Request(signed_batch(&ks, c1, 0)),
        )];
        let (_, decisions) = net.route(initial);
        assert_eq!(decisions.len(), 8, "all replicas executed round 1");
        for (_, d) in &decisions {
            assert!(
                d.entries[1].batch.is_noop(),
                "cluster 2 contributed a no-op"
            );
            assert!(!d.entries[0].batch.is_noop());
        }
    }

    #[test]
    fn certificates_unverifiable_are_dropped() {
        let (mut net, ks, _cfg) = GeoNet::new(2, 4);
        let c1 = ClientId::new(0, 0);
        let sb = signed_batch(&ks, c1, 0);
        // Handcraft a bogus certificate with no valid commit signatures.
        let cert = CommitCertificate {
            cluster: ClusterId(0),
            round: 1,
            digest: sb.digest(),
            batch: sb,
            commits: (0..3u16)
                .map(|i| CommitSig {
                    replica: ReplicaId::new(0, i),
                    sig: Signature([7u8; 64]),
                })
                .collect(),
        };
        let target = ReplicaId::new(1, 0);
        let mut out = Outbox::new();
        let idx = net.index(target);
        net.replicas[idx].on_message(
            SimTime::ZERO,
            ReplicaId::new(0, 0).into(),
            Message::GlobalShare { cert },
            &mut out,
        );
        assert!(out.take().is_empty(), "forged certificate produced actions");
        assert_eq!(net.replicas[idx].exec_next(), 1);
    }

    #[test]
    fn drvc_is_answered_with_cached_certificate() {
        let (mut net, ks, _cfg) = GeoNet::new(2, 4);
        let c1 = ClientId::new(0, 0);
        let c2 = ClientId::new(1, 0);
        net.route(vec![
            (
                NodeId::Client(c1),
                ReplicaId::new(0, 0).into(),
                Message::Request(signed_batch(&ks, c1, 0)),
            ),
            (
                NodeId::Client(c2),
                ReplicaId::new(1, 0).into(),
                Message::Request(signed_batch(&ks, c2, 0)),
            ),
        ]);
        // Replica (1,1) pretends it missed cluster 0's certificate and
        // sends a DRVC; peer (1,0) must answer with the certificate.
        let holder = net.index(ReplicaId::new(1, 0));
        let mut out = Outbox::new();
        net.replicas[holder].on_message(
            SimTime::ZERO,
            ReplicaId::new(1, 1).into(),
            Message::Drvc {
                target: ClusterId(0),
                round: 1,
                v: 0,
            },
            &mut out,
        );
        let actions = out.take();
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send {
                to: NodeId::Replica(r),
                msg: Message::GlobalShare { cert }
            } if *r == ReplicaId::new(1, 1) && cert.cluster == ClusterId(0) && cert.round == 1
        )));
    }

    #[test]
    fn f_plus_1_rvcs_trigger_local_view_change() {
        let (mut net, _ks, _cfg) = GeoNet::new(2, 4);
        // Replicas of cluster 1 send RVCs to replica (0,2) targeting
        // cluster 0 (f = 1 so f+1 = 2 needed).
        let target_replica = net.index(ReplicaId::new(0, 2));
        let mut actions = Vec::new();
        for i in 0..2u16 {
            let requester = ReplicaId::new(1, i);
            let sig = {
                let r = &net.replicas[net.index(requester)];
                r.crypto.sign(&rvc_payload(ClusterId(0), 1, 0, requester))
            };
            let mut out = Outbox::new();
            net.replicas[target_replica].on_message(
                SimTime::ZERO,
                requester.into(),
                Message::Rvc {
                    target: ClusterId(0),
                    round: 1,
                    v: 0,
                    requester,
                    sig,
                },
                &mut out,
            );
            actions.extend(out.take());
        }
        assert!(
            net.replicas[target_replica].core().in_view_change(),
            "f+1 RVCs must force a local view change (Fig 7 line 16-17)"
        );
        // Each external RVC was forwarded to the three local peers.
        let forwards = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Send {
                        msg: Message::Rvc { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(forwards, 2 * 3);
    }

    #[test]
    fn rvc_replay_with_same_v_is_honored_once() {
        let (mut net, _ks, _cfg) = GeoNet::new(2, 4);
        let target_replica = net.index(ReplicaId::new(0, 2));
        let send_rvcs = |net: &mut GeoNet, v: u64| {
            for i in 0..2u16 {
                let requester = ReplicaId::new(1, i);
                let sig = {
                    let r = &net.replicas[net.index(requester)];
                    r.crypto.sign(&rvc_payload(ClusterId(0), 1, v, requester))
                };
                let mut out = Outbox::new();
                let idx = net.index(ReplicaId::new(0, 2));
                net.replicas[idx].on_message(
                    SimTime::ZERO,
                    requester.into(),
                    Message::Rvc {
                        target: ClusterId(0),
                        round: 1,
                        v,
                        requester,
                        sig,
                    },
                    &mut out,
                );
            }
        };
        send_rvcs(&mut net, 0);
        assert!(net.replicas[target_replica].core().in_view_change());
        let honored = net.replicas[target_replica]
            .requesters
            .get(&ClusterId(1))
            .and_then(|s| s.honored_v);
        assert_eq!(honored, Some(0));
        send_rvcs(&mut net, 0);
        assert_eq!(
            net.replicas[target_replica]
                .requesters
                .get(&ClusterId(1))
                .and_then(|s| s.honored_v),
            Some(0)
        );
    }

    #[test]
    fn remote_timeout_broadcasts_drvc_with_backoff() {
        let (mut net, _ks, cfg) = GeoNet::new(2, 4);
        let idx = net.index(ReplicaId::new(1, 2));
        let mut out = Outbox::new();
        net.replicas[idx].on_start(SimTime::ZERO, &mut out);
        // A timer for (cluster 0, round 1) must have been armed.
        let armed = out.take().iter().any(|a| {
            matches!(
                a,
                Action::SetTimer {
                    kind: TimerKind::RemoteCluster {
                        cluster: ClusterId(0),
                        round: 1
                    },
                    ..
                }
            )
        });
        assert!(armed);
        // Fire it: DRVC broadcast to the 4 local replicas + re-armed with
        // doubled timeout.
        let mut out = Outbox::new();
        net.replicas[idx].on_timer(
            SimTime::ZERO,
            TimerKind::RemoteCluster {
                cluster: ClusterId(0),
                round: 1,
            },
            &mut out,
        );
        let actions = out.take();
        let drvcs = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Send {
                        msg: Message::Drvc { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(drvcs, 4);
        let rearmed = actions.iter().any(|a| {
            matches!(a, Action::SetTimer { kind: TimerKind::RemoteCluster { .. }, after }
                if *after == cfg.remote_timeout.doubled())
        });
        assert!(rearmed, "exponential back-off re-arms the timer");
    }

    #[test]
    fn suppressing_primary_blocks_execution_without_remote_vc() {
        // The Byzantine primary of cluster 0 completes local replication
        // but never shares (Example 2.4 case 1): cluster 1 cannot execute.
        let (mut net, ks, _cfg) = GeoNet::with_faults(2, 4, &[ReplicaId::new(0, 0)]);
        let c1 = ClientId::new(0, 0);
        let c2 = ClientId::new(1, 0);
        let (_, decisions) = net.route(vec![
            (
                NodeId::Client(c1),
                ReplicaId::new(0, 0).into(),
                Message::Request(signed_batch(&ks, c1, 0)),
            ),
            (
                NodeId::Client(c2),
                ReplicaId::new(1, 0).into(),
                Message::Request(signed_batch(&ks, c2, 0)),
            ),
        ]);
        // Cluster 1 replicas cannot finish round 1 (no cert from cluster
        // 0). Cluster 0 replicas *can* (they have their own commit and
        // cluster 1's shared cert).
        for (rid, d) in &decisions {
            assert_eq!(rid.cluster, ClusterId(0));
            assert_eq!(d.seq, 1);
        }
        let c1_exec: Vec<u64> = net.replicas[4..]
            .iter()
            .map(|r| r.executed_rounds())
            .collect();
        assert_eq!(c1_exec, vec![0, 0, 0, 0]);
    }
}
